//! Property-based tests for the analysis library: invariants that must
//! hold for *any* activity history, not just the fixtures.

use ipactive_core::{blocks, change, churn, events, matrix, traffic, DailyDatasetBuilder};
use ipactive_net::{Addr, Block24};
use proptest::prelude::*;

const DAYS: usize = 12;

/// A random daily dataset over a handful of blocks.
fn arb_dataset() -> impl Strategy<Value = ipactive_core::DailyDataset> {
    // (block_index, host, day, hits) tuples.
    prop::collection::vec(
        (0u32..4, any::<u8>(), 0usize..DAYS, 1u64..500),
        0..300,
    )
    .prop_map(|records| {
        let mut b = DailyDatasetBuilder::new(DAYS);
        for (blk, host, day, hits) in records {
            let block = Block24::new(0x0A_0000 + blk);
            b.record_hits(day, block.addr(host), hits);
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Up/down events are conserved: between consecutive days,
    /// |active(d+1)| - |active(d)| == up - down.
    #[test]
    fn churn_events_are_conserved(ds in arb_dataset()) {
        let series = churn::daily_series(&ds);
        for w in series.windows(2) {
            let delta = w[1].active as i64 - w[0].active as i64;
            prop_assert_eq!(delta, w[1].up as i64 - w[1].down as i64);
        }
    }

    /// The daily series matches set computations done the slow way.
    #[test]
    fn daily_series_matches_set_difference(ds in arb_dataset()) {
        let series = churn::daily_series(&ds);
        for (d, point) in series.iter().enumerate().skip(1) {
            let prev = ds.day_set(d - 1);
            let cur = ds.day_set(d);
            prop_assert_eq!(point.active, cur.len());
            prop_assert_eq!(point.up, cur.difference(&prev).len());
            prop_assert_eq!(point.down, prev.difference(&cur).len());
        }
    }

    /// STU and FD bounds and consistency: 0 ≤ STU ≤ 1, FD ≤ 256,
    /// and STU ≤ FD/256 (an address contributes at most all days).
    #[test]
    fn stu_fd_bounds(ds in arb_dataset()) {
        for rec in &ds.blocks {
            let m = matrix::BlockMetrics::of(rec, 0..ds.num_days);
            prop_assert!(m.fd <= 256);
            prop_assert!((0.0..=1.0).contains(&m.stu));
            prop_assert!(m.stu <= m.fd as f64 / 256.0 + 1e-12);
            // A nonempty block has nonzero metrics.
            if rec.any_active(0..ds.num_days) {
                prop_assert!(m.fd >= 1);
                prop_assert!(m.stu > 0.0);
            }
        }
    }

    /// Window aggregation only merges activity: the union of windows
    /// of any size equals the all-days union, and per-window unions
    /// never exceed it.
    #[test]
    fn window_unions_nest(ds in arb_dataset(), w in 1usize..=DAYS) {
        let all = ds.all_active();
        let n_windows = ds.num_days / w;
        let mut seen = ipactive_net::AddrSet::new();
        for i in 0..n_windows {
            let win = ds.window_union(i * w..(i + 1) * w);
            prop_assert!(win.len() <= all.len());
            for a in win.iter() {
                prop_assert!(all.contains(a));
            }
            seen = seen.union(&win);
        }
        // Windows cover all days when w divides the window count.
        if n_windows * w == ds.num_days {
            prop_assert_eq!(seen.len(), all.len());
        }
    }

    /// Event-size histograms account for exactly the up events.
    #[test]
    fn event_sizes_total_matches_up_count(ds in arb_dataset(), w in 1usize..=4) {
        let n_windows = ds.num_days / w;
        if n_windows < 2 {
            return Ok(());
        }
        let hist = events::event_sizes(&ds, w, events::EventDirection::Up);
        let mut expected = 0u64;
        let mut prev = ds.window_union(0..w);
        for i in 1..n_windows {
            let cur = ds.window_union(i * w..(i + 1) * w);
            expected += cur.difference(&prev).len() as u64;
            prev = cur;
        }
        prop_assert_eq!(hist.total(), expected);
        // Bucket fractions sum to 1 when any events exist.
        if expected > 0 {
            let s: f64 = hist.figure5b_buckets().iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    /// Change detection partitions the active blocks exactly.
    #[test]
    fn change_partition_is_exhaustive(ds in arb_dataset(), month in 1usize..=6) {
        let part = change::detect(&ds, month, 0.25);
        let active = ds.blocks.iter().filter(|r| r.any_active(0..ds.num_days)).count();
        prop_assert_eq!(part.major.len() + part.stable.len(), active);
        prop_assert_eq!(part.deltas.len(), active);
        for d in &part.deltas {
            prop_assert!(d.max_delta.abs() <= 1.0 + 1e-12);
            let is_major = part.major.contains(&d.block);
            prop_assert_eq!(is_major, d.max_delta.abs() > 0.25);
        }
    }

    /// Cumulative traffic shares are monotone and end at 1 (when any
    /// traffic exists); bin populations sum to the address count.
    #[test]
    fn cumulative_shares_invariants(ds in arb_dataset()) {
        let c = traffic::cumulative_shares(&ds);
        prop_assert!(c.ips.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        prop_assert!(c.traffic.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        let total = ds.total_active();
        if total > 0 {
            prop_assert!((c.ips.last().unwrap() - 1.0).abs() < 1e-9);
            prop_assert!((c.traffic.last().unwrap() - 1.0).abs() < 1e-9);
        }
    }

    /// Figure 9(a) bins: every active address lands in exactly one bin.
    #[test]
    fn hits_bins_cover_population(ds in arb_dataset()) {
        let bins = traffic::hits_by_days_active(&ds);
        prop_assert_eq!(bins.len(), ds.num_days);
        // Recount addresses per bin by hand.
        let mut counts = vec![0usize; ds.num_days];
        for (_, t) in ds.ip_traffic() {
            counts[t.days_active as usize - 1] += 1;
        }
        for (bin, count) in bins.iter().zip(counts) {
            prop_assert_eq!(bin.is_some(), count > 0);
        }
    }

    /// top_share is monotone in the fraction and bounded by 1.
    #[test]
    fn top_share_monotone(hits in prop::collection::vec(0u64..10_000, 1..200)) {
        let s10 = traffic::top_share(&hits, 0.1);
        let s50 = traffic::top_share(&hits, 0.5);
        let s100 = traffic::top_share(&hits, 1.0);
        prop_assert!(s10 <= s50 + 1e-12);
        prop_assert!(s50 <= s100 + 1e-12);
        prop_assert!(s100 <= 1.0 + 1e-12);
        let total: u64 = hits.iter().sum();
        if total > 0 {
            prop_assert!((s100 - 1.0).abs() < 1e-12);
            // Top 10% always gets at least its proportional share.
            prop_assert!(s10 >= 0.1 - 1e-9);
        }
    }

    /// Potential-utilization categories never overlap impossible ways.
    #[test]
    fn potential_utilization_consistent(ds in arb_dataset()) {
        let p = blocks::potential_utilization(&ds);
        prop_assert!(p.low_fd_blocks <= p.active_blocks);
        prop_assert!(p.high_fd_blocks <= p.active_blocks);
        prop_assert!(p.high_fd_high_stu + p.high_fd_low_stu <= p.high_fd_blocks * 2);
        prop_assert!(p.high_fd_high_stu <= p.high_fd_blocks);
        prop_assert!(p.high_fd_low_stu <= p.high_fd_blocks);
        // FD<64 and FD>250 are disjoint.
        prop_assert!(p.low_fd_blocks + p.high_fd_blocks <= p.active_blocks);
    }
}

/// Deterministic regression: an address active every day must never
/// appear as an up or down event at any window size.
#[test]
fn always_on_address_never_churns() {
    let mut b = DailyDatasetBuilder::new(DAYS);
    let addr: Addr = "10.0.0.1".parse().unwrap();
    for d in 0..DAYS {
        b.record_hits(d, addr, 7);
    }
    // Noise neighbors.
    b.record_hits(0, "10.0.0.2".parse().unwrap(), 1);
    b.record_hits(DAYS - 1, "10.0.0.3".parse().unwrap(), 1);
    let ds = b.finish();
    for w in 1..=DAYS / 2 {
        let n = ds.num_days / w;
        let mut prev = ds.window_union(0..w);
        for i in 1..n {
            let cur = ds.window_union(i * w..(i + 1) * w);
            assert!(!cur.difference(&prev).contains(addr));
            assert!(!prev.difference(&cur).contains(addr));
            prev = cur;
        }
    }
}
