//! Geographic dissection of visibility (Section 3.4, Figure 3).

use crate::visibility::VisibilitySplit;
use ipactive_net::ActiveSet;
use ipactive_rir::{subscriber_ranks, CountryCode, DelegationDb, Rir, SubscriberRanks};
use std::collections::HashMap;

#[cfg(test)]
use ipactive_net::AddrSet;

/// Per-RIR visibility splits, indexed per [`Rir::index`] —
/// Figure 3(a).
pub fn by_rir<S: ActiveSet>(cdn: &S, icmp: &S, db: &DelegationDb) -> [VisibilitySplit; 5] {
    let mut out = [VisibilitySplit::default(); 5];
    let union = cdn.union(icmp);
    for addr in union.iter() {
        let Some(rir) = db.rir_of(addr) else { continue };
        let slot = &mut out[rir.index()];
        match (cdn.contains(addr), icmp.contains(addr)) {
            (true, true) => slot.both += 1,
            (true, false) => slot.cdn_only += 1,
            (false, true) => slot.icmp_only += 1,
            (false, false) => unreachable!("address from the union"),
        }
    }
    out
}

/// One Figure 3(b) bar: a country's visibility split plus its ITU
/// subscriber ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountryVisibility {
    /// The country.
    pub country: CountryCode,
    /// Its visibility split.
    pub split: VisibilitySplit,
    /// ITU broadband/cellular ranks, if in the Figure 3(b) table.
    pub ranks: Option<SubscriberRanks>,
}

impl CountryVisibility {
    /// Fraction of this country's seen addresses that answer ICMP —
    /// the "80% in China vs 25% in Japan" observation.
    pub fn icmp_response_rate(&self) -> f64 {
        let seen = self.split.total();
        if seen == 0 {
            0.0
        } else {
            (self.split.both + self.split.icmp_only) as f64 / seen as f64
        }
    }
}

/// Computes Figure 3(b): the top `n` countries by combined visible
/// addresses, each with its split and ITU ranks.
pub fn top_countries<S: ActiveSet>(
    cdn: &S,
    icmp: &S,
    db: &DelegationDb,
    n: usize,
) -> Vec<CountryVisibility> {
    let mut per_country: HashMap<CountryCode, VisibilitySplit> = HashMap::new();
    let union = cdn.union(icmp);
    for addr in union.iter() {
        let Some(country) = db.country_of(addr) else { continue };
        let slot = per_country.entry(country).or_default();
        match (cdn.contains(addr), icmp.contains(addr)) {
            (true, true) => slot.both += 1,
            (true, false) => slot.cdn_only += 1,
            (false, true) => slot.icmp_only += 1,
            (false, false) => unreachable!("address from the union"),
        }
    }
    let mut rows: Vec<CountryVisibility> = per_country
        .into_iter()
        .map(|(country, split)| CountryVisibility {
            country,
            split,
            ranks: subscriber_ranks(country),
        })
        .collect();
    rows.sort_by(|x, y| {
        y.split.total().cmp(&x.split.total()).then(x.country.cmp(&y.country))
    });
    rows.truncate(n);
    rows
}

/// CDN-added visibility per RIR: how much the CDN grows the visible
/// address pool relative to ICMP alone (the paper's "+150% in the
/// African region").
pub fn cdn_gain_over_icmp(split: &VisibilitySplit) -> f64 {
    let icmp_seen = split.both + split.icmp_only;
    if icmp_seen == 0 {
        if split.cdn_only > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        split.cdn_only as f64 / icmp_seen as f64
    }
}

/// Re-exported display order for the Figure 3(a) bars.
pub fn rir_display_order() -> [Rir; 5] {
    Rir::ALL
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_net::Addr;
    use ipactive_rir::Delegation;

    fn set(addrs: &[&str]) -> AddrSet {
        addrs.iter().map(|s| s.parse::<Addr>().unwrap()).collect()
    }

    fn db() -> DelegationDb {
        let mut db = DelegationDb::new();
        for (p, rir, cc) in [
            ("10.0.0.0/8", Rir::Arin, "US"),
            ("80.0.0.0/8", Rir::Ripe, "DE"),
            ("1.0.0.0/8", Rir::Apnic, "CN"),
            ("41.0.0.0/8", Rir::Afrinic, "ZA"),
        ] {
            db.insert(Delegation {
                prefix: p.parse().unwrap(),
                rir,
                country: CountryCode::new(cc),
            });
        }
        db
    }

    #[test]
    fn rir_grouping() {
        let cdn = set(&["10.0.0.1", "10.0.0.2", "80.1.1.1"]);
        let icmp = set(&["10.0.0.2", "1.2.3.4"]);
        let grouped = by_rir(&cdn, &icmp, &db());
        let arin = grouped[Rir::Arin.index()];
        assert_eq!(arin, VisibilitySplit { cdn_only: 1, both: 1, icmp_only: 0 });
        let ripe = grouped[Rir::Ripe.index()];
        assert_eq!(ripe.cdn_only, 1);
        let apnic = grouped[Rir::Apnic.index()];
        assert_eq!(apnic.icmp_only, 1);
        assert_eq!(grouped[Rir::Lacnic.index()].total(), 0);
    }

    #[test]
    fn undelegated_addresses_are_skipped() {
        let cdn = set(&["200.0.0.1"]); // not in the fixture db
        let grouped = by_rir(&cdn, &AddrSet::new(), &db());
        assert!(grouped.iter().all(|s| s.total() == 0));
    }

    #[test]
    fn top_countries_sorted_and_ranked() {
        let cdn = set(&["10.0.0.1", "10.0.0.2", "10.0.0.3", "1.1.1.1", "80.1.1.1"]);
        let icmp = set(&["1.1.1.1", "1.1.1.2"]);
        let rows = top_countries(&cdn, &icmp, &db(), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].country.as_str(), "US");
        assert_eq!(rows[0].split.total(), 3);
        assert_eq!(rows[1].country.as_str(), "CN");
        assert_eq!(rows[1].split.total(), 2);
        assert!(rows[0].ranks.is_some());
        // CN: 2 addrs, both ICMP-visible -> response rate 1.0.
        assert!((rows[1].icmp_response_rate() - 1.0).abs() < 1e-12);
        // US: 3 addrs, none ICMP-visible.
        assert_eq!(rows[0].icmp_response_rate(), 0.0);
    }

    #[test]
    fn cdn_gain_metric() {
        let s = VisibilitySplit { cdn_only: 150, both: 80, icmp_only: 20 };
        assert!((cdn_gain_over_icmp(&s) - 1.5).abs() < 1e-12);
        let none = VisibilitySplit { cdn_only: 5, both: 0, icmp_only: 0 };
        assert!(cdn_gain_over_icmp(&none).is_infinite());
        assert_eq!(cdn_gain_over_icmp(&VisibilitySplit::default()), 0.0);
    }
}
