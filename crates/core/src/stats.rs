//! Small statistics toolkit shared by the analyses: percentiles,
//! empirical CDFs, five-number summaries, and ordinary least squares —
//! everything the paper's figures need, nothing more.

/// Percentile of a **sorted** slice using nearest-rank interpolation.
///
/// `p` in `[0, 100]`. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of a sorted slice.
pub fn median_sorted(sorted: &[f64]) -> f64 {
    percentile_sorted(sorted, 50.0)
}

/// The five percentiles the paper's Figure 9(a) bands use.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary5 {
    /// 5th percentile.
    pub p5: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary5 {
    /// Computes the summary, sorting a copy of the input.
    /// Returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<Summary5> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Some(Summary5 {
            p5: percentile_sorted(&v, 5.0),
            p25: percentile_sorted(&v, 25.0),
            p50: percentile_sorted(&v, 50.0),
            p75: percentile_sorted(&v, 75.0),
            p95: percentile_sorted(&v, 95.0),
        })
    }
}

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF, sorting the samples. Panics on NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF input"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile, `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Evaluates the CDF at evenly spaced points over `[lo, hi]`,
    /// producing plot-ready `(x, F(x))` pairs.
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_le(x))
            })
            .collect()
    }

    /// The raw sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

impl LinearFit {
    /// Fits `(x, y)` pairs. Returns `None` with fewer than two points
    /// or zero x-variance.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        let n = points.len() as f64;
        if points.len() < 2 {
            return None;
        }
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        let mean_y = sy / n;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 =
            points.iter().map(|p| (p.1 - (slope * p.0 + intercept)).powi(2)).sum();
        let r2 = if ss_tot.abs() < f64::EPSILON { 1.0 } else { 1.0 - ss_res / ss_tot };
        Some(LinearFit { slope, intercept, r2 })
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Gini coefficient of a set of non-negative values — a standard
/// inequality measure complementing the top-decile share when
/// describing traffic concentration (0 = perfectly even, →1 = one
/// address carries everything).
pub fn gini(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<u64> = values.to_vec();
    v.sort_unstable();
    let n = v.len() as f64;
    let total: f64 = v.iter().map(|&x| x as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2·Σ i·x_i) / (n·Σ x) − (n+1)/n with 1-based ranks on the
    // ascending sort.
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Lincoln–Petersen capture/recapture estimate of a total population
/// from two independent sightings.
///
/// The paper's 1.2 B active-address count "agrees with recent
/// estimates" produced by exactly this family of statistical models
/// (Zander et al. — reference \[37\] in the paper — use a multi-source
/// capture/recapture estimator).
/// Given `n1` addresses seen by method 1, `n2` by method 2, and `m`
/// seen by both, the population estimate is `n1·n2 / m`.
///
/// Returns `None` when the overlap is empty (the estimator diverges).
pub fn lincoln_petersen(n1: u64, n2: u64, overlap: u64) -> Option<f64> {
    if overlap == 0 {
        return None;
    }
    Some(n1 as f64 * n2 as f64 / overlap as f64)
}

/// Chapman's bias-corrected capture/recapture estimator:
/// `(n1+1)(n2+1)/(m+1) − 1`. Defined for any overlap, less biased than
/// Lincoln–Petersen for small samples.
pub fn chapman(n1: u64, n2: u64, overlap: u64) -> f64 {
    ((n1 + 1) as f64 * (n2 + 1) as f64) / (overlap + 1) as f64 - 1.0
}

/// `(min, median, max)` of a set of percentages — the triple plotted
/// per window size in Figure 4(b).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MinMedMax {
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl MinMedMax {
    /// Computes the triple; `None` for empty input.
    pub fn of(values: &[f64]) -> Option<MinMedMax> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN input"));
        Some(MinMedMax { min: v[0], median: median_sorted(&v), max: *v.last().unwrap() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 5.0);
        assert_eq!(percentile_sorted(&v, 50.0), 3.0);
        assert_eq!(percentile_sorted(&v, 25.0), 2.0);
        assert!((percentile_sorted(&v, 10.0) - 1.4).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn summary5_ordering() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary5::of(&values).unwrap();
        assert!(s.p5 < s.p25 && s.p25 < s.p50 && s.p50 < s.p75 && s.p75 < s.p95);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(Summary5::of(&[]).is_none());
    }

    #[test]
    fn ecdf_fractions() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(1.0), 0.25);
        assert_eq!(e.fraction_le(2.0), 0.75);
        assert_eq!(e.fraction_le(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 3.0);
        let curve = e.curve(0.0, 4.0, 5);
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0], (0.0, 0.0));
        assert_eq!(curve[4], (4.0, 1.0));
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 7.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert!((fit.predict(100.0) - 307.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(LinearFit::fit(&[]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0)]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none()); // no x-variance
    }

    #[test]
    fn linear_fit_r2_reflects_noise() {
        let clean: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let noisy: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64, 2.0 * i as f64 + if i % 2 == 0 { 8.0 } else { -8.0 }))
            .collect();
        let f1 = LinearFit::fit(&clean).unwrap();
        let f2 = LinearFit::fit(&noisy).unwrap();
        assert!(f1.r2 > f2.r2);
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12, "equal shares → 0");
        // One holder of everything among n: G = (n-1)/n.
        let g = gini(&[0, 0, 0, 100]);
        assert!((g - 0.75).abs() < 1e-12, "g={g}");
        // Monotone in concentration.
        assert!(gini(&[90, 5, 5]) > gini(&[40, 30, 30]));
        assert!((0.0..1.0).contains(&gini(&[1, 2, 3, 4, 5, 100])));
    }

    #[test]
    fn capture_recapture_estimators() {
        // Classic textbook case: 400 marked, 300 recaptured, 60 overlap
        // → population 2000.
        assert_eq!(lincoln_petersen(400, 300, 60), Some(2000.0));
        assert_eq!(lincoln_petersen(400, 300, 0), None);
        // Chapman is close to LP for large overlap, defined at 0.
        let lp = lincoln_petersen(400, 300, 60).unwrap();
        let ch = chapman(400, 300, 60);
        assert!((lp - ch).abs() / lp < 0.02, "lp {lp} ch {ch}");
        assert!(chapman(10, 10, 0) > 100.0);
        // Full overlap: estimate equals the sample.
        assert_eq!(lincoln_petersen(100, 100, 100), Some(100.0));
    }

    #[test]
    fn min_med_max() {
        let m = MinMedMax::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!((m.min, m.median, m.max), (1.0, 3.0, 5.0));
        assert!(MinMedMax::of(&[]).is_none());
    }
}
