//! Addressing practice at block level (Sections 5.3–5.4,
//! Figures 8(b) and 8(c)).

use crate::dataset::DailyDataset;
use crate::par::Parallelism;
use crate::stats::Ecdf;
use ipactive_dns::{classify_block, AssignmentHint, PtrTable};
use ipactive_net::{ActiveSet, Block24};

/// Filling-degree distributions split by DNS-derived assignment class
/// (Figure 8(b)).
#[derive(Debug, Clone)]
pub struct FdByAssignment {
    /// FD ECDF over all active blocks.
    pub all: Ecdf,
    /// FD ECDF over PTR-tagged static blocks.
    pub static_blocks: Ecdf,
    /// FD ECDF over PTR-tagged dynamic blocks.
    pub dynamic_blocks: Ecdf,
    /// Number of blocks tagged static.
    pub n_static: usize,
    /// Number of blocks tagged dynamic.
    pub n_dynamic: usize,
}

/// Computes Figure 8(b): filling degree of active `/24` blocks, with
/// PTR-keyword-tagged static and dynamic subsets.
///
/// `min_records` is the PTR coverage a block needs before it is
/// tagged (consistency rule of [`classify_block`]).
pub fn fd_by_assignment(ds: &DailyDataset, ptr: &PtrTable, min_records: usize) -> FdByAssignment {
    let mut all = Vec::new();
    let mut stat = Vec::new();
    let mut dyn_ = Vec::new();
    for rec in &ds.blocks {
        let fd = rec.filling_degree(0..ds.num_days);
        if fd == 0 {
            continue;
        }
        all.push(fd as f64);
        match classify_block(ptr, rec.block, min_records) {
            AssignmentHint::Static => stat.push(fd as f64),
            AssignmentHint::Dynamic => dyn_.push(fd as f64),
            AssignmentHint::Unknown => {}
        }
    }
    FdByAssignment {
        n_static: stat.len(),
        n_dynamic: dyn_.len(),
        all: Ecdf::new(all),
        static_blocks: Ecdf::new(stat),
        dynamic_blocks: Ecdf::new(dyn_),
    }
}

/// [`fd_by_assignment`] computed against a pre-materialized
/// full-window union, with the block scan split into chunk-range
/// subtasks.
///
/// `all_active` must be the union of every day's activity (what
/// [`DailyDataset::all_active_as`] returns — or a cache's memoized
/// copy). A block's filling degree over the full window is exactly
/// the number of its addresses in that union, so
/// `all_active.count_in(block)` replaces the 256-row matrix walk of
/// [`BlockRecord::filling_degree`](crate::BlockRecord::filling_degree)
/// and the result agrees exactly with [`fd_by_assignment`]. Chunk
/// results concatenate in block order, preserving the serial Ecdf
/// inputs.
pub fn fd_by_assignment_over<S: ActiveSet>(
    ds: &DailyDataset,
    all_active: &S,
    ptr: &PtrTable,
    min_records: usize,
    par: &Parallelism,
) -> FdByAssignment {
    let chunks = par.run(ds.blocks.len(), 64, |range| {
        let mut all = Vec::new();
        let mut stat = Vec::new();
        let mut dyn_ = Vec::new();
        for rec in &ds.blocks[range] {
            let fd = all_active.count_in(rec.block.prefix()) as u32;
            if fd == 0 {
                continue;
            }
            all.push(fd as f64);
            match classify_block(ptr, rec.block, min_records) {
                AssignmentHint::Static => stat.push(fd as f64),
                AssignmentHint::Dynamic => dyn_.push(fd as f64),
                AssignmentHint::Unknown => {}
            }
        }
        (all, stat, dyn_)
    });
    let (mut all, mut stat, mut dyn_) = (Vec::new(), Vec::new(), Vec::new());
    for (a, s, d) in chunks {
        all.extend(a);
        stat.extend(s);
        dyn_.extend(d);
    }
    FdByAssignment {
        n_static: stat.len(),
        n_dynamic: dyn_.len(),
        all: Ecdf::new(all),
        static_blocks: Ecdf::new(stat),
        dynamic_blocks: Ecdf::new(dyn_),
    }
}

/// Figure 8(c): histogram of spatio-temporal utilization (as a
/// percentage of maximum) for highly-filled blocks.
#[derive(Debug, Clone)]
pub struct StuHistogram {
    /// Bin edges are `i*width .. (i+1)*width` percent.
    pub counts: Vec<u64>,
    /// Bin width in percentage points.
    pub width: f64,
    /// Number of blocks included.
    pub total: u64,
}

impl StuHistogram {
    /// Fraction of included blocks with STU% at or above `pct`.
    pub fn fraction_ge(&self, pct: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let first_bin = (pct / self.width).floor() as usize;
        let n: u64 = self.counts.iter().skip(first_bin).sum();
        n as f64 / self.total as f64
    }
}

/// Computes Figure 8(c): STU distribution over blocks with filling
/// degree strictly above `fd_threshold` (paper: 250 — the likely
/// dynamically-assigned pools).
pub fn stu_histogram_high_fd(ds: &DailyDataset, fd_threshold: u32, bins: usize) -> StuHistogram {
    assert!(bins >= 1);
    let width = 100.0 / bins as f64;
    let mut counts = vec![0u64; bins];
    let mut total = 0u64;
    for rec in &ds.blocks {
        if rec.filling_degree(0..ds.num_days) <= fd_threshold {
            continue;
        }
        let pct = rec.stu(0..ds.num_days) * 100.0;
        let bin = ((pct / width) as usize).min(bins - 1);
        counts[bin] += 1;
        total += 1;
    }
    StuHistogram { counts, width, total }
}

/// The Section 5.4 potential-utilization estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PotentialUtilization {
    /// Active blocks in the dataset.
    pub active_blocks: usize,
    /// Active blocks with FD < 64 — sparsely used, mostly static
    /// assignment ("more than 30%" in the paper).
    pub low_fd_blocks: usize,
    /// Blocks with FD > 250 (likely dynamic pools).
    pub high_fd_blocks: usize,
    /// High-FD blocks with STU ≥ 0.8 (well-utilized pools).
    pub high_fd_high_stu: usize,
    /// High-FD blocks with STU < 0.6 — oversized pools whose size
    /// could be reduced ("reducing their pool sizes could instantly
    /// free significant portions of address space").
    pub high_fd_low_stu: usize,
}

/// Computes the Section 5.4 summary.
pub fn potential_utilization(ds: &DailyDataset) -> PotentialUtilization {
    let mut out = PotentialUtilization {
        active_blocks: 0,
        low_fd_blocks: 0,
        high_fd_blocks: 0,
        high_fd_high_stu: 0,
        high_fd_low_stu: 0,
    };
    for rec in &ds.blocks {
        let fd = rec.filling_degree(0..ds.num_days);
        if fd == 0 {
            continue;
        }
        out.active_blocks += 1;
        if fd < 64 {
            out.low_fd_blocks += 1;
        }
        if fd > 250 {
            out.high_fd_blocks += 1;
            let stu = rec.stu(0..ds.num_days);
            if stu >= 0.8 {
                out.high_fd_high_stu += 1;
            }
            if stu < 0.6 {
                out.high_fd_low_stu += 1;
            }
        }
    }
    out
}

/// Convenience: the blocks of a dataset with a given assignment hint.
pub fn blocks_with_hint(
    ds: &DailyDataset,
    ptr: &PtrTable,
    hint: AssignmentHint,
    min_records: usize,
) -> Vec<Block24> {
    ds.blocks
        .iter()
        .filter(|r| r.any_active(0..ds.num_days))
        .filter(|r| classify_block(ptr, r.block, min_records) == hint)
        .map(|r| r.block)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_dns::NamingScheme;
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    /// Builds: one sparse static block (FD 20), one full dynamic block
    /// (FD 256, STU 1.0), one full-but-lazy dynamic block (FD 256,
    /// STU 0.25), one untagged medium block (FD 100).
    fn fixture() -> (DailyDataset, PtrTable) {
        let mut b = DailyDatasetBuilder::new(8);
        let static_b = Block24::of(a("10.0.0.0"));
        let dyn_full = Block24::of(a("10.0.1.0"));
        let dyn_lazy = Block24::of(a("10.0.2.0"));
        let opaque = Block24::of(a("10.0.3.0"));
        for host in 0..20u8 {
            for d in 0..8 {
                b.record_hits(d, static_b.addr(host), 1);
            }
        }
        for host in 0..=255u8 {
            for d in 0..8 {
                b.record_hits(d, dyn_full.addr(host), 1);
            }
        }
        for host in 0..=255u8 {
            // Every address active exactly 2 of 8 days: FD 256, STU 0.25.
            for d in 0..2usize {
                b.record_hits((host as usize + d) % 8, dyn_lazy.addr(host), 1);
            }
        }
        for host in 0..100u8 {
            b.record_hits(0, opaque.addr(host), 1);
        }
        let ds = b.finish();

        let mut ptr = PtrTable::new();
        ptr.set_scheme(static_b, NamingScheme::StaticKeyword { domain: "u.example".into() });
        ptr.set_scheme(dyn_full, NamingScheme::PoolKeyword { domain: "isp.example".into() });
        ptr.set_scheme(dyn_lazy, NamingScheme::DynamicKeyword { domain: "isp.example".into() });
        ptr.set_scheme(opaque, NamingScheme::Opaque { domain: "corp.example".into() });
        (ds, ptr)
    }

    #[test]
    fn fd_split_matches_tagging() {
        let (ds, ptr) = fixture();
        let split = fd_by_assignment(&ds, &ptr, 10);
        assert_eq!(split.all.len(), 4);
        assert_eq!(split.n_static, 1);
        assert_eq!(split.n_dynamic, 2);
        // Static blocks all have FD <= 64 here; dynamic all > 250.
        assert_eq!(split.static_blocks.fraction_le(64.0), 1.0);
        assert_eq!(split.dynamic_blocks.fraction_le(250.0), 0.0);
    }

    #[test]
    fn fd_split_over_union_matches_matrix_walk() {
        let (ds, ptr) = fixture();
        let expect = fd_by_assignment(&ds, &ptr, 10);
        let all: ipactive_net::TieredSet = ds.all_active_as();
        for pool in [Parallelism::serial(), Parallelism::new(3)] {
            let got = fd_by_assignment_over(&ds, &all, &ptr, 10, &pool);
            assert_eq!(got.all.samples(), expect.all.samples());
            assert_eq!(got.static_blocks.samples(), expect.static_blocks.samples());
            assert_eq!(got.dynamic_blocks.samples(), expect.dynamic_blocks.samples());
            assert_eq!(got.n_static, expect.n_static);
            assert_eq!(got.n_dynamic, expect.n_dynamic);
        }
    }

    #[test]
    fn stu_histogram_separates_full_and_lazy_pools() {
        let (ds, _) = fixture();
        let h = stu_histogram_high_fd(&ds, 250, 10);
        assert_eq!(h.total, 2);
        // One pool at 100%, one at 25%.
        assert!((h.fraction_ge(90.0) - 0.5).abs() < 1e-12);
        assert!((h.fraction_ge(20.0) - 1.0).abs() < 1e-12);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn potential_utilization_summary() {
        let (ds, _) = fixture();
        let p = potential_utilization(&ds);
        assert_eq!(p.active_blocks, 4);
        assert_eq!(p.low_fd_blocks, 1); // the FD-20 static block
        assert_eq!(p.high_fd_blocks, 2);
        assert_eq!(p.high_fd_high_stu, 1);
        assert_eq!(p.high_fd_low_stu, 1); // the lazy pool: reclaimable
    }

    #[test]
    fn blocks_with_hint_filters() {
        let (ds, ptr) = fixture();
        let stat = blocks_with_hint(&ds, &ptr, AssignmentHint::Static, 10);
        assert_eq!(stat, vec![Block24::of(a("10.0.0.0"))]);
        let unk = blocks_with_hint(&ds, &ptr, AssignmentHint::Unknown, 10);
        assert_eq!(unk, vec![Block24::of(a("10.0.3.0"))]);
    }

    #[test]
    fn empty_dataset_is_empty_everything() {
        let ds = DailyDatasetBuilder::new(4).finish();
        let p = potential_utilization(&ds);
        assert_eq!(p.active_blocks, 0);
        let h = stu_histogram_high_fd(&ds, 250, 10);
        assert_eq!(h.total, 0);
        assert_eq!(h.fraction_ge(0.0), 0.0);
    }
}
