//! The dataset model: what the collector hands to the analyses.
//!
//! The paper's processed CDN logs give, per IP address, the exact
//! number of successful requests per day (daily dataset, 112 days,
//! Aug 17 – Dec 6 2015) and per week (weekly dataset, 52 weeks of
//! 2015). [`DailyDataset`] and [`WeeklyDataset`] are the in-memory
//! equivalents, organized per `/24` block so the spatio-temporal
//! analyses of Section 5 read naturally off the activity matrices.

use crate::coverage::Coverage;
use ipactive_net::{ActiveSet, Addr, AddrBits256, AddrSet, Block24, DayBits, SetBuilder};
use std::collections::HashMap;
use std::sync::Arc;

/// Source of window-union activity sets over a daily dataset.
///
/// Every figure and table of the paper is, at its core, a set query
/// over the same activity matrix (Section 4.1's sliding windows). The
/// analyses that consume whole-window unions ([`crate::events`],
/// [`crate::churn::long_term`]) are generic over this trait so a
/// caller can substitute a *memoized* provider — computing each
/// distinct window once and sharing the `Arc` across figures —
/// without the analysis code knowing about caching. [`DailyDataset`]
/// implements it by computing fresh (the uncached baseline).
pub trait DailyWindows {
    /// The set backend window unions materialize into.
    type Set: ActiveSet;
    /// Length of the observation window in days.
    fn num_days(&self) -> usize;
    /// Union of active addresses over a day range.
    fn union(&self, days: core::ops::Range<usize>) -> Arc<Self::Set>;
}

/// Weekly counterpart of [`DailyWindows`].
pub trait WeeklyWindows {
    /// The set backend window unions materialize into.
    type Set: ActiveSet;
    /// Number of weeks in the dataset.
    fn num_weeks(&self) -> usize;
    /// Union of addresses active in a week range.
    fn union(&self, weeks: core::ops::Range<usize>) -> Arc<Self::Set>;
}

impl DailyWindows for DailyDataset {
    type Set = AddrSet;

    fn num_days(&self) -> usize {
        self.num_days
    }

    fn union(&self, days: core::ops::Range<usize>) -> Arc<AddrSet> {
        Arc::new(self.window_union(days))
    }
}

impl WeeklyWindows for WeeklyDataset {
    type Set = AddrSet;

    fn num_weeks(&self) -> usize {
        self.num_weeks
    }

    fn union(&self, weeks: core::ops::Range<usize>) -> Arc<AddrSet> {
        Arc::new(self.window_union(weeks))
    }
}

/// Per-address traffic summary over the daily window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpTraffic {
    /// Host index within the block (last octet).
    pub host: u8,
    /// Number of days the address was active (1..=num_days).
    pub days_active: u8,
    /// Total hits over the window.
    pub total_hits: u64,
    /// Median hits over the address's *active* days.
    pub median_daily_hits: u32,
}

/// Activity and traffic of one `/24` block over the daily window.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRecord {
    /// The block.
    pub block: Block24,
    /// Activity matrix: `rows[i]` is the day-bitset of address `x.y.z.i`.
    pub rows: Box<[DayBits; 256]>,
    /// Total hits from the block over the window.
    pub total_hits: u64,
    /// Number of sampled User-Agent observations (1-in-N of hits).
    pub ua_samples: u64,
    /// Number of *distinct* sampled User-Agent strings.
    pub ua_unique: u32,
    /// Per-address traffic summaries (only addresses with activity),
    /// sorted by host index.
    pub ip_traffic: Vec<IpTraffic>,
}

impl BlockRecord {
    /// Filling degree (Section 5.1): number of addresses active at
    /// least once in `days`. Range 0..=256 (the paper writes 1..=256
    /// because it only considers *active* blocks).
    pub fn filling_degree(&self, days: core::ops::Range<usize>) -> u32 {
        self.rows
            .iter()
            .filter(|bits| bits.any_in_range(days.start, days.end))
            .count() as u32
    }

    /// Spatio-temporal utilization (Section 5.1): total active
    /// (address, day) pairs in `days` divided by the maximum
    /// `256 × days.len()`. Range 0..=1.
    pub fn stu(&self, days: core::ops::Range<usize>) -> f64 {
        let span = days.end - days.start;
        if span == 0 {
            return 0.0;
        }
        let active: u32 = self.rows.iter().map(|b| b.count_range(days.start, days.end)).sum();
        active as f64 / (256.0 * span as f64)
    }

    /// Number of addresses active on a single day.
    pub fn active_on(&self, day: usize) -> u32 {
        self.rows.iter().filter(|b| b.get(day)).count() as u32
    }

    /// Whether any address was active in `days`.
    pub fn any_active(&self, days: core::ops::Range<usize>) -> bool {
        self.rows.iter().any(|b| b.any_in_range(days.start, days.end))
    }
}

/// The daily dataset: one [`BlockRecord`] per active `/24`, sorted by
/// block, over `num_days` observation days.
///
/// Equality compares the *observed data* (`num_days` and `blocks`)
/// only; [`DailyDataset::coverage`] is collection provenance, so a
/// degraded run whose retries all succeeded compares equal to the
/// fault-free run even though one carries a coverage annotation.
#[derive(Debug, Clone)]
pub struct DailyDataset {
    /// Length of the observation window in days (112 in the paper).
    pub num_days: usize,
    /// Per-block records, sorted by block id.
    pub blocks: Vec<BlockRecord>,
    /// Data-completeness annotation from a supervised collection run;
    /// `None` when the dataset came from a direct build or an
    /// unsupervised pipeline (which either delivers everything or
    /// reports damage out-of-band).
    pub coverage: Option<Coverage>,
}

impl PartialEq for DailyDataset {
    fn eq(&self, other: &Self) -> bool {
        self.num_days == other.num_days && self.blocks == other.blocks
    }
}

impl DailyDataset {
    /// Attaches a completeness annotation (builder style).
    pub fn with_coverage(mut self, coverage: Coverage) -> DailyDataset {
        self.coverage = Some(coverage);
        self
    }

    /// Looks up a block's record.
    pub fn block(&self, block: Block24) -> Option<&BlockRecord> {
        self.blocks
            .binary_search_by_key(&block, |r| r.block)
            .ok()
            .map(|i| &self.blocks[i])
    }

    /// The set of addresses active on day `d`.
    pub fn day_set(&self, d: usize) -> AddrSet {
        self.day_set_as(d)
    }

    /// [`Self::day_set`] materialized into any [`ActiveSet`] backend.
    ///
    /// Streams each block's activity bitmap into the backend's
    /// [`SetBuilder`], so there is no counting pre-pass and nothing is
    /// allocated for inactive blocks — an empty day yields a genuinely
    /// empty set, and a single-address day costs one sparse chunk.
    pub fn day_set_as<S: ActiveSet>(&self, d: usize) -> S {
        assert!(d < self.num_days, "day {d} outside window");
        let mut b = <S::Builder>::new();
        for rec in &self.blocks {
            // Branch-free: extract bit `d` of each row straight into
            // the block bitmap's words, so the 256-row scan reduces to
            // shift/or chains the compiler can unroll and vectorize.
            let mut words = [0u64; 4];
            for (i, row) in rec.rows.iter().enumerate() {
                words[i >> 6] |= ((row.bits() >> d) as u64 & 1) << (i & 63);
            }
            b.push_block(rec.block, &AddrBits256::from_words(words));
        }
        b.finish()
    }

    /// Every day's active set in one transposed pass: instead of
    /// `num_days` scans that each read all 256 rows of every block,
    /// walk the matrix once and scatter each row's set day-bits into
    /// per-day block bitmaps. Work is proportional to the *active*
    /// (address, day) pairs plus one pass over the rows, so building
    /// all sets costs a fraction of `num_days` × [`Self::day_set_as`].
    /// Element `d` equals `day_set_as(d)` exactly (differentially
    /// pinned).
    pub fn day_sets_all<S: ActiveSet>(&self) -> Vec<S> {
        let d = self.num_days;
        let mut builders: Vec<S::Builder> = (0..d).map(|_| <S::Builder>::new()).collect();
        let mut buf: Vec<[u64; 4]> = vec![[0u64; 4]; d];
        for rec in &self.blocks {
            let mut touched: u128 = 0;
            for (i, row) in rec.rows.iter().enumerate() {
                let mut bits = row.bits();
                touched |= bits;
                while bits != 0 {
                    let day = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    buf[day][i >> 6] |= 1u64 << (i & 63);
                }
            }
            // Push (and clear) only the days this block touched, in
            // ascending block order per builder by construction.
            let mut t = touched;
            while t != 0 {
                let day = t.trailing_zeros() as usize;
                t &= t - 1;
                builders[day].push_block(rec.block, &AddrBits256::from_words(buf[day]));
                buf[day] = [0u64; 4];
            }
        }
        builders.into_iter().map(|b| b.finish()).collect()
    }

    /// Union of active addresses over a day range (a "window" in the
    /// Section 4.1 sense).
    pub fn window_union(&self, days: core::ops::Range<usize>) -> AddrSet {
        self.window_union_as(days)
    }

    /// [`Self::window_union`] materialized into any backend (see
    /// [`Self::day_set_as`] for the construction strategy).
    pub fn window_union_as<S: ActiveSet>(&self, days: core::ops::Range<usize>) -> S {
        assert!(days.end <= self.num_days, "window outside dataset");
        let width = days.end - days.start;
        let mask: u128 = if width == 0 {
            0
        } else if width == DayBits::CAPACITY {
            u128::MAX
        } else {
            ((1u128 << width) - 1) << days.start
        };
        let mut b = <S::Builder>::new();
        for rec in &self.blocks {
            // Branch-free window test per row (see `day_set_as`).
            let mut words = [0u64; 4];
            for (i, row) in rec.rows.iter().enumerate() {
                words[i >> 6] |= ((row.bits() & mask != 0) as u64) << (i & 63);
            }
            b.push_block(rec.block, &AddrBits256::from_words(words));
        }
        b.finish()
    }

    /// All addresses active at least once in the window.
    pub fn all_active(&self) -> AddrSet {
        self.window_union(0..self.num_days)
    }

    /// [`Self::all_active`] materialized into any backend.
    pub fn all_active_as<S: ActiveSet>(&self) -> S {
        self.window_union_as(0..self.num_days)
    }

    /// Total number of distinct active addresses.
    pub fn total_active(&self) -> usize {
        self.blocks
            .iter()
            .map(|r| r.rows.iter().filter(|b| !b.is_empty()).count())
            .sum()
    }

    /// Iterator over every per-address traffic summary.
    pub fn ip_traffic(&self) -> impl Iterator<Item = (Addr, &IpTraffic)> + '_ {
        self.blocks
            .iter()
            .flat_map(|r| r.ip_traffic.iter().map(move |t| (r.block.addr(t.host), t)))
    }

    /// Merges two *block-disjoint* partitions of one logical dataset
    /// into their union — the finalize step of a sharded collector,
    /// where each shard owns the `/24` blocks that hashed to it.
    ///
    /// The merge is commutative and associative: blocks are re-sorted
    /// into canonical order, so the result is independent of shard
    /// count and arrival order. Finished [`BlockRecord`]s no longer
    /// carry the per-day values and UA hash sets needed to combine two
    /// views of the *same* block (`median_daily_hits`, `ua_unique`),
    /// so overlapping partitions cannot be merged losslessly —
    /// callers with overlapping inputs must merge at the builder level
    /// ([`DailyDatasetBuilder::merge`]) instead.
    ///
    /// Coverage merges alongside the blocks when *both* partitions
    /// carry it (shard rows concatenate, `self` first); if either side
    /// is unannotated the merged provenance is unknown and dropped.
    ///
    /// # Panics
    /// If window lengths differ or any block appears in both inputs.
    pub fn merge(self, other: DailyDataset) -> DailyDataset {
        assert_eq!(
            self.num_days, other.num_days,
            "cannot merge datasets over different windows"
        );
        let num_days = self.num_days;
        let coverage = match (self.coverage, other.coverage) {
            (Some(a), Some(b)) => Some(a.merge(b)),
            _ => None,
        };
        let mut blocks = self.blocks;
        blocks.extend(other.blocks);
        blocks.sort_unstable_by_key(|r| r.block);
        for w in blocks.windows(2) {
            assert!(
                w[0].block != w[1].block,
                "block {} present in both partitions; merge the builders instead",
                w[0].block
            );
        }
        DailyDataset { num_days, blocks, coverage }
    }
}

/// Accumulator used by collectors to build a [`DailyDataset`] from a
/// stream of `(day, addr, hits)` and `(day, addr, ua_hash)` records —
/// in any order.
#[derive(Debug, Default)]
pub struct DailyDatasetBuilder {
    num_days: usize,
    blocks: HashMap<Block24, BlockAcc>,
}

#[derive(Debug, Default)]
struct BlockAcc {
    ips: HashMap<u8, IpAcc>,
    total_hits: u64,
    ua_samples: u64,
    ua_hashes: std::collections::HashSet<u64>,
}

#[derive(Debug, Default)]
struct IpAcc {
    bits: DayBits,
    /// `(day, hits)` per active day, in arrival order.
    daily: Vec<(u8, u32)>,
    total: u64,
}

impl IpAcc {
    /// Combines another accumulator for the same address: days active
    /// in both sum their hit counts, days active in one carry over.
    fn merge(&mut self, other: IpAcc) {
        for (day, hits) in other.daily {
            if self.bits.get(day as usize) {
                let slot = self
                    .daily
                    .iter_mut()
                    .find(|(d, _)| *d == day)
                    .expect("bit set implies a daily sample exists");
                slot.1 = slot.1.saturating_add(hits);
            } else {
                self.bits.set(day as usize);
                self.daily.push((day, hits));
            }
        }
        self.total += other.total;
    }
}

impl DailyDatasetBuilder {
    /// Creates a builder for a window of `num_days` days (≤ 128).
    pub fn new(num_days: usize) -> Self {
        assert!(num_days <= DayBits::CAPACITY, "window exceeds {} days", DayBits::CAPACITY);
        DailyDatasetBuilder { num_days, blocks: HashMap::new() }
    }

    /// Records `hits` successful requests from `addr` on `day`.
    /// Multiple records for the same (day, addr) accumulate.
    pub fn record_hits(&mut self, day: usize, addr: Addr, hits: u64) {
        assert!(day < self.num_days, "day {day} outside window");
        if hits == 0 {
            return; // activity is defined by successful requests
        }
        let acc = self.blocks.entry(Block24::of(addr)).or_default();
        acc.total_hits += hits;
        let ip = acc.ips.entry(addr.host_index()).or_default();
        let clamped = hits.min(u32::MAX as u64) as u32;
        if ip.bits.get(day) {
            // Accumulate into the existing sample for this day.
            let slot = ip
                .daily
                .iter_mut()
                .find(|(d, _)| *d as usize == day)
                .expect("bit set implies a daily sample exists");
            slot.1 = slot.1.saturating_add(clamped);
        } else {
            ip.bits.set(day);
            ip.daily.push((day as u8, clamped));
        }
        ip.total += hits;
    }

    /// Records one sampled User-Agent observation.
    pub fn record_ua(&mut self, _day: usize, addr: Addr, ua_hash: u64) {
        let acc = self.blocks.entry(Block24::of(addr)).or_default();
        acc.ua_samples += 1;
        acc.ua_hashes.insert(ua_hash);
    }

    /// Folds another builder's accumulated records into this one, as
    /// if every record fed to `other` had been fed here instead.
    ///
    /// Unlike [`DailyDataset::merge`] this is fully general — the
    /// accumulators still hold per-day hit values and UA hash sets, so
    /// overlapping blocks, addresses, and days combine exactly. The
    /// operation is commutative and associative up to `finish()`
    /// (which canonicalizes all ordering), which is what makes a
    /// sharded collector's result independent of merge order.
    ///
    /// # Panics
    /// If the builders cover different window lengths.
    pub fn merge(&mut self, other: DailyDatasetBuilder) {
        assert_eq!(
            self.num_days, other.num_days,
            "cannot merge builders over different windows"
        );
        for (block, acc) in other.blocks {
            match self.blocks.entry(block) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(acc);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let mine = slot.get_mut();
                    mine.total_hits += acc.total_hits;
                    mine.ua_samples += acc.ua_samples;
                    mine.ua_hashes.extend(acc.ua_hashes);
                    for (host, ip) in acc.ips {
                        match mine.ips.entry(host) {
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                slot.insert(ip);
                            }
                            std::collections::hash_map::Entry::Occupied(mut slot) => {
                                slot.get_mut().merge(ip);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Finalizes into an immutable dataset.
    ///
    /// Blocks that never recorded a hit are dropped, even if they
    /// accumulated UA samples: activity is defined by successful
    /// requests, and a hits-free `BlockRecord` would be a phantom —
    /// all-empty rows that shift block censuses and dataset equality.
    /// The salvage path makes this reachable: corruption can
    /// quarantine a block's `Hits` frame while its `UaSample` frame
    /// survives, and the salvaged dataset must still agree with the
    /// clean one wherever activity agrees.
    pub fn finish(self) -> DailyDataset {
        let mut blocks: Vec<BlockRecord> = self
            .blocks
            .into_iter()
            .filter(|(_, acc)| !acc.ips.is_empty())
            .map(|(block, acc)| {
                let mut rows: Box<[DayBits; 256]> = Box::new([DayBits::new(); 256]);
                let mut ip_traffic = Vec::with_capacity(acc.ips.len());
                for (host, ip) in acc.ips {
                    rows[host as usize] = ip.bits;
                    let mut daily: Vec<u32> = ip.daily.iter().map(|&(_, h)| h).collect();
                    daily.sort_unstable();
                    let median = daily[daily.len() / 2];
                    ip_traffic.push(IpTraffic {
                        host,
                        days_active: ip.bits.count() as u8,
                        total_hits: ip.total,
                        median_daily_hits: median,
                    });
                }
                ip_traffic.sort_unstable_by_key(|t| t.host);
                BlockRecord {
                    block,
                    rows,
                    total_hits: acc.total_hits,
                    ua_samples: acc.ua_samples,
                    ua_unique: acc.ua_hashes.len() as u32,
                    ip_traffic,
                }
            })
            .collect();
        blocks.sort_unstable_by_key(|r| r.block);
        DailyDataset { num_days: self.num_days, blocks, coverage: None }
    }
}

/// The weekly dataset: per-block week-bitsets over `num_weeks` weeks,
/// plus per-week per-address hit totals (as a multiset — the traffic
/// consolidation analysis needs values, not identities; collectors
/// keep each week's values sorted so datasets compare by `==`).
///
/// As with [`DailyDataset`], equality compares the observed data only
/// — the [`WeeklyDataset::coverage`] annotation is provenance.
#[derive(Debug, Clone)]
pub struct WeeklyDataset {
    /// Number of weeks (52 in the paper).
    pub num_weeks: usize,
    /// Per-block `(block, rows)` where `rows[i]` has bit `w` set iff
    /// address `i` was active in week `w`. Sorted by block.
    pub blocks: Vec<(Block24, Box<[u64; 256]>)>,
    /// `week_hits[w]` = per-active-address total hits in week `w`.
    pub week_hits: Vec<Vec<u64>>,
    /// Data-completeness annotation from a supervised collection run
    /// (slots are week indices); `None` outside supervised paths.
    pub coverage: Option<Coverage>,
}

impl PartialEq for WeeklyDataset {
    fn eq(&self, other: &Self) -> bool {
        self.num_weeks == other.num_weeks
            && self.blocks == other.blocks
            && self.week_hits == other.week_hits
    }
}

impl WeeklyDataset {
    /// Attaches a completeness annotation (builder style).
    pub fn with_coverage(mut self, coverage: Coverage) -> WeeklyDataset {
        self.coverage = Some(coverage);
        self
    }

    /// The set of addresses active in week `w`.
    pub fn week_set(&self, w: usize) -> AddrSet {
        self.week_set_as(w)
    }

    /// [`Self::week_set`] materialized into any [`ActiveSet`] backend
    /// (see [`DailyDataset::day_set_as`] for the construction strategy).
    pub fn week_set_as<S: ActiveSet>(&self, w: usize) -> S {
        assert!(w < self.num_weeks);
        self.masked_union(1u64 << w)
    }

    /// Every week's active set in one transposed pass (the weekly
    /// analogue of [`DailyDataset::day_sets_all`]); element `w` equals
    /// `week_set_as(w)` exactly.
    pub fn week_sets_all<S: ActiveSet>(&self) -> Vec<S> {
        let w = self.num_weeks;
        let mut builders: Vec<S::Builder> = (0..w).map(|_| <S::Builder>::new()).collect();
        let mut buf: Vec<[u64; 4]> = vec![[0u64; 4]; w];
        for (block, rows) in &self.blocks {
            let mut touched: u64 = 0;
            for (i, &row) in rows.iter().enumerate() {
                let mut bits = row;
                touched |= bits;
                while bits != 0 {
                    let week = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    buf[week][i >> 6] |= 1u64 << (i & 63);
                }
            }
            let mut t = touched;
            while t != 0 {
                let week = t.trailing_zeros() as usize;
                t &= t - 1;
                builders[week].push_block(*block, &AddrBits256::from_words(buf[week]));
                buf[week] = [0u64; 4];
            }
        }
        builders.into_iter().map(|b| b.finish()).collect()
    }

    /// Union of addresses active in a week range.
    pub fn window_union(&self, weeks: core::ops::Range<usize>) -> AddrSet {
        self.window_union_as(weeks)
    }

    /// [`Self::window_union`] materialized into any backend.
    pub fn window_union_as<S: ActiveSet>(&self, weeks: core::ops::Range<usize>) -> S {
        assert!(weeks.end <= self.num_weeks);
        let mask: u64 = if weeks.len() >= 64 {
            u64::MAX
        } else {
            ((1u64 << weeks.len()) - 1) << weeks.start
        };
        self.masked_union(mask)
    }

    /// Streams every address whose week-bits intersect `mask` into the
    /// backend's builder, block-wise.
    fn masked_union<S: ActiveSet>(&self, mask: u64) -> S {
        let mut b = <S::Builder>::new();
        for (block, rows) in &self.blocks {
            // Branch-free week-mask test per row (see
            // [`DailyDataset::day_set_as`]).
            let mut words = [0u64; 4];
            for (i, &row) in rows.iter().enumerate() {
                words[i >> 6] |= ((row & mask != 0) as u64) << (i & 63);
            }
            b.push_block(*block, &AddrBits256::from_words(words));
        }
        b.finish()
    }

    /// All addresses active in any week.
    pub fn all_active(&self) -> AddrSet {
        self.window_union(0..self.num_weeks)
    }

    /// [`Self::all_active`] materialized into any backend.
    pub fn all_active_as<S: ActiveSet>(&self) -> S {
        self.window_union_as(0..self.num_weeks)
    }

    /// Year-scale filling degree of a block: addresses active in at
    /// least one week (the weekly analogue of the Section 5.1 FD).
    pub fn filling_degree(&self, block: Block24) -> u32 {
        self.rows_of(block)
            .map(|rows| rows.iter().filter(|&&b| b != 0).count() as u32)
            .unwrap_or(0)
    }

    /// Year-scale spatio-temporal utilization of a block: active
    /// (address, week) pairs over `256 × num_weeks`.
    pub fn stu(&self, block: Block24) -> f64 {
        self.rows_of(block)
            .map(|rows| {
                let active: u32 = rows.iter().map(|b| b.count_ones()).sum();
                active as f64 / (256.0 * self.num_weeks as f64)
            })
            .unwrap_or(0.0)
    }

    fn rows_of(&self, block: Block24) -> Option<&[u64; 256]> {
        self.blocks
            .binary_search_by_key(&block, |(b, _)| *b)
            .ok()
            .map(|i| &*self.blocks[i].1)
    }

    /// Total distinct active addresses over the year.
    pub fn total_active(&self) -> usize {
        self.blocks
            .iter()
            .map(|(_, rows)| rows.iter().filter(|&&b| b != 0).count())
            .sum()
    }

    /// Merges two *block-disjoint* partitions of one logical weekly
    /// dataset — the weekly counterpart of [`DailyDataset::merge`].
    /// Blocks are re-sorted and each week's hit multiset re-sorted, so
    /// the merge is commutative and associative.
    ///
    /// Coverage merges alongside the blocks when both partitions carry
    /// it, exactly as in [`DailyDataset::merge`].
    ///
    /// # Panics
    /// If week counts differ or any block appears in both inputs.
    pub fn merge(self, other: WeeklyDataset) -> WeeklyDataset {
        assert_eq!(
            self.num_weeks, other.num_weeks,
            "cannot merge datasets over different week counts"
        );
        let num_weeks = self.num_weeks;
        let coverage = match (self.coverage, other.coverage) {
            (Some(a), Some(b)) => Some(a.merge(b)),
            _ => None,
        };
        let mut blocks = self.blocks;
        blocks.extend(other.blocks);
        blocks.sort_unstable_by_key(|(b, _)| *b);
        for w in blocks.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "block {} present in both partitions; merge the builders instead",
                w[0].0
            );
        }
        let mut week_hits = self.week_hits;
        for (mine, theirs) in week_hits.iter_mut().zip(other.week_hits) {
            mine.extend(theirs);
            mine.sort_unstable();
        }
        WeeklyDataset { num_weeks, blocks, week_hits, coverage }
    }
}

/// Accumulator for [`WeeklyDataset`].
#[derive(Debug, Default)]
pub struct WeeklyDatasetBuilder {
    num_weeks: usize,
    blocks: HashMap<Block24, Box<[u64; 256]>>,
    week_hits: Vec<Vec<u64>>,
}

impl WeeklyDatasetBuilder {
    /// Creates a builder for `num_weeks` weeks (≤ 64).
    pub fn new(num_weeks: usize) -> Self {
        assert!(num_weeks <= 64, "week bitsets hold at most 64 weeks");
        WeeklyDatasetBuilder {
            num_weeks,
            blocks: HashMap::new(),
            week_hits: vec![Vec::new(); num_weeks],
        }
    }

    /// Records that `addr` was active in week `w` with `hits` total
    /// requests that week.
    pub fn record_week(&mut self, w: usize, addr: Addr, hits: u64) {
        assert!(w < self.num_weeks);
        if hits == 0 {
            return;
        }
        let rows = self
            .blocks
            .entry(Block24::of(addr))
            .or_insert_with(|| Box::new([0u64; 256]));
        rows[addr.host_index() as usize] |= 1u64 << w;
        self.week_hits[w].push(hits);
    }

    /// Folds another builder's accumulated records into this one —
    /// exact for overlapping blocks and addresses (week bits union,
    /// hit multisets concatenate), and order-insensitive up to
    /// `finish()`'s canonicalization.
    ///
    /// # Panics
    /// If the builders cover different week counts.
    pub fn merge(&mut self, other: WeeklyDatasetBuilder) {
        assert_eq!(
            self.num_weeks, other.num_weeks,
            "cannot merge builders over different week counts"
        );
        for (block, rows) in other.blocks {
            match self.blocks.entry(block) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(rows);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    for (mine, theirs) in slot.get_mut().iter_mut().zip(rows.iter()) {
                        *mine |= theirs;
                    }
                }
            }
        }
        for (mine, theirs) in self.week_hits.iter_mut().zip(other.week_hits) {
            mine.extend(theirs);
        }
    }

    /// Finalizes into an immutable dataset. Blocks and each week's
    /// hit multiset are sorted into canonical order, so any two
    /// builders fed the same records (in any order, through any
    /// merge tree) finish into `==` datasets. Activity-free blocks
    /// (all-zero rows) are dropped, mirroring the daily builder.
    pub fn finish(self) -> WeeklyDataset {
        let mut blocks: Vec<(Block24, Box<[u64; 256]>)> = self
            .blocks
            .into_iter()
            .filter(|(_, rows)| rows.iter().any(|&b| b != 0))
            .collect();
        blocks.sort_unstable_by_key(|(b, _)| *b);
        let mut week_hits = self.week_hits;
        for week in &mut week_hits {
            week.sort_unstable();
        }
        WeeklyDataset { num_weeks: self.num_weeks, blocks, week_hits, coverage: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn tiny_daily() -> DailyDataset {
        let mut b = DailyDatasetBuilder::new(7);
        // Address active 3 days with varying hits.
        b.record_hits(0, addr("10.0.0.1"), 10);
        b.record_hits(1, addr("10.0.0.1"), 30);
        b.record_hits(6, addr("10.0.0.1"), 20);
        // Always-on heavy hitter.
        for d in 0..7 {
            b.record_hits(d, addr("10.0.0.2"), 1000);
        }
        // One-day address in another block.
        b.record_hits(3, addr("10.0.1.9"), 1);
        // UA samples.
        b.record_ua(0, addr("10.0.0.2"), 111);
        b.record_ua(1, addr("10.0.0.2"), 111);
        b.record_ua(2, addr("10.0.0.2"), 222);
        b.finish()
    }

    #[test]
    fn builder_produces_sorted_blocks_and_counts() {
        let ds = tiny_daily();
        assert_eq!(ds.blocks.len(), 2);
        assert!(ds.blocks[0].block < ds.blocks[1].block);
        assert_eq!(ds.total_active(), 3);
        assert_eq!(ds.all_active().len(), 3);
    }

    #[test]
    fn day_sets_and_window_unions() {
        let ds = tiny_daily();
        let d0 = ds.day_set(0);
        assert_eq!(d0.len(), 2);
        assert!(d0.contains(addr("10.0.0.1")) && d0.contains(addr("10.0.0.2")));
        let d3 = ds.day_set(3);
        assert_eq!(d3.len(), 2);
        assert!(d3.contains(addr("10.0.1.9")));
        let w = ds.window_union(2..5);
        assert!(w.contains(addr("10.0.0.2")) && w.contains(addr("10.0.1.9")));
        assert!(!w.contains(addr("10.0.0.1")));
    }

    #[test]
    fn traffic_summaries() {
        let ds = tiny_daily();
        let rec = ds.block(Block24::of(addr("10.0.0.0"))).unwrap();
        assert_eq!(rec.total_hits, 60 + 7000);
        let t1 = rec.ip_traffic.iter().find(|t| t.host == 1).unwrap();
        assert_eq!(t1.days_active, 3);
        assert_eq!(t1.total_hits, 60);
        assert_eq!(t1.median_daily_hits, 20);
        let t2 = rec.ip_traffic.iter().find(|t| t.host == 2).unwrap();
        assert_eq!(t2.days_active, 7);
        assert_eq!(t2.median_daily_hits, 1000);
    }

    #[test]
    fn ua_aggregation() {
        let ds = tiny_daily();
        let rec = ds.block(Block24::of(addr("10.0.0.0"))).unwrap();
        assert_eq!(rec.ua_samples, 3);
        assert_eq!(rec.ua_unique, 2);
    }

    #[test]
    fn fd_and_stu() {
        let ds = tiny_daily();
        let rec = ds.block(Block24::of(addr("10.0.0.0"))).unwrap();
        assert_eq!(rec.filling_degree(0..7), 2);
        assert_eq!(rec.filling_degree(3..5), 1); // only the always-on addr
        // STU: (3 + 7) active addr-days over 256*7.
        let expect = 10.0 / (256.0 * 7.0);
        assert!((rec.stu(0..7) - expect).abs() < 1e-12);
        assert_eq!(rec.active_on(6), 2);
        assert!(rec.any_active(0..1));
    }

    #[test]
    fn duplicate_hit_records_accumulate() {
        let mut b = DailyDatasetBuilder::new(3);
        b.record_hits(1, addr("10.0.0.5"), 4);
        b.record_hits(1, addr("10.0.0.5"), 6);
        let ds = b.finish();
        let rec = ds.block(Block24::of(addr("10.0.0.0"))).unwrap();
        let t = &rec.ip_traffic[0];
        assert_eq!(t.days_active, 1);
        assert_eq!(t.total_hits, 10);
        assert_eq!(t.median_daily_hits, 10);
    }

    #[test]
    fn zero_hits_do_not_mark_activity() {
        let mut b = DailyDatasetBuilder::new(3);
        b.record_hits(0, addr("10.0.0.5"), 0);
        let ds = b.finish();
        assert_eq!(ds.total_active(), 0);
    }

    #[test]
    fn ua_only_blocks_are_not_phantom_block_records() {
        // A block whose Hits records were all lost (e.g. quarantined
        // by the salvage path) but whose UaSample records survived
        // must not materialize as an all-empty BlockRecord.
        let mut b = DailyDatasetBuilder::new(3);
        b.record_ua(0, addr("10.0.0.5"), 42);
        b.record_ua(1, addr("10.0.0.6"), 43);
        let ds = b.finish();
        assert!(ds.blocks.is_empty(), "phantom block: {:?}", ds.blocks.first().map(|r| r.block));

        // A dataset that lost one block's hits compares equal to a
        // clean dataset without that block — block counts agree.
        let mut clean = DailyDatasetBuilder::new(3);
        clean.record_hits(0, addr("10.0.1.1"), 7);
        let mut salvaged = DailyDatasetBuilder::new(3);
        salvaged.record_hits(0, addr("10.0.1.1"), 7);
        salvaged.record_ua(0, addr("10.0.0.5"), 42); // hits frame lost
        assert_eq!(clean.finish(), salvaged.finish());
    }

    #[test]
    fn ua_samples_still_count_when_the_block_has_activity() {
        // The fix drops hits-free blocks only; UA aggregation on a
        // live block is untouched (even merged in from a shard that
        // saw only the UA records).
        let mut a = DailyDatasetBuilder::new(3);
        a.record_hits(0, addr("10.0.0.5"), 1);
        let mut b = DailyDatasetBuilder::new(3);
        b.record_ua(0, addr("10.0.0.6"), 99);
        a.merge(b);
        let ds = a.finish();
        let rec = ds.block(Block24::of(addr("10.0.0.0"))).unwrap();
        assert_eq!(rec.ua_samples, 1);
        assert_eq!(rec.ua_unique, 1);
    }

    #[test]
    fn uncached_windows_traits_match_inherent_queries() {
        let ds = tiny_daily();
        assert_eq!(DailyWindows::num_days(&ds), 7);
        let via_trait = DailyWindows::union(&ds, 2..5);
        assert_eq!(*via_trait, ds.window_union(2..5));

        let mut b = WeeklyDatasetBuilder::new(8);
        b.record_week(1, addr("10.0.0.1"), 3);
        b.record_week(6, addr("10.0.2.9"), 1);
        let ws = b.finish();
        assert_eq!(WeeklyWindows::num_weeks(&ws), 8);
        assert_eq!(*WeeklyWindows::union(&ws, 0..7), ws.window_union(0..7));
    }

    #[test]
    fn weekly_builder_roundtrip() {
        let mut b = WeeklyDatasetBuilder::new(52);
        b.record_week(0, addr("10.0.0.1"), 100);
        b.record_week(51, addr("10.0.0.1"), 100);
        b.record_week(10, addr("10.0.2.7"), 5);
        let ds = b.finish();
        assert_eq!(ds.total_active(), 2);
        assert_eq!(ds.week_set(0).len(), 1);
        assert_eq!(ds.week_set(1).len(), 0);
        assert!(ds.week_set(51).contains(addr("10.0.0.1")));
        assert_eq!(ds.window_union(0..52).len(), 2);
        assert_eq!(ds.window_union(1..10).len(), 0);
        assert_eq!(ds.week_hits[0], vec![100]);
        assert_eq!(ds.week_hits[10], vec![5]);
    }

    #[test]
    fn weekly_fd_and_stu() {
        let mut b = WeeklyDatasetBuilder::new(4);
        let block = Block24::of(addr("10.0.0.0"));
        // Two addresses: one active all 4 weeks, one active 1 week.
        for w in 0..4 {
            b.record_week(w, block.addr(1), 10);
        }
        b.record_week(2, block.addr(2), 5);
        let ds = b.finish();
        assert_eq!(ds.filling_degree(block), 2);
        let expect = 5.0 / (256.0 * 4.0);
        assert!((ds.stu(block) - expect).abs() < 1e-12);
        // Unknown block.
        assert_eq!(ds.filling_degree(Block24::new(99)), 0);
        assert_eq!(ds.stu(Block24::new(99)), 0.0);
    }

    #[test]
    fn weekly_window_union_full_width_mask() {
        let mut b = WeeklyDatasetBuilder::new(64);
        b.record_week(63, addr("10.0.0.1"), 1);
        let ds = b.finish();
        assert_eq!(ds.window_union(0..64).len(), 1);
    }

    /// The records behind `tiny_daily`, as a replayable list.
    fn tiny_daily_records() -> Vec<(usize, Addr, u64)> {
        let mut recs = vec![
            (0, addr("10.0.0.1"), 10),
            (1, addr("10.0.0.1"), 30),
            (6, addr("10.0.0.1"), 20),
            (3, addr("10.0.1.9"), 1),
        ];
        for d in 0..7 {
            recs.push((d, addr("10.0.0.2"), 1000));
        }
        recs
    }

    #[test]
    fn builder_merge_equals_single_builder_for_any_split() {
        let records = tiny_daily_records();
        let uas = [(0, "10.0.0.2", 111u64), (1, "10.0.0.2", 111), (2, "10.0.0.2", 222)];
        let mut reference = DailyDatasetBuilder::new(7);
        for &(d, a, h) in &records {
            reference.record_hits(d, a, h);
        }
        for &(d, a, ua) in &uas {
            reference.record_ua(d, addr(a), ua);
        }
        let expect = reference.finish();

        // Split the records across 3 shards in several different ways;
        // every merge order must reproduce the single-builder result.
        for stride in 1..=3 {
            let mut shards: Vec<DailyDatasetBuilder> =
                (0..3).map(|_| DailyDatasetBuilder::new(7)).collect();
            for (i, &(d, a, h)) in records.iter().enumerate() {
                shards[(i / stride) % 3].record_hits(d, a, h);
            }
            for (i, &(d, a, ua)) in uas.iter().enumerate() {
                shards[i % 3].record_ua(d, addr(a), ua);
            }
            // Merge right-to-left for odd strides, left-to-right
            // otherwise — order must not matter.
            let merged = if stride % 2 == 1 {
                let mut it = shards.into_iter().rev();
                let mut acc = it.next().unwrap();
                for b in it {
                    acc.merge(b);
                }
                acc
            } else {
                let mut it = shards.into_iter();
                let mut acc = it.next().unwrap();
                for b in it {
                    acc.merge(b);
                }
                acc
            };
            assert_eq!(merged.finish(), expect, "stride {stride}");
        }
    }

    #[test]
    fn builder_merge_combines_same_day_same_addr() {
        let mut a = DailyDatasetBuilder::new(3);
        let mut b = DailyDatasetBuilder::new(3);
        a.record_hits(1, addr("10.0.0.5"), 4);
        b.record_hits(1, addr("10.0.0.5"), 6);
        b.record_hits(2, addr("10.0.0.5"), 1);
        a.merge(b);
        let ds = a.finish();
        let rec = ds.block(Block24::of(addr("10.0.0.0"))).unwrap();
        let t = &rec.ip_traffic[0];
        assert_eq!(t.days_active, 2);
        assert_eq!(t.total_hits, 11);
        assert_eq!(t.median_daily_hits, 10); // sorted day totals [1, 10]
    }

    #[test]
    fn dataset_merge_of_disjoint_partitions() {
        let full = tiny_daily();
        let mut a = DailyDatasetBuilder::new(7);
        let mut b = DailyDatasetBuilder::new(7);
        // Partition by block: 10.0.0.0/24 to a, 10.0.1.0/24 to b.
        for (d, ad, h) in tiny_daily_records() {
            if Block24::of(ad) == Block24::of(addr("10.0.0.0")) {
                a.record_hits(d, ad, h);
            } else {
                b.record_hits(d, ad, h);
            }
        }
        a.record_ua(0, addr("10.0.0.2"), 111);
        a.record_ua(1, addr("10.0.0.2"), 111);
        a.record_ua(2, addr("10.0.0.2"), 222);
        let (pa, pb) = (a.finish(), b.finish());
        // Either merge order produces the full dataset.
        assert_eq!(pa.clone().merge(pb.clone()), full);
        assert_eq!(pb.merge(pa), full);
    }

    #[test]
    #[should_panic(expected = "present in both partitions")]
    fn dataset_merge_rejects_overlapping_blocks() {
        let a = tiny_daily();
        let b = tiny_daily();
        let _ = a.merge(b);
    }

    #[test]
    fn weekly_builder_merge_and_dataset_merge() {
        let mut reference = WeeklyDatasetBuilder::new(8);
        reference.record_week(0, addr("10.0.0.1"), 100);
        reference.record_week(3, addr("10.0.0.1"), 50);
        reference.record_week(3, addr("10.0.2.7"), 5);
        reference.record_week(7, addr("10.0.2.7"), 9);
        let expect = reference.finish();

        // Builder-level merge with overlapping blocks.
        let mut a = WeeklyDatasetBuilder::new(8);
        let mut b = WeeklyDatasetBuilder::new(8);
        a.record_week(0, addr("10.0.0.1"), 100);
        b.record_week(3, addr("10.0.0.1"), 50);
        b.record_week(3, addr("10.0.2.7"), 5);
        a.record_week(7, addr("10.0.2.7"), 9);
        a.merge(b);
        assert_eq!(a.finish(), expect);

        // Dataset-level merge of block-disjoint partitions.
        let mut pa = WeeklyDatasetBuilder::new(8);
        let mut pb = WeeklyDatasetBuilder::new(8);
        pa.record_week(0, addr("10.0.0.1"), 100);
        pa.record_week(3, addr("10.0.0.1"), 50);
        pb.record_week(3, addr("10.0.2.7"), 5);
        pb.record_week(7, addr("10.0.2.7"), 9);
        let (da, db) = (pa.finish(), pb.finish());
        assert_eq!(da.clone().merge(db.clone()), expect);
        assert_eq!(db.merge(da), expect);
    }

    #[test]
    fn coverage_is_provenance_not_data() {
        let clean = tiny_daily();
        let mut annotated = clean.clone();
        annotated.coverage = Some(Coverage::from_shard_fractions(&[0.5], 7));
        // Equality must ignore provenance: same observations, same dataset.
        assert_eq!(clean, annotated);
        assert!(clean.coverage.is_none());
        assert_eq!(annotated.coverage.as_ref().unwrap().shard(0), 0.5);
    }

    #[test]
    fn dataset_merge_combines_coverage() {
        let mut a = DailyDatasetBuilder::new(7);
        a.record_hits(0, addr("10.0.0.1"), 1);
        let mut b = DailyDatasetBuilder::new(7);
        b.record_hits(0, addr("10.0.1.1"), 1);
        let da = a.finish().with_coverage(Coverage::from_shard_fractions(&[1.0], 7));
        let db = b.finish().with_coverage(Coverage::from_shard_fractions(&[0.25], 7));
        let merged = da.merge(db);
        let cov = merged.coverage.clone().expect("both sides annotated");
        assert_eq!(cov.num_shards(), 2);
        assert_eq!(cov.degraded_shards(), vec![1]);

        // One unannotated side drops the provenance.
        let mut c = DailyDatasetBuilder::new(7);
        c.record_hits(0, addr("10.0.2.1"), 1);
        assert!(merged.merge(c.finish()).coverage.is_none());
    }

    #[test]
    fn empty_windows_materialize_without_chunks() {
        use ipactive_net::TieredSet;
        // A day/window with no activity must round-trip to a genuinely
        // empty tiered set: no chunks, no dense bitmaps, near-zero heap.
        let mut b = DailyDatasetBuilder::new(7);
        b.record_hits(0, addr("10.0.0.1"), 5);
        b.record_hits(6, addr("10.0.1.9"), 1);
        let ds = b.finish();
        let empty: TieredSet = ds.window_union_as(2..5); // quiet mid-window
        assert!(empty.is_empty());
        assert_eq!(empty.num_chunks(), 0);
        assert_eq!(empty.repr_census().total(), 0);
        assert_eq!(empty.memory_bytes(), core::mem::size_of::<TieredSet>());

        let mut b = WeeklyDatasetBuilder::new(8);
        b.record_week(0, addr("10.0.0.1"), 3);
        let ws = b.finish();
        let empty: TieredSet = ws.window_union_as(2..8);
        assert!(empty.is_empty());
        assert_eq!(empty.num_chunks(), 0);
    }

    #[test]
    fn single_address_day_round_trips_as_one_sparse_chunk() {
        use ipactive_net::TieredSet;
        let ds = tiny_daily();
        // Day 3 activates exactly {10.0.0.2, 10.0.1.9}: two blocks, one
        // address each — two sparse chunks, not two 256-bit bitmaps.
        let d3: TieredSet = ds.day_set_as(3);
        assert_eq!(d3.len(), 2);
        assert_eq!(d3.num_chunks(), 2);
        let census = d3.repr_census();
        assert_eq!(census.sparse, 2);
        assert_eq!(census.dense, 0);
        assert!(d3.contains(addr("10.0.1.9")));
        // Round-trip against the reference backend.
        let oracle = ds.day_set(3);
        assert!(d3.iter().eq(oracle.iter()));
        // Heap cost stays proportional to membership, far below the
        // 2 × 256-entry worst case a counting pre-pass would reserve.
        assert!(d3.memory_bytes() < 256, "memory {}", d3.memory_bytes());
    }

    #[test]
    fn bulk_day_sets_match_per_day_builds() {
        use ipactive_net::TieredSet;
        let ds = tiny_daily();
        let bulk_ref: Vec<AddrSet> = ds.day_sets_all();
        let bulk_tiered: Vec<TieredSet> = ds.day_sets_all();
        assert_eq!(bulk_ref.len(), ds.num_days);
        for d in 0..ds.num_days {
            assert_eq!(bulk_ref[d], ds.day_set_as::<AddrSet>(d), "day {d}");
            assert_eq!(bulk_tiered[d], ds.day_set_as::<TieredSet>(d), "day {d}");
        }

        // Including a dataset with quiet days and an empty one.
        let empty = DailyDatasetBuilder::new(3).finish();
        assert_eq!(empty.day_sets_all::<AddrSet>(), vec![AddrSet::empty(); 3]);
    }

    #[test]
    fn bulk_week_sets_match_per_week_builds() {
        use ipactive_net::TieredSet;
        let mut b = WeeklyDatasetBuilder::new(52);
        b.record_week(0, addr("10.0.0.1"), 100);
        b.record_week(51, addr("10.0.0.1"), 100);
        b.record_week(10, addr("10.0.2.7"), 5);
        b.record_week(10, addr("10.0.0.200"), 2);
        let ds = b.finish();
        let bulk_ref: Vec<AddrSet> = ds.week_sets_all();
        let bulk_tiered: Vec<TieredSet> = ds.week_sets_all();
        assert_eq!(bulk_ref.len(), ds.num_weeks);
        for w in 0..ds.num_weeks {
            assert_eq!(bulk_ref[w], ds.week_set_as::<AddrSet>(w), "week {w}");
            assert_eq!(bulk_tiered[w], ds.week_set_as::<TieredSet>(w), "week {w}");
        }
    }

    #[test]
    #[should_panic(expected = "present in both partitions")]
    fn weekly_dataset_merge_rejects_overlapping_blocks() {
        let mut a = WeeklyDatasetBuilder::new(4);
        a.record_week(0, addr("10.0.0.1"), 1);
        let mut b = WeeklyDatasetBuilder::new(4);
        b.record_week(1, addr("10.0.0.2"), 1);
        let _ = a.finish().merge(b.finish());
    }
}
