//! Activity versus traffic (Section 6.1–6.2, Figure 9).

use crate::dataset::{DailyDataset, WeeklyDataset};
use crate::stats::Summary5;

/// Figure 9(a): per-bin daily-hit summaries, where bin `k` collects
/// the addresses active on exactly `k+1` days.
///
/// Each address contributes its *median daily hits over its active
/// days*; the returned summaries give the 5/25/50/75/95 percentile
/// bands across the addresses of the bin (`None` for empty bins).
pub fn hits_by_days_active(ds: &DailyDataset) -> Vec<Option<Summary5>> {
    let mut bins: Vec<Vec<f64>> = vec![Vec::new(); ds.num_days];
    for (_, t) in ds.ip_traffic() {
        let bin = t.days_active as usize - 1;
        bins[bin].push(t.median_daily_hits as f64);
    }
    bins.iter().map(|b| Summary5::of(b)).collect()
}

/// Figure 9(b): cumulative fractions by days-active bin.
#[derive(Debug, Clone)]
pub struct CumulativeShares {
    /// `ips[k]` = fraction of addresses active on ≤ k+1 days.
    pub ips: Vec<f64>,
    /// `traffic[k]` = fraction of total hits from those addresses.
    pub traffic: Vec<f64>,
}

impl CumulativeShares {
    /// Fraction of addresses active *every* day.
    pub fn always_on_ip_fraction(&self) -> f64 {
        match self.ips.len() {
            0 => 0.0,
            1 => self.ips[0],
            n => self.ips[n - 1] - self.ips[n - 2],
        }
    }

    /// Fraction of total traffic from always-on addresses.
    pub fn always_on_traffic_fraction(&self) -> f64 {
        match self.traffic.len() {
            0 => 0.0,
            1 => self.traffic[0],
            n => self.traffic[n - 1] - self.traffic[n - 2],
        }
    }
}

/// Computes Figure 9(b).
pub fn cumulative_shares(ds: &DailyDataset) -> CumulativeShares {
    let mut ip_counts = vec![0u64; ds.num_days];
    let mut hit_sums = vec![0u64; ds.num_days];
    for (_, t) in ds.ip_traffic() {
        let bin = t.days_active as usize - 1;
        ip_counts[bin] += 1;
        hit_sums[bin] += t.total_hits;
    }
    let total_ips: u64 = ip_counts.iter().sum();
    let total_hits: u64 = hit_sums.iter().sum();
    let mut ips = Vec::with_capacity(ds.num_days);
    let mut traffic = Vec::with_capacity(ds.num_days);
    let (mut ci, mut ch) = (0u64, 0u64);
    for k in 0..ds.num_days {
        ci += ip_counts[k];
        ch += hit_sums[k];
        ips.push(if total_ips == 0 { 0.0 } else { ci as f64 / total_ips as f64 });
        traffic.push(if total_hits == 0 { 0.0 } else { ch as f64 / total_hits as f64 });
    }
    CumulativeShares { ips, traffic }
}

/// Share of total traffic received by the top `frac` of addresses by
/// hit count (Figure 9(c) computes this per week with `frac = 0.1`).
///
/// With `n` addresses, the top `⌈frac·n⌉` are taken (at least one,
/// when any exist).
///
/// ```
/// use ipactive_core::traffic::top_share;
/// // One whale among nine minnows: the top 10% carry ~91% of traffic.
/// let hits = [100u64, 1, 1, 1, 1, 1, 1, 1, 1, 1];
/// assert!((top_share(&hits, 0.1) - 100.0 / 109.0).abs() < 1e-12);
/// ```
pub fn top_share(hits: &[u64], frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&frac));
    if hits.is_empty() || frac == 0.0 {
        return 0.0;
    }
    let total: u64 = hits.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut scratch = hits.to_vec();
    let k = ((frac * scratch.len() as f64).ceil() as usize).clamp(1, scratch.len());
    // Only the top-k *multiset* matters for the sum, so an O(n)
    // selection replaces the full descending sort.
    if k < scratch.len() {
        scratch.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
    }
    let top: u64 = scratch[..k].iter().sum();
    top as f64 / total as f64
}

/// Figure 9(c): per-week share of total traffic going to the top
/// `frac` of that week's addresses.
pub fn weekly_top_share(ws: &WeeklyDataset, frac: f64) -> Vec<f64> {
    ws.week_hits.iter().map(|hits| top_share(hits, frac)).collect()
}

/// [`weekly_top_share`] with the weeks split into chunk-range
/// subtasks; each week's share is independent, and chunk results
/// concatenate in week order, so the output equals the serial form.
pub fn weekly_top_share_par(
    ws: &WeeklyDataset,
    frac: f64,
    par: &crate::par::Parallelism,
) -> Vec<f64> {
    par.run(ws.week_hits.len(), 4, |range| {
        range.map(|w| top_share(&ws.week_hits[w], frac)).collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Centered moving average used to overlay the Figure 9(c) trend
/// (paper: 4-week window). Edges use the available span.
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1);
    let n = series.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(window / 2);
            let hi = (i + window.div_ceil(2)).min(n);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DailyDatasetBuilder, WeeklyDatasetBuilder};
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn traffic_fixture() -> DailyDataset {
        let mut b = DailyDatasetBuilder::new(4);
        // Always-on heavy hitter: 1000 hits/day.
        for d in 0..4 {
            b.record_hits(d, a("10.0.0.1"), 1000);
        }
        // Two one-day lightweights: 10 hits.
        b.record_hits(0, a("10.0.0.2"), 10);
        b.record_hits(2, a("10.0.0.3"), 10);
        // A two-day medium address: 100 hits/day.
        b.record_hits(1, a("10.0.0.4"), 100);
        b.record_hits(3, a("10.0.0.4"), 100);
        b.finish()
    }

    #[test]
    fn bins_collect_median_daily_hits() {
        let ds = traffic_fixture();
        let bins = hits_by_days_active(&ds);
        assert_eq!(bins.len(), 4);
        let b1 = bins[0].unwrap(); // 1-day addresses
        assert_eq!(b1.p50, 10.0);
        let b2 = bins[1].unwrap();
        assert_eq!(b2.p50, 100.0);
        assert!(bins[2].is_none());
        let b4 = bins[3].unwrap();
        assert_eq!(b4.p50, 1000.0);
    }

    #[test]
    fn correlation_between_activity_and_traffic_is_monotone_here() {
        let ds = traffic_fixture();
        let medians: Vec<f64> = hits_by_days_active(&ds)
            .into_iter()
            .flatten()
            .map(|s| s.p50)
            .collect();
        assert!(medians.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cumulative_shares_end_at_one() {
        let ds = traffic_fixture();
        let c = cumulative_shares(&ds);
        assert!((c.ips.last().unwrap() - 1.0).abs() < 1e-12);
        assert!((c.traffic.last().unwrap() - 1.0).abs() < 1e-12);
        // The always-on address is 1/4 of IPs but dominates traffic.
        assert!((c.always_on_ip_fraction() - 0.25).abs() < 1e-12);
        let expect = 4000.0 / 4220.0;
        assert!((c.always_on_traffic_fraction() - expect).abs() < 1e-12);
        // Cumulative curves are monotone.
        assert!(c.ips.windows(2).all(|w| w[0] <= w[1]));
        assert!(c.traffic.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn top_share_basics() {
        // 10 addresses: one with 90 hits, nine with ~1.
        let mut hits = vec![90u64];
        hits.extend(std::iter::repeat_n(1u64, 9));
        let share = top_share(&hits, 0.1);
        assert!((share - 90.0 / 99.0).abs() < 1e-12);
        assert_eq!(top_share(&[], 0.1), 0.0);
        assert_eq!(top_share(&[5, 5], 0.0), 0.0);
        assert!((top_share(&[5, 5], 1.0) - 1.0).abs() < 1e-12);
        // ceil: top 10% of 5 addrs = 1 addr.
        assert!((top_share(&[10, 1, 1, 1, 1], 0.1) - 10.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn weekly_top_share_trends() {
        let mut b = WeeklyDatasetBuilder::new(3);
        // Week 0: even traffic; week 2: concentrated.
        for i in 0..10u8 {
            b.record_week(0, a("10.0.0.0").saturating_add(i as u32 + 1), 10);
        }
        b.record_week(2, a("10.0.0.1"), 1000);
        for i in 1..10u8 {
            b.record_week(2, a("10.0.0.0").saturating_add(i as u32 + 1), 10);
        }
        let ws = b.finish();
        let shares = weekly_top_share(&ws, 0.1);
        assert_eq!(shares.len(), 3);
        assert!((shares[0] - 0.1).abs() < 1e-12);
        assert_eq!(shares[1], 0.0); // empty week
        assert!(shares[2] > 0.9);
        for pool in [crate::par::Parallelism::serial(), crate::par::Parallelism::new(2)] {
            assert_eq!(weekly_top_share_par(&ws, 0.1, &pool), shares);
        }
    }

    #[test]
    fn top_share_selection_handles_ties_like_a_full_sort() {
        // Duplicated values straddling the k-th position: the top-k
        // multiset (and hence the share) is unique despite ties.
        let hits = [7u64, 7, 7, 7, 3, 3, 1];
        let mut sorted = hits.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
            let k = ((frac * hits.len() as f64).ceil() as usize).clamp(1, hits.len());
            let expect = sorted[..k].iter().sum::<u64>() as f64
                / hits.iter().sum::<u64>() as f64;
            assert_eq!(top_share(&hits, frac), expect, "frac {frac}");
        }
    }

    #[test]
    fn moving_average_smooths() {
        let s = [0.0, 10.0, 0.0, 10.0];
        let m = moving_average(&s, 2);
        assert_eq!(m.len(), 4);
        // window=2 averages each element with its predecessor half.
        assert!((m[1] - 5.0).abs() < 1e-12);
        let id = moving_average(&s, 1);
        assert_eq!(id, s.to_vec());
    }
}
