//! Internet-wide demographics (Section 7, Figures 11 and 12).
//!
//! Three per-`/24` features are projected onto a unified `[0, 1]`
//! scale — spatio-temporal utilization (already normalized), traffic
//! (log-transformed, divided by the max log across blocks), and the
//! relative host count (same treatment of unique UA samples) — then
//! binned into a 10×10×10 cube. Figure 12 projects the cube per RIR
//! onto (STU × traffic) with host count as color.

use crate::dataset::DailyDataset;
use ipactive_net::Block24;
use ipactive_rir::{DelegationDb, Rir};

/// Number of bins per feature axis (paper: 10, giving 1000 cells).
pub const BINS: usize = 10;

/// Normalized features of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockFeatures {
    /// The block.
    pub block: Block24,
    /// Spatio-temporal utilization in `(0, 1]`.
    pub stu: f64,
    /// Normalized log-traffic in `[0, 1]`.
    pub traffic: f64,
    /// Normalized log-relative-host-count in `[0, 1]`.
    pub hosts: f64,
}

/// Extracts and normalizes the feature triple for every active block.
pub fn features(ds: &DailyDataset) -> Vec<BlockFeatures> {
    let window = 0..ds.num_days;
    let active: Vec<_> = ds
        .blocks
        .iter()
        .filter(|r| r.any_active(window.clone()))
        .collect();
    let log = |v: u64| ((v + 1) as f64).ln();
    let max_traffic = active.iter().map(|r| log(r.total_hits)).fold(0.0f64, f64::max);
    let max_hosts =
        active.iter().map(|r| log(r.ua_unique as u64)).fold(0.0f64, f64::max);
    active
        .iter()
        .map(|r| BlockFeatures {
            block: r.block,
            stu: r.stu(window.clone()),
            traffic: if max_traffic > 0.0 { log(r.total_hits) / max_traffic } else { 0.0 },
            hosts: if max_hosts > 0.0 { log(r.ua_unique as u64) / max_hosts } else { 0.0 },
        })
        .collect()
}

fn bin(v: f64) -> usize {
    ((v * BINS as f64) as usize).min(BINS - 1)
}

/// The 10×10×10 demographics cube (Figure 11).
#[derive(Debug, Clone)]
pub struct Cube {
    /// `counts[stu][traffic][hosts]`.
    pub counts: Vec<[[u32; BINS]; BINS]>,
    /// Total blocks binned.
    pub total: u64,
}

/// Bins features into the cube.
pub fn cube(features: &[BlockFeatures]) -> Cube {
    let mut counts = vec![[[0u32; BINS]; BINS]; BINS];
    for f in features {
        counts[bin(f.stu)][bin(f.traffic)][bin(f.hosts)] += 1;
    }
    Cube { counts, total: features.len() as u64 }
}

impl Cube {
    /// The non-empty cells, as `(stu_bin, traffic_bin, hosts_bin, count)`,
    /// sorted by count descending — the spheres of Figure 11.
    pub fn cells(&self) -> Vec<(usize, usize, usize, u32)> {
        let mut out = Vec::new();
        for (s, plane) in self.counts.iter().enumerate() {
            for (t, row) in plane.iter().enumerate() {
                for (h, &c) in row.iter().enumerate() {
                    if c > 0 {
                        out.push((s, t, h, c));
                    }
                }
            }
        }
        out.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        out
    }

    /// Marginal distribution over the STU axis — the "strong division
    /// along the spatio-temporal utilization axis" observation.
    pub fn stu_marginal(&self) -> [u64; BINS] {
        let mut out = [0u64; BINS];
        for (s, plane) in self.counts.iter().enumerate() {
            out[s] = plane.iter().flatten().map(|&c| c as u64).sum();
        }
        out
    }
}

/// One cell of a Figure 12 per-RIR grid: block count plus mean host
/// feature (the color scale).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GridCell {
    /// Blocks in the cell.
    pub count: u32,
    /// Mean normalized host count of those blocks.
    pub mean_hosts: f64,
}

/// A per-RIR (STU × traffic) grid.
#[derive(Debug, Clone)]
pub struct RirGrid {
    /// The registry.
    pub rir: Rir,
    /// `cells[stu][traffic]`.
    pub cells: [[GridCell; BINS]; BINS],
    /// Total blocks attributed to this RIR.
    pub total: u64,
}

/// Computes Figure 12: one grid per RIR.
pub fn per_rir(features: &[BlockFeatures], db: &DelegationDb) -> Vec<RirGrid> {
    let mut sums = vec![[[0f64; BINS]; BINS]; 5];
    let mut counts = vec![[[0u32; BINS]; BINS]; 5];
    let mut totals = [0u64; 5];
    for f in features {
        let Some(rir) = db.rir_of(f.block.network()) else { continue };
        let i = rir.index();
        let (s, t) = (bin(f.stu), bin(f.traffic));
        counts[i][s][t] += 1;
        sums[i][s][t] += f.hosts;
        totals[i] += 1;
    }
    Rir::ALL
        .into_iter()
        .map(|rir| {
            let i = rir.index();
            let mut cells = [[GridCell::default(); BINS]; BINS];
            for s in 0..BINS {
                for t in 0..BINS {
                    let c = counts[i][s][t];
                    cells[s][t] = GridCell {
                        count: c,
                        mean_hosts: if c > 0 { sums[i][s][t] / c as f64 } else { 0.0 },
                    };
                }
            }
            RirGrid { rir, cells, total: totals[i] }
        })
        .collect()
}

impl RirGrid {
    /// Fraction of this RIR's blocks with STU in the top `k` bins —
    /// used to compare, e.g., LACNIC/AFRINIC conservation against
    /// ARIN's slack.
    pub fn high_stu_fraction(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self
            .cells
            .iter()
            .skip(BINS - k)
            .flat_map(|row| row.iter())
            .map(|c| c.count as u64)
            .sum();
        n as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_net::Addr;
    use ipactive_rir::{CountryCode, Delegation};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn fixture() -> DailyDataset {
        let mut b = DailyDatasetBuilder::new(4);
        // Low-STU, low-traffic block.
        b.record_hits(0, a("10.0.0.1"), 10);
        b.record_ua(0, a("10.0.0.1"), 1);
        // High-STU, high-traffic, high-diversity gateway block.
        let gw = Block24::of(a("20.0.0.0"));
        for host in 0..=255u8 {
            for d in 0..4 {
                b.record_hits(d, gw.addr(host), 10_000);
            }
        }
        for i in 0..500u64 {
            b.record_ua(0, gw.addr((i % 256) as u8), i);
        }
        b.finish()
    }

    #[test]
    fn features_are_normalized() {
        let f = features(&fixture());
        assert_eq!(f.len(), 2);
        for bf in &f {
            assert!((0.0..=1.0).contains(&bf.stu));
            assert!((0.0..=1.0).contains(&bf.traffic));
            assert!((0.0..=1.0).contains(&bf.hosts));
        }
        let gw = f.iter().find(|x| x.block == Block24::of(a("20.0.0.0"))).unwrap();
        assert!((gw.stu - 1.0).abs() < 1e-12);
        assert!((gw.traffic - 1.0).abs() < 1e-12);
        assert!((gw.hosts - 1.0).abs() < 1e-12);
        let lo = f.iter().find(|x| x.block == Block24::of(a("10.0.0.0"))).unwrap();
        assert!(lo.stu < 0.01 && lo.traffic < 0.5 && lo.hosts < 0.5);
    }

    #[test]
    fn cube_bins_and_marginals() {
        let f = features(&fixture());
        let c = cube(&f);
        assert_eq!(c.total, 2);
        let cells = c.cells();
        assert_eq!(cells.len(), 2);
        // Gateway block lands in the extreme corner.
        assert!(cells.iter().any(|&(s, t, h, n)| s == 9 && t == 9 && h == 9 && n == 1));
        let marg = c.stu_marginal();
        assert_eq!(marg.iter().sum::<u64>(), 2);
        assert_eq!(marg[0], 1);
        assert_eq!(marg[9], 1);
    }

    #[test]
    fn per_rir_grids() {
        let mut db = DelegationDb::new();
        db.insert(Delegation {
            prefix: "10.0.0.0/8".parse().unwrap(),
            rir: Rir::Arin,
            country: CountryCode::new("US"),
        });
        db.insert(Delegation {
            prefix: "20.0.0.0/8".parse().unwrap(),
            rir: Rir::Apnic,
            country: CountryCode::new("CN"),
        });
        let f = features(&fixture());
        let grids = per_rir(&f, &db);
        assert_eq!(grids.len(), 5);
        let arin = &grids[Rir::Arin.index()];
        assert_eq!(arin.total, 1);
        assert_eq!(arin.high_stu_fraction(1), 0.0);
        let apnic = &grids[Rir::Apnic.index()];
        assert_eq!(apnic.total, 1);
        assert!((apnic.high_stu_fraction(1) - 1.0).abs() < 1e-12);
        assert!((apnic.cells[9][9].mean_hosts - 1.0).abs() < 1e-12);
        assert_eq!(grids[Rir::Lacnic.index()].total, 0);
        assert_eq!(grids[Rir::Lacnic.index()].high_stu_fraction(3), 0.0);
    }

    #[test]
    fn bin_edges() {
        assert_eq!(bin(0.0), 0);
        assert_eq!(bin(0.099), 0);
        assert_eq!(bin(0.1), 1);
        assert_eq!(bin(0.999), 9);
        assert_eq!(bin(1.0), 9);
    }
}
