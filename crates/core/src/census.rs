//! Dataset census — Table 1's totals and per-snapshot averages.

use crate::dataset::{DailyDataset, WeeklyDataset};
use ipactive_bgp::Asn;
use ipactive_net::Block24;
use std::collections::{HashMap, HashSet};

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CensusRow {
    /// Number of snapshots (days or weeks).
    pub snapshots: usize,
    /// Distinct active IP addresses over the whole period.
    pub ips_total: u64,
    /// Average active addresses per snapshot.
    pub ips_avg: f64,
    /// Distinct active `/24` blocks over the whole period.
    pub blocks_total: u64,
    /// Average active blocks per snapshot.
    pub blocks_avg: f64,
    /// Distinct active ASes over the whole period.
    pub ases_total: u64,
    /// Average active ASes per snapshot.
    pub ases_avg: f64,
}

/// Computes the daily (Table 1, first row) census. `resolve` maps a
/// `/24` to its origin AS.
pub fn daily_census<F>(ds: &DailyDataset, mut resolve: F) -> CensusRow
where
    F: FnMut(Block24) -> Option<Asn>,
{
    let days = ds.num_days;
    let mut ips_per_day = vec![0u64; days];
    let mut blocks_per_day = vec![0u64; days];
    let mut ases_per_day: Vec<HashSet<Asn>> = vec![HashSet::new(); days];
    let mut ases_total: HashSet<Asn> = HashSet::new();
    let mut ips_total = 0u64;
    let mut blocks_total = 0u64;
    let mut as_cache: HashMap<Block24, Option<Asn>> = HashMap::new();
    for rec in &ds.blocks {
        let asn = *as_cache.entry(rec.block).or_insert_with(|| resolve(rec.block));
        let mut block_any = false;
        let mut block_days = [false; 128];
        for bits in rec.rows.iter() {
            if bits.is_empty() {
                continue;
            }
            ips_total += 1;
            block_any = true;
            for d in bits.iter() {
                ips_per_day[d] += 1;
                block_days[d] = true;
            }
        }
        if block_any {
            blocks_total += 1;
            if let Some(asn) = asn {
                ases_total.insert(asn);
            }
            for (d, &active) in block_days.iter().enumerate().take(days) {
                if active {
                    blocks_per_day[d] += 1;
                    if let Some(asn) = asn {
                        ases_per_day[d].insert(asn);
                    }
                }
            }
        }
    }
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    CensusRow {
        snapshots: days,
        ips_total,
        ips_avg: avg(&ips_per_day),
        blocks_total,
        blocks_avg: avg(&blocks_per_day),
        ases_total: ases_total.len() as u64,
        ases_avg: ases_per_day.iter().map(|s| s.len() as u64).sum::<u64>() as f64
            / days.max(1) as f64,
    }
}

/// Computes the weekly (Table 1, second row) census.
pub fn weekly_census<F>(ws: &WeeklyDataset, mut resolve: F) -> CensusRow
where
    F: FnMut(Block24) -> Option<Asn>,
{
    let weeks = ws.num_weeks;
    let mut ips_per_week = vec![0u64; weeks];
    let mut blocks_per_week = vec![0u64; weeks];
    let mut ases_per_week: Vec<HashSet<Asn>> = vec![HashSet::new(); weeks];
    let mut ases_total: HashSet<Asn> = HashSet::new();
    let mut ips_total = 0u64;
    let mut blocks_total = 0u64;
    for (block, rows) in &ws.blocks {
        let asn = resolve(*block);
        let mut block_weeks = 0u64;
        for &bits in rows.iter() {
            if bits == 0 {
                continue;
            }
            ips_total += 1;
            block_weeks |= bits;
            let mut b = bits;
            while b != 0 {
                let w = b.trailing_zeros() as usize;
                ips_per_week[w] += 1;
                b &= b - 1;
            }
        }
        if block_weeks != 0 {
            blocks_total += 1;
            if let Some(asn) = asn {
                ases_total.insert(asn);
            }
            let mut b = block_weeks;
            while b != 0 {
                let w = b.trailing_zeros() as usize;
                blocks_per_week[w] += 1;
                if let Some(asn) = asn {
                    ases_per_week[w].insert(asn);
                }
                b &= b - 1;
            }
        }
    }
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    CensusRow {
        snapshots: weeks,
        ips_total,
        ips_avg: avg(&ips_per_week),
        blocks_total,
        blocks_avg: avg(&blocks_per_week),
        ases_total: ases_total.len() as u64,
        ases_avg: ases_per_week.iter().map(|s| s.len() as u64).sum::<u64>() as f64
            / weeks.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DailyDatasetBuilder, WeeklyDatasetBuilder};
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn daily_census_counts() {
        let mut b = DailyDatasetBuilder::new(2);
        // AS1 block: 2 addrs, one active both days, one only day 0.
        b.record_hits(0, a("10.0.0.1"), 1);
        b.record_hits(1, a("10.0.0.1"), 1);
        b.record_hits(0, a("10.0.0.2"), 1);
        // AS2 block: 1 addr active day 1 only.
        b.record_hits(1, a("20.0.0.1"), 1);
        let ds = b.finish();
        let row = daily_census(&ds, |blk| {
            Some(if blk.network() == a("10.0.0.0") { Asn(1) } else { Asn(2) })
        });
        assert_eq!(row.snapshots, 2);
        assert_eq!(row.ips_total, 3);
        assert!((row.ips_avg - 2.0).abs() < 1e-12); // day0: 2, day1: 2
        assert_eq!(row.blocks_total, 2);
        assert!((row.blocks_avg - 1.5).abs() < 1e-12); // day0: 1 block, day1: 2
        assert_eq!(row.ases_total, 2);
        assert!((row.ases_avg - 1.5).abs() < 1e-12);
    }

    #[test]
    fn daily_census_with_unresolvable_blocks() {
        let mut b = DailyDatasetBuilder::new(1);
        b.record_hits(0, a("10.0.0.1"), 1);
        let ds = b.finish();
        let row = daily_census(&ds, |_| None);
        assert_eq!(row.ases_total, 0);
        assert_eq!(row.ips_total, 1);
    }

    #[test]
    fn weekly_census_counts() {
        let mut b = WeeklyDatasetBuilder::new(3);
        b.record_week(0, a("10.0.0.1"), 1);
        b.record_week(2, a("10.0.0.1"), 1);
        b.record_week(1, a("20.0.0.1"), 1);
        let ws = b.finish();
        let row = weekly_census(&ws, |_| Some(Asn(9)));
        assert_eq!(row.snapshots, 3);
        assert_eq!(row.ips_total, 2);
        assert!((row.ips_avg - 1.0).abs() < 1e-12);
        assert_eq!(row.blocks_total, 2);
        assert_eq!(row.ases_total, 1);
        assert!((row.ases_avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn totals_exceed_averages_under_churn() {
        // The Table 1 signature: total >> average when the population churns.
        let mut b = WeeklyDatasetBuilder::new(4);
        for w in 0..4usize {
            // Each week a different address.
            b.record_week(w, a("10.0.0.0").saturating_add(w as u32 + 1), 1);
        }
        let ws = b.finish();
        let row = weekly_census(&ws, |_| Some(Asn(1)));
        assert_eq!(row.ips_total, 4);
        assert!((row.ips_avg - 1.0).abs() < 1e-12);
        assert!(row.ips_total as f64 > row.ips_avg);
    }
}
