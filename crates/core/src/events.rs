//! Event sizing and BGP correlation (Section 4.2, Figures 5(b), 5(c)).

use crate::dataset::DailyWindows;
use crate::par::Parallelism;
use ipactive_bgp::BgpTimeline;
use ipactive_net::{ActiveSet, EventSizeHistogram};
use std::sync::Arc;

/// Whether to size/correlate up events or down events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventDirection {
    /// Absent in window *i*, present in window *i+1*.
    Up,
    /// Present in window *i*, absent in window *i+1*.
    Down,
}

/// Builds the Figure 5(b) event-size histogram for one window size,
/// aggregated over all consecutive window pairs in the dataset.
///
/// For each per-address event, the smallest covering prefix mask is
/// computed (see [`ipactive_net::covering_mask`]); the histogram
/// fractions over the display buckets reproduce the figure's bars.
///
/// Accepts any [`DailyWindows`] source, so the bench layer can pass a
/// memoizing cache in place of the raw dataset.
pub fn event_sizes<W: DailyWindows>(
    ds: &W,
    window_days: usize,
    direction: EventDirection,
) -> EventSizeHistogram {
    event_sizes_par(ds, window_days, direction, &Parallelism::serial())
}

/// [`event_sizes`] with the window pairs split into chunk-range
/// subtasks.
///
/// The window unions are fetched up front in window order — the same
/// query sequence the serial form issues, so a memoizing source's
/// hit/miss counts are independent of the subtask schedule. Each pair
/// then sizes its events independently; per-pair histograms merge by
/// counter addition, so the aggregate is order-independent and equal
/// to the serial result.
pub fn event_sizes_par<W: DailyWindows>(
    ds: &W,
    window_days: usize,
    direction: EventDirection,
    par: &Parallelism,
) -> EventSizeHistogram {
    let n_windows = ds.num_days() / window_days;
    if n_windows < 2 {
        return EventSizeHistogram::new();
    }
    let windows: Vec<Arc<W::Set>> = (0..n_windows)
        .map(|i| ds.union(i * window_days..(i + 1) * window_days))
        .collect();
    let chunk_hists = par.run(n_windows - 1, 2, |range| {
        let mut hist = EventSizeHistogram::new();
        for k in range {
            let (prev, cur) = (&*windows[k], &*windows[k + 1]);
            // Events stream out of the pair diff and straight into the
            // histogram — no event set is materialized per pair.
            let pair = match direction {
                EventDirection::Up => EventSizeHistogram::from_diff_events(cur, prev),
                EventDirection::Down => EventSizeHistogram::from_diff_events(prev, cur),
            };
            hist.merge(&pair);
        }
        hist
    });
    let mut hist = EventSizeHistogram::new();
    for h in &chunk_hists {
        hist.merge(h);
    }
    hist
}

/// Figure 5(c): fraction of events coinciding with a BGP change, for
/// one window size.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BgpCorrelation {
    /// Window size in days.
    pub window_days: usize,
    /// Percentage of up events whose address was covered by a BGP
    /// change within the window pair's span.
    pub up_pct: f64,
    /// Same for down events.
    pub down_pct: f64,
    /// Same for steadily active addresses (present in both windows) —
    /// the control group.
    pub steady_pct: f64,
}

/// Computes Figure 5(c) for one window size.
///
/// `day_offset` maps dataset day 0 onto the BGP timeline's day axis
/// (the paper's daily window starts mid-August; BGP days count from
/// the start of the year).
pub fn bgp_correlation<W: DailyWindows>(
    ds: &W,
    window_days: usize,
    bgp: &BgpTimeline,
    day_offset: u16,
) -> BgpCorrelation {
    bgp_correlation_par(ds, window_days, bgp, day_offset, &Parallelism::serial())
}

/// [`bgp_correlation`] with the window pairs split into chunk-range
/// subtasks, counting by prefix instead of walking every address.
///
/// Any two CIDR prefixes are nested or disjoint, so the *maximal*
/// changed prefixes of a span partition the changed address space —
/// and "events coinciding with a change" becomes a sum of prefix
/// counts: per maximal prefix `p`, the pair contributes
/// `|Cur ∩ p| − |Cur ∩ Prev ∩ p|` affected up events,
/// `|Prev ∩ p| − |Cur ∩ Prev ∩ p|` affected down events, and
/// `|Cur ∩ Prev ∩ p|` affected steady addresses. The totals are the
/// same integers the per-address membership walk produces, so the
/// percentages agree exactly.
pub fn bgp_correlation_par<W: DailyWindows>(
    ds: &W,
    window_days: usize,
    bgp: &BgpTimeline,
    day_offset: u16,
    par: &Parallelism,
) -> BgpCorrelation {
    let w = window_days;
    let n_windows = ds.num_days() / w;
    assert!(n_windows >= 2, "need at least two windows");
    let windows: Vec<Arc<W::Set>> =
        (0..n_windows).map(|i| ds.union(i * w..(i + 1) * w)).collect();
    // [up_hit, up_all, down_hit, down_all, steady_hit, steady_all]
    let chunk_totals = par.run(n_windows - 1, 2, |range| {
        let mut t = [0u64; 6];
        for k in range {
            let (prev, cur) = (&windows[k], &windows[k + 1]);
            let span_start = day_offset + (k * w) as u16;
            let span_end = day_offset + ((k + 2) * w) as u16;
            let changes = bgp.changes_in(span_start..span_end);
            let inter = cur.intersect(prev);
            let (cur_n, prev_n, inter_n) =
                (cur.len() as u64, prev.len() as u64, inter.len() as u64);
            for p in changes.maximal_prefixes() {
                let c = cur.count_in(p) as u64;
                let pv = prev.count_in(p) as u64;
                let it = inter.count_in(p) as u64;
                t[0] += c - it;
                t[2] += pv - it;
                t[4] += it;
            }
            t[1] += cur_n - inter_n;
            t[3] += prev_n - inter_n;
            t[5] += inter_n;
        }
        t
    });
    let mut tot = [0u64; 6];
    for t in chunk_totals {
        for (a, b) in tot.iter_mut().zip(t) {
            *a += b;
        }
    }
    let pct = |hit: u64, all: u64| if all == 0 { 0.0 } else { 100.0 * hit as f64 / all as f64 };
    BgpCorrelation {
        window_days,
        up_pct: pct(tot[0], tot[1]),
        down_pct: pct(tot[2], tot[3]),
        steady_pct: pct(tot[4], tot[5]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_bgp::{Asn, BgpEvent, BgpEventKind, RoutingTable};
    use ipactive_net::{Addr, Block24};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn whole_block_flip_sizes_as_block_event() {
        let mut b = DailyDatasetBuilder::new(4);
        // Window size 2. Block X active in window 0 only; block Y in window 1 only.
        // A steady neighbor block bounds growth at /22 distance.
        for host in 0..=255u8 {
            b.record_hits(0, Block24::of(a("10.0.0.0")).addr(host), 1);
            b.record_hits(2, Block24::of(a("10.0.1.0")).addr(host), 1);
        }
        for d in 0..4 {
            b.record_hits(d, a("10.0.2.7"), 1); // steady
        }
        let ds = b.finish();
        let up = event_sizes(&ds, 2, EventDirection::Up);
        assert_eq!(up.total(), 256); // every addr of block Y
        // All events must be "bulky": mask <= /24 (block-or-larger).
        assert!(up.fraction_between(0, 24) > 0.999, "buckets: {:?}", up.figure5b_buckets());
        let down = event_sizes(&ds, 2, EventDirection::Down);
        assert_eq!(down.total(), 256);
        assert!(down.fraction_between(0, 24) > 0.999);
    }

    #[test]
    fn isolated_flips_size_as_single_addresses() {
        let mut b = DailyDatasetBuilder::new(4);
        // Dense steady block with two alternating addresses inside it.
        for host in 0..=255u8 {
            let addr = Block24::of(a("10.0.0.0")).addr(host);
            match host {
                10 => b.record_hits(0, addr, 1), // down after window 0
                11 => b.record_hits(2, addr, 1), // up in window 1
                _ => {
                    for d in 0..4 {
                        b.record_hits(d, addr, 1);
                    }
                }
            }
        }
        let ds = b.finish();
        let up = event_sizes(&ds, 2, EventDirection::Up);
        assert_eq!(up.total(), 1);
        assert!(up.fraction_between(29, 32) > 0.999);
    }

    #[test]
    fn empty_dataset_yields_empty_histogram() {
        let ds = DailyDatasetBuilder::new(4).finish();
        assert_eq!(event_sizes(&ds, 2, EventDirection::Up).total(), 0);
    }

    #[test]
    fn chunked_event_sizes_match_serial() {
        // Many windows (8 of size 1) so the pair loop actually chunks.
        let mut b = DailyDatasetBuilder::new(8);
        for d in 0..8usize {
            b.record_hits(d, a("10.0.0.1"), 1); // steady
            if d % 2 == 0 {
                b.record_hits(d, a("10.0.0.2"), 1); // flicker
            }
            if d % 3 == 0 {
                b.record_hits(d, a("10.0.4.9"), 1); // distant flicker
            }
        }
        let ds = b.finish();
        for dir in [EventDirection::Up, EventDirection::Down] {
            let serial = event_sizes(&ds, 1, dir);
            let chunked = event_sizes_par(&ds, 1, dir, &Parallelism::new(3));
            assert_eq!(serial, chunked);
        }
    }

    #[test]
    fn bgp_correlation_flags_only_covered_events() {
        let mut b = DailyDatasetBuilder::new(4);
        // Two up events in window pair (0,1): one inside a changed
        // prefix, one outside. Plus steady addresses in both regions.
        b.record_hits(2, a("10.0.0.1"), 1); // up, inside change
        b.record_hits(2, a("20.0.0.1"), 1); // up, outside change
        for d in 0..4 {
            b.record_hits(d, a("10.0.0.200"), 1); // steady, inside change
            b.record_hits(d, a("20.0.0.200"), 1); // steady, outside
        }
        b.record_hits(0, a("20.0.0.9"), 1); // down, outside change
        let ds = b.finish();

        let mut table = RoutingTable::new();
        table.announce("10.0.0.0/8".parse().unwrap(), Asn(1));
        table.announce("20.0.0.0/8".parse().unwrap(), Asn(2));
        let mut bgp = BgpTimeline::new(table);
        bgp.push(BgpEvent {
            day: 101, // inside the span 100..104 (offset 100)
            prefix: "10.0.0.0/16".parse().unwrap(),
            kind: BgpEventKind::OriginChange { to: Asn(9) },
        });

        let corr = bgp_correlation(&ds, 2, &bgp, 100);
        assert!((corr.up_pct - 50.0).abs() < 1e-9, "up {}", corr.up_pct);
        assert!((corr.down_pct - 0.0).abs() < 1e-9);
        assert!((corr.steady_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn bgp_correlation_ignores_changes_outside_span() {
        let mut b = DailyDatasetBuilder::new(4);
        b.record_hits(2, a("10.0.0.1"), 1);
        b.record_hits(0, a("10.0.0.2"), 1);
        let ds = b.finish();
        let mut table = RoutingTable::new();
        table.announce("10.0.0.0/8".parse().unwrap(), Asn(1));
        let mut bgp = BgpTimeline::new(table);
        bgp.push(BgpEvent {
            day: 300,
            prefix: "10.0.0.0/16".parse().unwrap(),
            kind: BgpEventKind::Withdraw,
        });
        let corr = bgp_correlation(&ds, 2, &bgp, 0);
        assert_eq!(corr.up_pct, 0.0);
        assert_eq!(corr.down_pct, 0.0);
    }

    #[test]
    fn count_based_correlation_matches_per_address_walk() {
        // Nested and disjoint changed prefixes plus events scattered
        // across them: the prefix-count totals must equal a literal
        // per-address `affects` membership walk.
        let mut b = DailyDatasetBuilder::new(8);
        for d in 0..8usize {
            b.record_hits(d, a("10.0.0.1"), 1); // steady inside /16 and /24
            b.record_hits(d, a("10.1.0.1"), 1); // steady outside changes
            if d % 2 == 0 {
                b.record_hits(d, a("10.0.0.2"), 1); // flicker inside /24
                b.record_hits(d, a("10.0.9.2"), 1); // flicker inside /16 only
            }
            if d % 3 == 0 {
                b.record_hits(d, a("172.16.0.5"), 1); // flicker inside disjoint /12
            }
        }
        b.record_hits(7, a("192.168.3.3"), 1); // late up, unrouted region
        let ds = b.finish();

        let mut table = RoutingTable::new();
        table.announce("10.0.0.0/8".parse().unwrap(), Asn(1));
        table.announce("172.16.0.0/12".parse().unwrap(), Asn(2));
        let mut bgp = BgpTimeline::new(table);
        for (day, pfx) in [(1u16, "10.0.0.0/16"), (2, "10.0.0.0/24"), (3, "172.16.0.0/12")] {
            bgp.push(BgpEvent {
                day,
                prefix: pfx.parse().unwrap(),
                kind: BgpEventKind::OriginChange { to: Asn(9) },
            });
        }

        // Oracle: the historical per-address membership walk.
        let w = 2usize;
        let n_windows = ds.num_days / w;
        let (mut up_hit, mut up_all) = (0u64, 0u64);
        let (mut down_hit, mut down_all) = (0u64, 0u64);
        let (mut steady_hit, mut steady_all) = (0u64, 0u64);
        let mut prev = ds.window_union(0..w);
        for i in 1..n_windows {
            let cur = ds.window_union(i * w..(i + 1) * w);
            let changes = bgp.changes_in((((i - 1) * w) as u16)..(((i + 1) * w) as u16));
            let count = |set: &ipactive_net::AddrSet| {
                set.iter().filter(|&x| changes.affects(x)).count() as u64
            };
            let ups = cur.difference(&prev);
            let downs = prev.difference(&cur);
            let steady = cur.intersect(&prev);
            up_hit += count(&ups);
            up_all += ups.len() as u64;
            down_hit += count(&downs);
            down_all += downs.len() as u64;
            steady_hit += count(&steady);
            steady_all += steady.len() as u64;
            prev = cur;
        }
        let pct = |h: u64, n: u64| if n == 0 { 0.0 } else { 100.0 * h as f64 / n as f64 };

        for pool in [Parallelism::serial(), Parallelism::new(3)] {
            let corr = bgp_correlation_par(&ds, w, &bgp, 0, &pool);
            assert_eq!(corr.up_pct, pct(up_hit, up_all));
            assert_eq!(corr.down_pct, pct(down_hit, down_all));
            assert_eq!(corr.steady_pct, pct(steady_hit, steady_all));
        }
    }
}
