//! Event sizing and BGP correlation (Section 4.2, Figures 5(b), 5(c)).

use crate::dataset::DailyWindows;
use ipactive_bgp::BgpTimeline;
use ipactive_net::{ActiveSet, EventSizeHistogram};

/// Whether to size/correlate up events or down events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventDirection {
    /// Absent in window *i*, present in window *i+1*.
    Up,
    /// Present in window *i*, absent in window *i+1*.
    Down,
}

/// Builds the Figure 5(b) event-size histogram for one window size,
/// aggregated over all consecutive window pairs in the dataset.
///
/// For each per-address event, the smallest covering prefix mask is
/// computed (see [`ipactive_net::covering_mask`]); the histogram
/// fractions over the display buckets reproduce the figure's bars.
///
/// Accepts any [`DailyWindows`] source, so the bench layer can pass a
/// memoizing cache in place of the raw dataset.
pub fn event_sizes<W: DailyWindows>(
    ds: &W,
    window_days: usize,
    direction: EventDirection,
) -> EventSizeHistogram {
    let n_windows = ds.num_days() / window_days;
    let mut hist = EventSizeHistogram::new();
    if n_windows < 2 {
        return hist;
    }
    let mut prev = ds.union(0..window_days);
    for i in 1..n_windows {
        let cur = ds.union(i * window_days..(i + 1) * window_days);
        let (events, exclusion) = match direction {
            EventDirection::Up => (cur.difference(&prev), &*prev),
            EventDirection::Down => (prev.difference(&cur), &*cur),
        };
        let pair_hist = EventSizeHistogram::from_events(&events, exclusion);
        hist.merge(&pair_hist);
        prev = cur;
    }
    hist
}

/// Figure 5(c): fraction of events coinciding with a BGP change, for
/// one window size.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BgpCorrelation {
    /// Window size in days.
    pub window_days: usize,
    /// Percentage of up events whose address was covered by a BGP
    /// change within the window pair's span.
    pub up_pct: f64,
    /// Same for down events.
    pub down_pct: f64,
    /// Same for steadily active addresses (present in both windows) —
    /// the control group.
    pub steady_pct: f64,
}

/// Computes Figure 5(c) for one window size.
///
/// `day_offset` maps dataset day 0 onto the BGP timeline's day axis
/// (the paper's daily window starts mid-August; BGP days count from
/// the start of the year).
pub fn bgp_correlation<W: DailyWindows>(
    ds: &W,
    window_days: usize,
    bgp: &BgpTimeline,
    day_offset: u16,
) -> BgpCorrelation {
    let n_windows = ds.num_days() / window_days;
    assert!(n_windows >= 2, "need at least two windows");
    let (mut up_hit, mut up_all) = (0u64, 0u64);
    let (mut down_hit, mut down_all) = (0u64, 0u64);
    let (mut steady_hit, mut steady_all) = (0u64, 0u64);
    let mut prev = ds.union(0..window_days);
    for i in 1..n_windows {
        let cur = ds.union(i * window_days..(i + 1) * window_days);
        let span_start = day_offset + ((i - 1) * window_days) as u16;
        let span_end = day_offset + ((i + 1) * window_days) as u16;
        let changes = bgp.changes_in(span_start..span_end);
        let count =
            |set: &W::Set| set.iter().filter(|&a| changes.affects(a)).count() as u64;
        let ups = cur.difference(&prev);
        let downs = prev.difference(&cur);
        let steady = cur.intersect(&prev);
        up_hit += count(&ups);
        up_all += ups.len() as u64;
        down_hit += count(&downs);
        down_all += downs.len() as u64;
        steady_hit += count(&steady);
        steady_all += steady.len() as u64;
        prev = cur;
    }
    let pct = |hit: u64, all: u64| if all == 0 { 0.0 } else { 100.0 * hit as f64 / all as f64 };
    BgpCorrelation {
        window_days,
        up_pct: pct(up_hit, up_all),
        down_pct: pct(down_hit, down_all),
        steady_pct: pct(steady_hit, steady_all),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_bgp::{Asn, BgpEvent, BgpEventKind, RoutingTable};
    use ipactive_net::{Addr, Block24};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn whole_block_flip_sizes_as_block_event() {
        let mut b = DailyDatasetBuilder::new(4);
        // Window size 2. Block X active in window 0 only; block Y in window 1 only.
        // A steady neighbor block bounds growth at /22 distance.
        for host in 0..=255u8 {
            b.record_hits(0, Block24::of(a("10.0.0.0")).addr(host), 1);
            b.record_hits(2, Block24::of(a("10.0.1.0")).addr(host), 1);
        }
        for d in 0..4 {
            b.record_hits(d, a("10.0.2.7"), 1); // steady
        }
        let ds = b.finish();
        let up = event_sizes(&ds, 2, EventDirection::Up);
        assert_eq!(up.total(), 256); // every addr of block Y
        // All events must be "bulky": mask <= /24 (block-or-larger).
        assert!(up.fraction_between(0, 24) > 0.999, "buckets: {:?}", up.figure5b_buckets());
        let down = event_sizes(&ds, 2, EventDirection::Down);
        assert_eq!(down.total(), 256);
        assert!(down.fraction_between(0, 24) > 0.999);
    }

    #[test]
    fn isolated_flips_size_as_single_addresses() {
        let mut b = DailyDatasetBuilder::new(4);
        // Dense steady block with two alternating addresses inside it.
        for host in 0..=255u8 {
            let addr = Block24::of(a("10.0.0.0")).addr(host);
            match host {
                10 => b.record_hits(0, addr, 1), // down after window 0
                11 => b.record_hits(2, addr, 1), // up in window 1
                _ => {
                    for d in 0..4 {
                        b.record_hits(d, addr, 1);
                    }
                }
            }
        }
        let ds = b.finish();
        let up = event_sizes(&ds, 2, EventDirection::Up);
        assert_eq!(up.total(), 1);
        assert!(up.fraction_between(29, 32) > 0.999);
    }

    #[test]
    fn empty_dataset_yields_empty_histogram() {
        let ds = DailyDatasetBuilder::new(4).finish();
        assert_eq!(event_sizes(&ds, 2, EventDirection::Up).total(), 0);
    }

    #[test]
    fn bgp_correlation_flags_only_covered_events() {
        let mut b = DailyDatasetBuilder::new(4);
        // Two up events in window pair (0,1): one inside a changed
        // prefix, one outside. Plus steady addresses in both regions.
        b.record_hits(2, a("10.0.0.1"), 1); // up, inside change
        b.record_hits(2, a("20.0.0.1"), 1); // up, outside change
        for d in 0..4 {
            b.record_hits(d, a("10.0.0.200"), 1); // steady, inside change
            b.record_hits(d, a("20.0.0.200"), 1); // steady, outside
        }
        b.record_hits(0, a("20.0.0.9"), 1); // down, outside change
        let ds = b.finish();

        let mut table = RoutingTable::new();
        table.announce("10.0.0.0/8".parse().unwrap(), Asn(1));
        table.announce("20.0.0.0/8".parse().unwrap(), Asn(2));
        let mut bgp = BgpTimeline::new(table);
        bgp.push(BgpEvent {
            day: 101, // inside the span 100..104 (offset 100)
            prefix: "10.0.0.0/16".parse().unwrap(),
            kind: BgpEventKind::OriginChange { to: Asn(9) },
        });

        let corr = bgp_correlation(&ds, 2, &bgp, 100);
        assert!((corr.up_pct - 50.0).abs() < 1e-9, "up {}", corr.up_pct);
        assert!((corr.down_pct - 0.0).abs() < 1e-9);
        assert!((corr.steady_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn bgp_correlation_ignores_changes_outside_span() {
        let mut b = DailyDatasetBuilder::new(4);
        b.record_hits(2, a("10.0.0.1"), 1);
        b.record_hits(0, a("10.0.0.2"), 1);
        let ds = b.finish();
        let mut table = RoutingTable::new();
        table.announce("10.0.0.0/8".parse().unwrap(), Asn(1));
        let mut bgp = BgpTimeline::new(table);
        bgp.push(BgpEvent {
            day: 300,
            prefix: "10.0.0.0/16".parse().unwrap(),
            kind: BgpEventKind::Withdraw,
        });
        let corr = bgp_correlation(&ds, 2, &bgp, 0);
        assert_eq!(corr.up_pct, 0.0);
        assert_eq!(corr.down_pct, 0.0);
    }
}
