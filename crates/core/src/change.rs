//! Change detection (Section 5.2, Figure 8(a)).
//!
//! For each active `/24`, the month-to-month spatio-temporal
//! utilization deltas are computed; the delta of largest magnitude
//! (signed) characterizes the block. Blocks with `|Δ| > threshold`
//! (paper: 0.25) are tagged *major change* — likely reallocation or
//! assignment reconfiguration — and excluded from the in-situ
//! addressing analyses of Section 5.3.

use crate::dataset::DailyDataset;
use crate::matrix::monthly_stu;
use crate::stats::Ecdf;
use ipactive_net::Block24;

/// The paper's major-change threshold on |ΔSTU|.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Per-block signed max-magnitude monthly STU delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockDelta {
    /// The block.
    pub block: Block24,
    /// The month-to-month STU difference of largest magnitude
    /// (signed; positive = utilization grew).
    pub max_delta: f64,
}

/// Result of partitioning the active blocks by change magnitude.
#[derive(Debug, Clone)]
pub struct ChangePartition {
    /// Per-block deltas, in block order.
    pub deltas: Vec<BlockDelta>,
    /// Blocks with `|Δ| > threshold` (major change, Figure 7 class).
    pub major: Vec<Block24>,
    /// Blocks with `|Δ| <= threshold` (in-situ, Figure 6 class).
    pub stable: Vec<Block24>,
    /// The threshold used.
    pub threshold: f64,
}

impl ChangePartition {
    /// Fraction of active blocks classified as major change.
    pub fn major_fraction(&self) -> f64 {
        let total = self.major.len() + self.stable.len();
        if total == 0 {
            0.0
        } else {
            self.major.len() as f64 / total as f64
        }
    }

    /// ECDF of the signed deltas — Figure 8(a)'s curve.
    pub fn delta_ecdf(&self) -> Ecdf {
        Ecdf::new(self.deltas.iter().map(|d| d.max_delta).collect())
    }
}

/// Computes the signed maximum monthly ΔSTU for one block.
pub fn max_monthly_delta(stu_series: &[f64]) -> f64 {
    stu_series
        .windows(2)
        .map(|w| w[1] - w[0])
        .max_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("non-NaN"))
        .unwrap_or(0.0)
}

/// Runs change detection over every active block (Figure 8(a) +
/// the Section 5.2 partition).
///
/// ```
/// use ipactive_core::{change, DailyDatasetBuilder};
/// use ipactive_net::Block24;
/// let mut b = DailyDatasetBuilder::new(8);
/// let block = Block24::new(0x0A0000);
/// // Empty first "month" (4 days), full second month: ΔSTU = 1.0.
/// for host in 0..=255u8 {
///     for d in 4..8 {
///         b.record_hits(d, block.addr(host), 1);
///     }
/// }
/// let part = change::detect(&b.finish(), 4, change::DEFAULT_THRESHOLD);
/// assert_eq!(part.major, vec![block]);
/// ```
pub fn detect(ds: &DailyDataset, month_days: usize, threshold: f64) -> ChangePartition {
    assert!(threshold >= 0.0);
    let mut deltas = Vec::with_capacity(ds.blocks.len());
    let mut major = Vec::new();
    let mut stable = Vec::new();
    for rec in &ds.blocks {
        if !rec.any_active(0..ds.num_days) {
            continue;
        }
        let series = monthly_stu(rec, ds.num_days, month_days);
        let delta = max_monthly_delta(&series);
        deltas.push(BlockDelta { block: rec.block, max_delta: delta });
        if delta.abs() > threshold {
            major.push(rec.block);
        } else {
            stable.push(rec.block);
        }
    }
    ChangePartition { deltas, major, stable, threshold }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_net::{Addr, Block24};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn max_monthly_delta_signed() {
        assert_eq!(max_monthly_delta(&[0.1, 0.1, 0.1]), 0.0);
        assert!((max_monthly_delta(&[0.1, 0.9, 0.8]) - 0.8).abs() < 1e-12);
        assert!((max_monthly_delta(&[0.9, 0.1, 0.15]) - (-0.8)).abs() < 1e-12);
        assert_eq!(max_monthly_delta(&[0.5]), 0.0);
        assert_eq!(max_monthly_delta(&[]), 0.0);
    }

    fn stable_block() -> Block24 {
        Block24::of(a("10.0.0.0"))
    }

    fn major_block() -> Block24 {
        Block24::of(a("10.0.1.0"))
    }

    #[test]
    fn detect_partitions_blocks() {
        // 8 days, month = 4 days.
        let mut b = DailyDatasetBuilder::new(8);
        // Stable block: ~50% utilization throughout.
        for host in 0..128u8 {
            for d in 0..8 {
                b.record_hits(d, stable_block().addr(host), 1);
            }
        }
        // Major-change block: empty month 0, full month 1 (Δ = +1).
        for host in 0..=255u8 {
            for d in 4..8 {
                b.record_hits(d, major_block().addr(host), 1);
            }
        }
        let ds = b.finish();
        let part = detect(&ds, 4, DEFAULT_THRESHOLD);
        assert_eq!(part.deltas.len(), 2);
        assert_eq!(part.major, vec![major_block()]);
        assert_eq!(part.stable, vec![stable_block()]);
        assert!((part.major_fraction() - 0.5).abs() < 1e-12);
        let ecdf = part.delta_ecdf();
        assert_eq!(ecdf.len(), 2);
        assert!(ecdf.fraction_le(0.0) >= 0.5);
    }

    #[test]
    fn detect_skips_inactive_blocks_and_zero_threshold() {
        let mut b = DailyDatasetBuilder::new(8);
        // A mildly varying block: 10 addrs month 0, 12 addrs month 1.
        for host in 0..12u8 {
            for d in 0..8 {
                if d >= 4 || host < 10 {
                    b.record_hits(d, stable_block().addr(host), 1);
                }
            }
        }
        let ds = b.finish();
        // With threshold 0, any nonzero delta is "major".
        let part = detect(&ds, 4, 0.0);
        assert_eq!(part.major.len(), 1);
        assert!(part.stable.is_empty());
        // With the default threshold it is stable.
        let part = detect(&ds, 4, DEFAULT_THRESHOLD);
        assert_eq!(part.stable.len(), 1);
    }
}
