//! Data-completeness accounting for degraded collection runs.
//!
//! The paper's telemetry is imperfect by construction — CDN logs have
//! sampling, collection gaps, and partial outages, and "Lost in Space"
//! (Dainotti et al., IMC 2014) makes the case that unreliable capture
//! must be *accounted for*, not silently absorbed, before inferring
//! address-space utilization. [`Coverage`] is that accounting made
//! first-class: a per-shard, per-day grid of completeness fractions
//! that a supervised collector attaches to the dataset it produces, so
//! census and churn analyses can annotate their results with how much
//! of the input actually survived collection.
//!
//! A fraction of `1.0` means the shard delivered every retained buffer
//! for that day; `0.0` means the day's slice of that shard was lost
//! entirely; values in between arise from salvage decodes of damaged
//! streams (the surviving-frame ratio). A fully clean run is exactly
//! [`Coverage::full`], which [`Coverage::is_complete`] recognizes.

/// Per-shard, per-day completeness fractions of one collection run.
///
/// The grid is indexed `(shard, day)`; "day" is the dataset's time
/// slot, so for a weekly dataset it is a week index. Fractions are
/// clamped to `[0, 1]` on entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    num_slots: usize,
    /// `grid[shard][slot]` = completeness fraction.
    grid: Vec<Vec<f64>>,
}

impl Coverage {
    /// A fully-complete coverage grid: every shard delivered every
    /// slot (all fractions `1.0`).
    pub fn full(num_shards: usize, num_slots: usize) -> Coverage {
        Coverage { num_slots, grid: vec![vec![1.0; num_slots]; num_shards] }
    }

    /// Builds a grid from one completeness fraction per shard, applied
    /// uniformly across slots — the shape a buffer-granular collector
    /// reports, where a lost buffer affects all days of its blocks.
    pub fn from_shard_fractions(fractions: &[f64], num_slots: usize) -> Coverage {
        Coverage {
            num_slots,
            grid: fractions
                .iter()
                .map(|&f| vec![f.clamp(0.0, 1.0); num_slots])
                .collect(),
        }
    }

    /// Builds a single-shard grid from one completeness fraction per
    /// slot — the shape a *store*-granular check reports, where each
    /// day file is verified independently (an `fsck` pass over a log
    /// store produces exactly this: per-day survival fractions with
    /// no shard dimension).
    pub fn from_slot_fractions(fractions: &[f64]) -> Coverage {
        Coverage {
            num_slots: fractions.len(),
            grid: vec![fractions.iter().map(|f| f.clamp(0.0, 1.0)).collect()],
        }
    }

    /// Number of collector shards covered.
    pub fn num_shards(&self) -> usize {
        self.grid.len()
    }

    /// Number of time slots (days or weeks) covered.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Completeness of one `(shard, slot)` cell.
    pub fn get(&self, shard: usize, slot: usize) -> f64 {
        self.grid[shard][slot]
    }

    /// Sets one `(shard, slot)` cell, clamping to `[0, 1]`.
    pub fn set(&mut self, shard: usize, slot: usize, fraction: f64) {
        self.grid[shard][slot] = fraction.clamp(0.0, 1.0);
    }

    /// Sets every slot of one shard, clamping to `[0, 1]`.
    pub fn set_shard(&mut self, shard: usize, fraction: f64) {
        let f = fraction.clamp(0.0, 1.0);
        for slot in &mut self.grid[shard] {
            *slot = f;
        }
    }

    /// Mean completeness of one shard across all slots.
    pub fn shard(&self, shard: usize) -> f64 {
        mean(&self.grid[shard])
    }

    /// Mean completeness of one slot across all shards.
    pub fn slot(&self, slot: usize) -> f64 {
        if self.grid.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.grid.iter().map(|row| row[slot]).sum();
        sum / self.grid.len() as f64
    }

    /// Mean completeness over the whole grid.
    pub fn overall(&self) -> f64 {
        if self.grid.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.grid.iter().map(|row| mean(row)).sum();
        sum / self.grid.len() as f64
    }

    /// Whether every cell is exactly `1.0` — no data was lost.
    pub fn is_complete(&self) -> bool {
        self.grid.iter().all(|row| row.iter().all(|&f| f == 1.0))
    }

    /// Indices of shards whose mean completeness is below `1.0`.
    pub fn degraded_shards(&self) -> Vec<usize> {
        (0..self.grid.len()).filter(|&s| self.shard(s) < 1.0).collect()
    }

    /// Merges the coverage of two *shard-disjoint* partitions of one
    /// logical run: the partitions' shard rows concatenate in order
    /// (`self`'s shards first), matching the block-disjoint dataset
    /// merge where each side owns the blocks its shards hashed to.
    ///
    /// # Panics
    /// If the slot counts differ.
    pub fn merge(self, other: Coverage) -> Coverage {
        assert_eq!(
            self.num_slots, other.num_slots,
            "cannot merge coverage over different windows"
        );
        let mut grid = self.grid;
        grid.extend(other.grid);
        Coverage { num_slots: self.num_slots, grid }
    }

    /// One-line operator summary, e.g. `coverage 0.875 (shard 1: 0.50, shard 3: 0.00)`.
    pub fn summary(&self) -> String {
        if self.is_complete() {
            return "coverage 1.000 (complete)".to_string();
        }
        let degraded: Vec<String> = self
            .degraded_shards()
            .into_iter()
            .map(|s| format!("shard {s}: {:.2}", self.shard(s)))
            .collect();
        format!("coverage {:.3} ({})", self.overall(), degraded.join(", "))
    }
}

fn mean(row: &[f64]) -> f64 {
    if row.is_empty() {
        return 1.0;
    }
    row.iter().sum::<f64>() / row.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_complete() {
        let c = Coverage::full(4, 7);
        assert!(c.is_complete());
        assert_eq!(c.overall(), 1.0);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.num_slots(), 7);
        assert!(c.degraded_shards().is_empty());
        assert_eq!(c.summary(), "coverage 1.000 (complete)");
    }

    #[test]
    fn shard_and_slot_means() {
        let mut c = Coverage::full(2, 4);
        c.set_shard(1, 0.5);
        assert_eq!(c.shard(0), 1.0);
        assert_eq!(c.shard(1), 0.5);
        assert_eq!(c.slot(2), 0.75);
        assert_eq!(c.overall(), 0.75);
        assert_eq!(c.degraded_shards(), vec![1]);
        assert!(!c.is_complete());
    }

    #[test]
    fn fractions_clamp() {
        let mut c = Coverage::from_shard_fractions(&[2.0, -1.0], 3);
        assert_eq!(c.shard(0), 1.0);
        assert_eq!(c.shard(1), 0.0);
        c.set(1, 0, 7.5);
        assert_eq!(c.get(1, 0), 1.0);
    }

    #[test]
    fn merge_concatenates_shards() {
        let a = Coverage::from_shard_fractions(&[1.0, 0.5], 2);
        let b = Coverage::from_shard_fractions(&[0.25], 2);
        let m = a.merge(b);
        assert_eq!(m.num_shards(), 3);
        assert_eq!(m.shard(1), 0.5);
        assert_eq!(m.shard(2), 0.25);
        assert_eq!(m.degraded_shards(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn merge_rejects_mismatched_slots() {
        let _ = Coverage::full(1, 2).merge(Coverage::full(1, 3));
    }

    #[test]
    fn empty_grid_is_vacuously_complete() {
        let c = Coverage::full(0, 5);
        assert!(c.is_complete());
        assert_eq!(c.overall(), 1.0);
    }
}
