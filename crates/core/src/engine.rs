//! The analysis engine: one memoized activity-set cache shared by the
//! entire figure suite and the always-on observatory.
//!
//! Every figure and table of the paper is a window query over the same
//! two immutable activity matrices (Section 4.1's sliding windows), so
//! [`AnalysisCtx`] memoizes the three query shapes — `day_set(d)`,
//! `week_set(w)`, `window_union(range)` — as `Arc`-shared
//! [`ActiveSet`] values keyed by their range. A set is computed at
//! most once per session and then shared by reference across figures
//! and across the worker threads of the bench crate's `Repro::run_all`.
//!
//! ## Slot layout
//!
//! The key space is finite and known at construction: `d` days, `w`
//! weeks, and every window `s..e` with `0 ≤ s < e ≤ d` (resp. `w`).
//! So the cache is not a locked map but a flat, pre-keyed table of
//! [`OnceLock`] slots — single days/weeks in per-index vectors, and
//! multi-day windows in a triangular vector indexed by
//! `window_slot`. A hit is one lock-free `OnceLock::get`; a miss
//! computes inside `get_or_init`, so racing readers of the same key
//! block on the winner instead of each recomputing the set (the old
//! mutex-map design computed first and re-checked the map afterwards,
//! wasting a full scan per racing loser). One-day windows alias the
//! `day_set` slot; a multi-day window miss *composes*: starting at the
//! window's left edge it repeatedly grabs the longest already-cached
//! sub-window (falling back to the single day set), then merges the
//! pieces with one k-way [`ActiveSet::union_many`] pass. Because
//! union is associative and the tiered representation is canonical,
//! the result is byte-identical no matter which sub-windows happened
//! to be cached first.
//!
//! Composition reads slots *uncounted*: only the public query is
//! metered, as one hit (slot populated) or one miss (this call
//! computed it). Hit/miss totals are therefore a pure function of
//! the query set — exactly one miss per distinct key ever touched,
//! plus one hit per repeat — independent of thread count,
//! interleaving, and whatever composition tree a miss used.
//!
//! The cache needs no invalidation by construction: datasets never
//! change after `finish()`, and the context holds them behind `Arc`,
//! so a cached entry can never go stale. Correctness-neutrality
//! (cached results byte-identical to fresh computation) is pinned by
//! the differential tests in the bench crate's `tests/engine.rs`.
//!
//! ## Epoch carry-forward
//!
//! An always-on observatory appends days to its dataset, which *adds*
//! cache keys but never invalidates existing ones: a window `s..e`
//! over the first `d` days names the same set whether the dataset has
//! `d` days or `d + 1`. [`AnalysisCtx::extended_from`] exploits this —
//! it builds the cache for the grown dataset and seeds it with every
//! slot the previous epoch already materialized (remapping window
//! slots through the new triangular layout), so publishing a new day
//! costs zero recomputation of history and readers of the new epoch
//! share the very same `Arc`s the old epoch handed out.
//!
//! ## Deadline budgets
//!
//! The serving layer answers queries under a per-request wall-clock
//! budget. [`AnalysisCtx::day_window_within`] /
//! [`AnalysisCtx::week_window_within`] run the same composition as the
//! unbudgeted queries but check a [`QueryBudget`] at every
//! slot-composition boundary; an exceeded budget returns
//! [`DeadlineExceeded`] carrying how many units of the window had been
//! composed — partial-progress provenance the serving layer forwards
//! to the client. Cached answers are handed out even when the budget
//! is already spent (a hit costs nothing).

use crate::{DailyDataset, DailyWindows, WeeklyDataset, WeeklyWindows};
use ipactive_net::{ActiveSet, TieredSet};
use ipactive_obs::{Counter, Event, EventKind, Registry};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Hit/miss accounting for one [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered by handing out an already-computed set.
    pub hits: u64,
    /// Queries that had to compute (and then cache) their set.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-query wall-clock compute budget.
///
/// Checked at slot-composition boundaries by the `*_within` queries;
/// [`QueryBudget::unlimited`] never expires and makes the budgeted
/// paths behave exactly like their unbudgeted counterparts.
#[derive(Debug, Clone, Copy)]
pub struct QueryBudget {
    deadline: Option<Instant>,
}

impl QueryBudget {
    /// A budget that never expires.
    pub fn unlimited() -> QueryBudget {
        QueryBudget { deadline: None }
    }

    /// A budget expiring `budget` from now.
    pub fn within(budget: Duration) -> QueryBudget {
        QueryBudget { deadline: Some(Instant::now() + budget) }
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A budgeted query ran out of time mid-composition.
///
/// Partial-progress provenance: `units_done` of `units_total`
/// single-day (or single-week) spans of the requested window had been
/// covered by cached sub-windows or freshly materialized units when
/// the deadline fired. `units_done == units_total` means every piece
/// was gathered but the final k-way merge had not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// Units of the window already composed.
    pub units_done: usize,
    /// Total units in the requested window.
    pub units_total: usize,
}

/// Flat index of window `s..e` (`0 ≤ s < e ≤ d_max`) in a triangular
/// table of `d_max(d_max+1)/2` slots: the windows starting at `s`
/// occupy a contiguous run of `d_max − s` slots.
fn window_slot(d_max: usize, s: usize, e: usize) -> usize {
    debug_assert!(s < e && e <= d_max);
    // offset(s) = Σ_{t<s} (d_max − t) = s(2·d_max − s + 1)/2, written
    // without an `s − 1` that would underflow at s = 0.
    s * (2 * d_max - s + 1) / 2 + (e - s - 1)
}

/// Memoized window-query context over one daily and one weekly
/// dataset.
///
/// See the module docs for the slot layout and the composition miss
/// path. Generic over the [`ActiveSet`] backend the cache
/// materializes; defaults to the tiered compressed representation.
/// The cache logic (slot layout, hit/miss accounting, bypass) is
/// backend-independent, which is what the differential suite in the
/// bench crate's `tests/engine.rs` pins.
pub struct AnalysisCtx<S: ActiveSet = TieredSet> {
    daily: Arc<DailyDataset>,
    weekly: Arc<WeeklyDataset>,
    day_sets: Vec<OnceLock<Arc<S>>>,
    week_sets: Vec<OnceLock<Arc<S>>>,
    /// Triangular window tables (see [`window_slot`]); the length-1
    /// diagonal entries stay empty — those queries alias the
    /// `day_sets`/`week_sets` slots.
    day_windows: Vec<OnceLock<Arc<S>>>,
    week_windows: Vec<OnceLock<Arc<S>>>,
    registry: Registry,
    /// Run-wide observability counters (`engine.cache.hit` /
    /// `engine.cache.miss`) — monotonic, shared with whatever else
    /// meters into the registry, never rewound.
    hits: Counter,
    misses: Counter,
    /// This context's own view of the same traffic, packed into one
    /// word — hits in the high 32 bits, misses in the low 32 — so
    /// [`AnalysisCtx::stats`] is a single coherent load and
    /// [`AnalysisCtx::reset_stats`] a single store, with no torn
    /// hit/miss pairs under concurrency. Each class saturates
    /// correctness at 2³² queries, far beyond a figure suite.
    local: AtomicU64,
    bypass: AtomicBool,
    /// Chaos injection point (µs slept before each uncached unit
    /// materialization on the *budgeted* paths); 0 = disabled. Lets
    /// the chaos harness make `DeadlineExceeded` reachable
    /// deterministically without slowing the unbudgeted hot path.
    compose_stall_us: AtomicU64,
}

const HIT_ONE: u64 = 1 << 32;

impl<S: ActiveSet> AnalysisCtx<S> {
    /// Builds an empty cache over the two datasets, metering into a
    /// private registry.
    pub fn new(daily: Arc<DailyDataset>, weekly: Arc<WeeklyDataset>) -> Self {
        AnalysisCtx::new_with_obs(daily, weekly, &Registry::new())
    }

    /// [`AnalysisCtx::new`] with an explicit observability registry:
    /// cache traffic is published as `engine.cache.hit` /
    /// `engine.cache.miss`, the dataset extents as `engine.days` /
    /// `engine.weeks` gauges, and bypass toggles as
    /// [`EventKind::CacheBypass`] journal events.
    pub fn new_with_obs(
        daily: Arc<DailyDataset>,
        weekly: Arc<WeeklyDataset>,
        registry: &Registry,
    ) -> Self {
        registry.gauge("engine.days").set(daily.num_days as i64);
        registry.gauge("engine.weeks").set(weekly.num_weeks as i64);
        let d = daily.num_days;
        let w = weekly.num_weeks;
        AnalysisCtx {
            day_sets: (0..d).map(|_| OnceLock::new()).collect(),
            week_sets: (0..w).map(|_| OnceLock::new()).collect(),
            day_windows: (0..d * (d + 1) / 2).map(|_| OnceLock::new()).collect(),
            week_windows: (0..w * (w + 1) / 2).map(|_| OnceLock::new()).collect(),
            daily,
            weekly,
            registry: registry.clone(),
            hits: registry.counter("engine.cache.hit"),
            misses: registry.counter("engine.cache.miss"),
            local: AtomicU64::new(0),
            bypass: AtomicBool::new(false),
            compose_stall_us: AtomicU64::new(0),
        }
    }

    /// Builds the cache for a *grown* pair of datasets, carrying
    /// forward every slot `prev` already materialized.
    ///
    /// Caller contract: the new datasets must extend the old ones —
    /// same records for the shared day/week prefix, new days/weeks
    /// appended at the end — which is exactly what an append-only
    /// ingest produces. Under that contract every cached set still
    /// names the same value (appending a day adds keys, it never
    /// changes an existing window), so unit slots copy across directly
    /// and window slots remap through the new triangular layout. The
    /// carried `Arc`s are *shared*, not cloned data: a reader pinned
    /// to the old epoch and a reader of the new one hand out the very
    /// same sets, which is what makes concurrent-ingest answers
    /// byte-identical to a batch build (pinned by the serve crate's
    /// snapshot-isolation differential tests).
    ///
    /// # Panics
    /// If either new dataset is shorter than `prev`'s.
    pub fn extended_from(
        prev: &AnalysisCtx<S>,
        daily: Arc<DailyDataset>,
        weekly: Arc<WeeklyDataset>,
        registry: &Registry,
    ) -> Self {
        assert!(
            prev.daily.num_days <= daily.num_days,
            "extended daily dataset must not shrink ({} -> {})",
            prev.daily.num_days,
            daily.num_days
        );
        assert!(
            prev.weekly.num_weeks <= weekly.num_weeks,
            "extended weekly dataset must not shrink ({} -> {})",
            prev.weekly.num_weeks,
            weekly.num_weeks
        );
        let fresh = AnalysisCtx::new_with_obs(daily, weekly, registry);
        for (old, new) in prev.day_sets.iter().zip(&fresh.day_sets) {
            if let Some(set) = old.get() {
                let _ = new.set(set.clone());
            }
        }
        for (old, new) in prev.week_sets.iter().zip(&fresh.week_sets) {
            if let Some(set) = old.get() {
                let _ = new.set(set.clone());
            }
        }
        let (d_old, d_new) = (prev.daily.num_days, fresh.daily.num_days);
        for s in 0..d_old {
            for e in s + 2..=d_old {
                if let Some(set) = prev.day_windows[window_slot(d_old, s, e)].get() {
                    let _ = fresh.day_windows[window_slot(d_new, s, e)].set(set.clone());
                }
            }
        }
        let (w_old, w_new) = (prev.weekly.num_weeks, fresh.weekly.num_weeks);
        for s in 0..w_old {
            for e in s + 2..=w_old {
                if let Some(set) = prev.week_windows[window_slot(w_old, s, e)].get() {
                    let _ = fresh.week_windows[window_slot(w_new, s, e)].set(set.clone());
                }
            }
        }
        fresh
    }

    /// The daily dataset the context answers for.
    pub fn daily(&self) -> &Arc<DailyDataset> {
        &self.daily
    }

    /// The weekly dataset the context answers for.
    pub fn weekly(&self) -> &Arc<WeeklyDataset> {
        &self.weekly
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.inc();
            self.local.fetch_add(HIT_ONE, Ordering::Relaxed);
        } else {
            self.misses.inc();
            self.local.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Queries `slot`, counting a hit when the set is already there
    /// and a miss when this call's closure computes it. A racing
    /// reader blocks inside `get_or_init` until the winner finishes
    /// and then counts a hit: every key is computed exactly once, and
    /// the counts depend only on the query set.
    fn query_slot(&self, slot: &OnceLock<Arc<S>>, compute: impl FnOnce() -> Arc<S>) -> Arc<S> {
        if let Some(set) = slot.get() {
            self.record(true);
            return set.clone();
        }
        let mut computed = false;
        let set = slot
            .get_or_init(|| {
                computed = true;
                compute()
            })
            .clone();
        self.record(!computed);
        set
    }

    /// Addresses active on day `d`, memoized.
    pub fn day_set(&self, d: usize) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.daily.day_set_as(d));
        }
        self.query_slot(&self.day_sets[d], || Arc::new(self.daily.day_set_as(d)))
    }

    /// Addresses active in week `w`, memoized.
    pub fn week_set(&self, w: usize) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.weekly.week_set_as(w));
        }
        self.query_slot(&self.week_sets[w], || Arc::new(self.weekly.week_set_as(w)))
    }

    /// Composes the union of `range` from cached material without
    /// touching the public hit/miss counters: greedily take the
    /// longest already-cached window starting at the cursor, else the
    /// (memoized, uncounted) single unit set, then one k-way merge.
    ///
    /// `windows` is the triangular table the pieces come from, `unit`
    /// materializes one day/week. Runs inside the window slot's
    /// `get_or_init`, so probing that same slot just reads `None`.
    fn compose(
        &self,
        u_max: usize,
        range: Range<usize>,
        windows: &[OnceLock<Arc<S>>],
        units: &[OnceLock<Arc<S>>],
        unit: impl Fn(usize) -> S,
    ) -> Arc<S> {
        let budget = QueryBudget::unlimited();
        self.compose_within(u_max, range, windows, units, unit, &budget)
            .expect("an unlimited budget never expires")
    }

    /// [`AnalysisCtx::compose`] with a deadline checked at every
    /// slot-composition boundary — before each greedy step and before
    /// the final merge. The stall injection point (see
    /// [`AnalysisCtx::set_compose_stall`]) fires before each uncached
    /// unit materialization, *after* the boundary check, so an
    /// injected stall is charged to the following boundary exactly
    /// like a genuinely slow set build.
    fn compose_within(
        &self,
        u_max: usize,
        range: Range<usize>,
        windows: &[OnceLock<Arc<S>>],
        units: &[OnceLock<Arc<S>>],
        unit: impl Fn(usize) -> S,
        budget: &QueryBudget,
    ) -> Result<Arc<S>, DeadlineExceeded> {
        let _span = self.registry.span("engine.compose");
        let units_total = range.len();
        let mut parts: Vec<Arc<S>> = Vec::new();
        let mut s = range.start;
        while s < range.end {
            if budget.expired() {
                return Err(DeadlineExceeded { units_done: s - range.start, units_total });
            }
            let mut cached = None;
            let mut e = range.end;
            while e > s + 1 {
                if let Some(set) = windows[window_slot(u_max, s, e)].get() {
                    cached = Some((set.clone(), e));
                    break;
                }
                e -= 1;
            }
            match cached {
                Some((set, e)) => {
                    parts.push(set);
                    s = e;
                }
                None => {
                    self.chaos_stall();
                    parts.push(units[s].get_or_init(|| Arc::new(unit(s))).clone());
                    s += 1;
                }
            }
        }
        if parts.len() == 1 {
            return Ok(parts.pop().expect("non-empty range composes at least one part"));
        }
        if budget.expired() {
            return Err(DeadlineExceeded { units_done: units_total, units_total });
        }
        let refs: Vec<&S> = parts.iter().map(|p| &**p).collect();
        Ok(Arc::new(S::union_many(&refs)))
    }

    /// Union of the day window `days`, memoized.
    ///
    /// A miss composes from the longest cached sub-windows (see
    /// `AnalysisCtx::compose`) merged in one
    /// [`ActiveSet::union_many`] pass, so e.g. a 28-day window over a
    /// sweep that already cached its two 14-day halves costs one
    /// 2-way merge instead of a fresh matrix scan or a 28-way one.
    pub fn day_window(&self, days: Range<usize>) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.daily.window_union_as(days));
        }
        assert!(days.end <= self.daily.num_days, "window outside dataset");
        match days.len() {
            0 => return Arc::new(S::empty()),
            // A one-day window and day_set(d) are the same query; give
            // them the same cache slot.
            1 => return self.day_set(days.start),
            _ => {}
        }
        let d_max = self.daily.num_days;
        let slot = &self.day_windows[window_slot(d_max, days.start, days.end)];
        self.query_slot(slot, || {
            self.compose(d_max, days.clone(), &self.day_windows, &self.day_sets, |d| {
                self.daily.day_set_as(d)
            })
        })
    }

    /// Union of the week window `weeks`, memoized (composition as in
    /// [`AnalysisCtx::day_window`]).
    pub fn week_window(&self, weeks: Range<usize>) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.weekly.window_union_as(weeks));
        }
        assert!(weeks.end <= self.weekly.num_weeks, "window outside dataset");
        match weeks.len() {
            0 => return Arc::new(S::empty()),
            1 => return self.week_set(weeks.start),
            _ => {}
        }
        let w_max = self.weekly.num_weeks;
        let slot = &self.week_windows[window_slot(w_max, weeks.start, weeks.end)];
        self.query_slot(slot, || {
            self.compose(w_max, weeks.clone(), &self.week_windows, &self.week_sets, |w| {
                self.weekly.week_set_as(w)
            })
        })
    }

    /// [`AnalysisCtx::day_window`] under a deadline budget.
    ///
    /// A cached window is handed out even when the budget is already
    /// spent (a hit costs nothing). A miss composes with the budget
    /// checked at every slot boundary; running out returns
    /// [`DeadlineExceeded`] with partial-progress provenance and
    /// caches nothing. A successful budgeted miss publishes its set
    /// into the same slot the unbudgeted query uses, so later queries
    /// of either flavor hit.
    ///
    /// Metering: one hit per cached answer, one miss per call that
    /// computed, nothing on `Err`. Unlike [`AnalysisCtx::day_window`],
    /// two budgeted misses racing on one key may both count a miss
    /// (abortable composition cannot run inside `get_or_init`); the
    /// slot still keeps a single canonical set.
    pub fn day_window_within(
        &self,
        days: Range<usize>,
        budget: &QueryBudget,
    ) -> Result<Arc<S>, DeadlineExceeded> {
        assert!(days.end <= self.daily.num_days, "window outside dataset");
        if days.len() <= 1 {
            return self.unit_within(
                days,
                |r| self.day_window(r),
                self.daily.num_days,
                &self.day_sets,
                budget,
            );
        }
        if self.bypass() {
            if budget.expired() {
                return Err(DeadlineExceeded { units_done: 0, units_total: days.len() });
            }
            return Ok(Arc::new(self.daily.window_union_as(days)));
        }
        let d_max = self.daily.num_days;
        let slot = &self.day_windows[window_slot(d_max, days.start, days.end)];
        if let Some(set) = slot.get() {
            self.record(true);
            return Ok(set.clone());
        }
        let set = self.compose_within(
            d_max,
            days.clone(),
            &self.day_windows,
            &self.day_sets,
            |d| self.daily.day_set_as(d),
            budget,
        )?;
        let _ = slot.set(set);
        self.record(false);
        Ok(slot.get().expect("slot was just set").clone())
    }

    /// [`AnalysisCtx::week_window`] under a deadline budget; semantics
    /// as in [`AnalysisCtx::day_window_within`].
    pub fn week_window_within(
        &self,
        weeks: Range<usize>,
        budget: &QueryBudget,
    ) -> Result<Arc<S>, DeadlineExceeded> {
        assert!(weeks.end <= self.weekly.num_weeks, "window outside dataset");
        if weeks.len() <= 1 {
            return self.unit_within(
                weeks,
                |r| self.week_window(r),
                self.weekly.num_weeks,
                &self.week_sets,
                budget,
            );
        }
        if self.bypass() {
            if budget.expired() {
                return Err(DeadlineExceeded { units_done: 0, units_total: weeks.len() });
            }
            return Ok(Arc::new(self.weekly.window_union_as(weeks)));
        }
        let w_max = self.weekly.num_weeks;
        let slot = &self.week_windows[window_slot(w_max, weeks.start, weeks.end)];
        if let Some(set) = slot.get() {
            self.record(true);
            return Ok(set.clone());
        }
        let set = self.compose_within(
            w_max,
            weeks.clone(),
            &self.week_windows,
            &self.week_sets,
            |w| self.weekly.week_set_as(w),
            budget,
        )?;
        let _ = slot.set(set);
        self.record(false);
        Ok(slot.get().expect("slot was just set").clone())
    }

    /// Budgeted path for empty and one-unit windows: cached units are
    /// free; an uncached unit build is charged against the budget as
    /// one boundary.
    fn unit_within(
        &self,
        range: Range<usize>,
        query: impl FnOnce(Range<usize>) -> Arc<S>,
        _u_max: usize,
        units: &[OnceLock<Arc<S>>],
        budget: &QueryBudget,
    ) -> Result<Arc<S>, DeadlineExceeded> {
        if range.is_empty() {
            return Ok(Arc::new(S::empty()));
        }
        let cached = !self.bypass() && units[range.start].get().is_some();
        if !cached && budget.expired() {
            return Err(DeadlineExceeded { units_done: 0, units_total: 1 });
        }
        Ok(query(range))
    }

    /// Union of all days — the figure suite's "CDN union".
    pub fn all_active(&self) -> Arc<S> {
        self.day_window(0..self.daily.num_days)
    }

    /// Populates every day/week unit slot from one transposed pass per
    /// dataset ([`DailyDataset::day_sets_all`] /
    /// [`WeeklyDataset::week_sets_all`]) instead of `num_days +
    /// num_weeks` separate matrix scans.
    ///
    /// Called once before a figure run so the first figure to touch a
    /// wide window doesn't absorb every unit-set build on its own
    /// clock. Like all composition-side slot writes this is uncounted:
    /// [`AnalysisCtx::stats`] stays a pure function of the public
    /// query set. A no-op under bypass, and slots already populated
    /// (racing queries, a second call) keep their existing sets.
    pub fn prewarm_units(&self) {
        if self.bypass() {
            return;
        }
        let _span = self.registry.span("engine.prewarm_units");
        if self.day_sets.iter().any(|s| s.get().is_none()) {
            for (slot, set) in self.day_sets.iter().zip(self.daily.day_sets_all::<S>()) {
                slot.get_or_init(|| Arc::new(set));
            }
        }
        if self.week_sets.iter().any(|s| s.get().is_none()) {
            for (slot, set) in self.week_sets.iter().zip(self.weekly.week_sets_all::<S>()) {
                slot.get_or_init(|| Arc::new(set));
            }
        }
    }

    /// Current hit/miss counters (since construction or the last
    /// [`AnalysisCtx::reset_stats`]) — decoded from one atomic load,
    /// so the pair is always a consistent snapshot.
    pub fn stats(&self) -> CacheStats {
        let packed = self.local.load(Ordering::Relaxed);
        CacheStats { hits: packed >> 32, misses: packed & (HIT_ONE - 1) }
    }

    /// Zeroes the hit/miss view (cached sets are kept) in one atomic
    /// store. The run-wide `engine.cache.*` registry counters are
    /// monotonic and unaffected — only this context's
    /// [`AnalysisCtx::stats`] view moves.
    pub fn reset_stats(&self) {
        self.local.store(0, Ordering::Relaxed);
    }

    /// When bypassing, every query computes a fresh set and neither
    /// reads nor populates the cache — the uncached baseline the
    /// `--timings` speedup is measured against. Toggles are journaled
    /// as [`EventKind::CacheBypass`] events.
    pub fn set_bypass(&self, on: bool) {
        let was = self.bypass.swap(on, Ordering::SeqCst);
        if was != on {
            self.registry.emit(Event::new(EventKind::CacheBypass).detail(if on {
                "cache bypass enabled"
            } else {
                "cache bypass disabled"
            }));
        }
    }

    fn bypass(&self) -> bool {
        self.bypass.load(Ordering::SeqCst)
    }

    /// Chaos injection: sleep `stall` before every uncached unit
    /// materialization on the budgeted composition paths (zero
    /// disables). Deterministic harnesses use this to make slow slot
    /// builds — and therefore `DeadlineExceeded` — reachable on
    /// demand; the unbudgeted hot path never consults it.
    pub fn set_compose_stall(&self, stall: Duration) {
        self.compose_stall_us.store(stall.as_micros() as u64, Ordering::SeqCst);
    }

    fn chaos_stall(&self) {
        let us = self.compose_stall_us.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

impl<S: ActiveSet> DailyWindows for AnalysisCtx<S> {
    type Set = S;

    fn num_days(&self) -> usize {
        self.daily.num_days
    }

    fn union(&self, days: Range<usize>) -> Arc<S> {
        self.day_window(days)
    }
}

impl<S: ActiveSet> WeeklyWindows for AnalysisCtx<S> {
    type Set = S;

    fn num_weeks(&self) -> usize {
        self.weekly.num_weeks
    }

    fn union(&self, weeks: Range<usize>) -> Arc<S> {
        self.week_window(weeks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DailyDatasetBuilder, WeeklyDatasetBuilder};
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn ctx() -> AnalysisCtx {
        let mut d = DailyDatasetBuilder::new(5);
        d.record_hits(0, a("10.0.0.1"), 3);
        d.record_hits(2, a("10.0.0.2"), 1);
        d.record_hits(4, a("10.0.1.7"), 9);
        let mut w = WeeklyDatasetBuilder::new(4);
        w.record_week(0, a("10.0.0.1"), 2);
        w.record_week(3, a("10.0.2.8"), 5);
        AnalysisCtx::new(Arc::new(d.finish()), Arc::new(w.finish()))
    }

    #[test]
    fn window_slots_are_unique_and_in_bounds() {
        for d_max in [1usize, 2, 5, 52, 112] {
            let mut seen = vec![false; d_max * (d_max + 1) / 2];
            for s in 0..d_max {
                for e in s + 1..=d_max {
                    let idx = window_slot(d_max, s, e);
                    assert!(!seen[idx], "slot collision at {s}..{e} (d_max {d_max})");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "unused slots with d_max {d_max}");
        }
    }

    #[test]
    fn memoizes_by_identity_and_counts_hits() {
        let ctx = ctx();
        let first = ctx.day_window(0..5);
        let again = ctx.day_window(0..5);
        assert!(Arc::ptr_eq(&first, &again), "second query must share the first set");
        // Composition is uncounted: the cold query is exactly 1 miss
        // (however many day sets it materialized internally), the
        // repeat exactly 1 hit.
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(*first, ctx.daily().window_union_as(0..5));
    }

    #[test]
    fn composed_windows_reuse_cached_day_sets() {
        let ctx = ctx();
        for d in 0..5 {
            ctx.day_set(d); // warm every day slot: 5 misses
        }
        ctx.reset_stats();
        let window = ctx.day_window(1..4);
        // The composed miss reads the warmed day slots uncounted: the
        // public ledger sees exactly the one window query.
        assert_eq!(ctx.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(*window, ctx.daily().window_union_as(1..4));
        // Day slots were shared, not recomputed: querying one now is
        // a hit on the same Arc the composition consumed.
        let day = ctx.day_set(2);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1 });
        assert!(day.len() <= window.len());
    }

    #[test]
    fn composed_windows_reuse_cached_sub_windows() {
        let ctx = ctx();
        ctx.day_window(0..2);
        ctx.day_window(2..4);
        ctx.reset_stats();
        // 0..5 decomposes into the two cached halves plus day 4; the
        // result must still equal a fresh full-range union, and the
        // ledger still sees one miss.
        let window = ctx.day_window(0..5);
        assert_eq!(ctx.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(*window, ctx.daily().window_union_as(0..5));
    }

    #[test]
    fn one_day_windows_share_the_day_set_slot() {
        let ctx = ctx();
        let via_window = ctx.day_window(2..3);
        let via_day = ctx.day_set(2);
        assert!(Arc::ptr_eq(&via_window, &via_day));
        assert_eq!(ctx.stats().misses, 1);
    }

    #[test]
    fn weekly_queries_match_fresh_computation() {
        let ctx = ctx();
        assert_eq!(*ctx.week_set(3), ctx.weekly().week_set_as(3));
        assert_eq!(*ctx.week_window(0..4), ctx.weekly().window_union_as(0..4));
        assert_eq!(*ctx.week_window(1..2), ctx.weekly().week_set_as(1));
    }

    #[test]
    fn bypass_computes_fresh_and_leaves_the_cache_cold() {
        let ctx = ctx();
        ctx.set_bypass(true);
        let x = ctx.day_window(0..5);
        let y = ctx.day_window(0..5);
        assert!(!Arc::ptr_eq(&x, &y), "bypass must not share results");
        assert_eq!(x, y, "...but they are still equal");
        assert_eq!(ctx.stats(), CacheStats::default());
        ctx.set_bypass(false);
        ctx.day_window(0..5);
        assert_eq!(ctx.stats().misses, 1, "bypass must not have populated the cache");
    }

    #[test]
    fn registry_counters_mirror_stats_and_survive_reset() {
        use ipactive_obs::SnapshotMode;
        let reg = Registry::new();
        let mut d = DailyDatasetBuilder::new(5);
        d.record_hits(0, a("10.0.0.1"), 3);
        let mut w = WeeklyDatasetBuilder::new(4);
        w.record_week(0, a("10.0.0.1"), 2);
        let ctx: AnalysisCtx =
            AnalysisCtx::new_with_obs(Arc::new(d.finish()), Arc::new(w.finish()), &reg);
        ctx.day_window(0..5);
        ctx.day_window(0..5);
        ctx.week_set(1);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 2 });
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("engine.cache.hit"), 1);
        assert_eq!(snap.counter("engine.cache.miss"), 2);
        assert_eq!(snap.gauge("engine.days"), 5);
        assert_eq!(snap.gauge("engine.weeks"), 4);

        // reset_stats rewinds the view, never the run-wide counters.
        ctx.reset_stats();
        assert_eq!(ctx.stats(), CacheStats::default());
        ctx.day_window(0..5);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 0 });
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("engine.cache.hit"), 2, "registry counter stays monotonic");

        // Bypass transitions (not repeats) are journaled.
        ctx.set_bypass(true);
        ctx.set_bypass(true);
        ctx.set_bypass(false);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.events_of(EventKind::CacheBypass).count(), 2);
    }

    #[test]
    fn stats_snapshots_never_tear_under_concurrent_traffic() {
        // Regression for the old two-read reset/stats pair: hammer one
        // cached key from many threads while a reader snapshots; every
        // snapshot must decode to totals consistent with the traffic
        // so far (hits can never exceed queries issued, and the final
        // tally is exact).
        let ctx = Arc::new(ctx());
        ctx.day_set(0); // 1 miss, slot warm
        const THREADS: usize = 8;
        const QUERIES: usize = 200;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let ctx = Arc::clone(&ctx);
                scope.spawn(move || {
                    for _ in 0..QUERIES {
                        ctx.day_set(0);
                    }
                });
            }
            for _ in 0..100 {
                let s = ctx.stats();
                assert!(s.misses == 1, "exactly one computation ever: {s:?}");
                assert!(s.hits <= (THREADS * QUERIES) as u64);
            }
        });
        assert_eq!(
            ctx.stats(),
            CacheStats { hits: (THREADS * QUERIES) as u64, misses: 1 },
            "totals are a pure function of the query set"
        );
        ctx.reset_stats();
        assert_eq!(ctx.stats(), CacheStats::default());
    }

    #[test]
    fn trait_paths_route_through_the_cache() {
        let ctx = ctx();
        let via_trait = DailyWindows::union(&ctx, 1..4);
        let direct = ctx.day_window(1..4);
        assert!(Arc::ptr_eq(&via_trait, &direct));
        assert_eq!(DailyWindows::num_days(&ctx), 5);
        assert_eq!(WeeklyWindows::num_weeks(&ctx), 4);
        let wk = WeeklyWindows::union(&ctx, 0..2);
        assert!(Arc::ptr_eq(&wk, &ctx.week_window(0..2)));
    }

    /// Grows the 5-day context's dataset by appending a day and
    /// rebuilding from the same record prefix.
    fn grown_datasets() -> (Arc<DailyDataset>, Arc<WeeklyDataset>) {
        let mut d = DailyDatasetBuilder::new(6);
        d.record_hits(0, a("10.0.0.1"), 3);
        d.record_hits(2, a("10.0.0.2"), 1);
        d.record_hits(4, a("10.0.1.7"), 9);
        d.record_hits(5, a("10.0.3.3"), 4); // the appended day
        let mut w = WeeklyDatasetBuilder::new(4);
        w.record_week(0, a("10.0.0.1"), 2);
        w.record_week(3, a("10.0.2.8"), 5);
        (Arc::new(d.finish()), Arc::new(w.finish()))
    }

    #[test]
    fn extended_from_carries_cached_slots_by_identity() {
        let prev = ctx();
        let d0 = prev.day_set(0);
        let w03 = prev.day_window(0..3);
        let wk = prev.week_window(0..4);
        let (daily, weekly) = grown_datasets();
        let next = AnalysisCtx::extended_from(&prev, daily, weekly, &Registry::new());
        // Carried slots hand out the very same Arcs — a hit, not a
        // recomputation, and shared with readers of the old epoch.
        next.reset_stats();
        assert!(Arc::ptr_eq(&next.day_set(0), &d0));
        assert!(Arc::ptr_eq(&next.day_window(0..3), &w03));
        assert!(Arc::ptr_eq(&next.week_window(0..4), &wk));
        assert_eq!(ctx_stats_misses(&next), 0, "carried slots must all hit");
        // Windows touching the new day compose fresh and match a
        // batch-built context byte for byte.
        let grown = next.day_window(0..6);
        let (daily2, weekly2) = grown_datasets();
        let batch: AnalysisCtx = AnalysisCtx::new(daily2, weekly2);
        assert_eq!(*grown, *batch.day_window(0..6));
        assert_eq!(*next.day_window(0..3), *batch.day_window(0..3));
    }

    fn ctx_stats_misses(ctx: &AnalysisCtx) -> u64 {
        ctx.stats().misses
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn extended_from_rejects_shrinking_datasets() {
        let (daily, weekly) = grown_datasets();
        let big: AnalysisCtx = AnalysisCtx::new(daily, weekly);
        let small = ctx();
        let _ = AnalysisCtx::extended_from(
            &big,
            small.daily().clone(),
            small.weekly().clone(),
            &Registry::new(),
        );
    }

    #[test]
    fn budgeted_queries_match_unbudgeted_and_cache_normally() {
        let ctx = ctx();
        let budget = QueryBudget::unlimited();
        let set = ctx.day_window_within(0..5, &budget).expect("unlimited budget");
        assert_eq!(*set, ctx.daily().window_union_as(0..5));
        // The budgeted miss populated the shared slot: the unbudgeted
        // query now hits the same Arc.
        assert!(Arc::ptr_eq(&set, &ctx.day_window(0..5)));
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1 });
        let wk = ctx.week_window_within(0..4, &budget).unwrap();
        assert_eq!(*wk, ctx.weekly().window_union_as(0..4));
        // Empty and one-unit windows stay budget-exempt when cached.
        assert!(ctx.day_window_within(0..0, &budget).unwrap().is_empty());
    }

    #[test]
    fn expired_budget_returns_partial_progress_provenance() {
        let ctx = ctx();
        let spent = QueryBudget::within(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(spent.expired());
        let err = ctx.day_window_within(0..5, &spent).unwrap_err();
        assert_eq!(err, DeadlineExceeded { units_done: 0, units_total: 5 });
        // Nothing was cached by the failed query.
        assert_eq!(ctx.stats(), CacheStats::default());
        // An uncached single unit is also charged.
        let err = ctx.day_window_within(2..3, &spent).unwrap_err();
        assert_eq!(err.units_total, 1);
        // ...but a cached answer is free even over budget.
        ctx.day_window(0..5);
        ctx.day_set(2);
        assert!(ctx.day_window_within(0..5, &spent).is_ok());
        assert!(ctx.day_window_within(2..3, &spent).is_ok());
        assert!(ctx.week_window_within(0..4, &spent).is_err());
    }

    #[test]
    fn compose_stall_makes_midflight_deadlines_reachable() {
        let ctx = ctx();
        // 5 uncached units at ≥2ms each against a ~3ms budget: the
        // deadline fires at a slot boundary strictly inside the
        // window, so the provenance shows genuine partial progress.
        ctx.set_compose_stall(Duration::from_millis(2));
        let budget = QueryBudget::within(Duration::from_millis(3));
        match ctx.day_window_within(0..5, &budget) {
            Err(err) => {
                assert!(err.units_total == 5);
                assert!(err.units_done < 5, "stall must abort before the window completes");
            }
            // On a heavily loaded machine the budget may survive the
            // stalls; the query must then be exact.
            Ok(set) => assert_eq!(*set, ctx.daily().window_union_as(0..5)),
        }
        ctx.set_compose_stall(Duration::ZERO);
        let set = ctx.day_window_within(0..5, &QueryBudget::unlimited()).unwrap();
        assert_eq!(*set, ctx.daily().window_union_as(0..5));
    }
}
