//! Passive (CDN) versus active (ICMP) visibility — Section 3,
//! Figure 2.

use ipactive_bgp::{Asn, RoutingTable};
use ipactive_net::{ActiveSet, Block24};
use std::collections::HashSet;

#[cfg(test)]
use ipactive_net::AddrSet;

/// A three-way split of observed entities (Figure 2(a)'s bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VisibilitySplit {
    /// Seen by the CDN only.
    pub cdn_only: usize,
    /// Seen by both the CDN and ICMP scans.
    pub both: usize,
    /// Seen in ICMP scans only.
    pub icmp_only: usize,
}

impl VisibilitySplit {
    /// Total entities seen by either method.
    pub fn total(&self) -> usize {
        self.cdn_only + self.both + self.icmp_only
    }

    /// Fraction of the combined population seen only by the CDN —
    /// the paper's ">40% of addresses invisible to ICMP" number.
    pub fn cdn_only_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.cdn_only as f64 / self.total() as f64
        }
    }

    /// Fraction seen only by ICMP.
    pub fn icmp_only_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.icmp_only as f64 / self.total() as f64
        }
    }
}

/// Address-level visibility split.
///
/// ```
/// use ipactive_core::visibility::split_addrs;
/// use ipactive_net::AddrSet;
/// let cdn: AddrSet = ["10.0.0.1", "10.0.0.2"].iter().map(|s| s.parse().unwrap()).collect();
/// let icmp: AddrSet = ["10.0.0.2", "10.0.0.3"].iter().map(|s| s.parse().unwrap()).collect();
/// let s = split_addrs(&cdn, &icmp);
/// assert_eq!((s.cdn_only, s.both, s.icmp_only), (1, 1, 1));
/// ```
pub fn split_addrs<S: ActiveSet>(cdn: &S, icmp: &S) -> VisibilitySplit {
    let both = cdn.intersect_len(icmp);
    VisibilitySplit {
        cdn_only: cdn.len() - both,
        both,
        icmp_only: icmp.len() - both,
    }
}

/// `/24`-level visibility split (an entity is "seen" when any of its
/// addresses is).
pub fn split_blocks<S: ActiveSet>(cdn: &S, icmp: &S) -> VisibilitySplit {
    let cb: HashSet<Block24> = cdn.blocks24().into_iter().collect();
    let ib: HashSet<Block24> = icmp.blocks24().into_iter().collect();
    let both = cb.intersection(&ib).count();
    VisibilitySplit { cdn_only: cb.len() - both, both, icmp_only: ib.len() - both }
}

/// Routed-prefix-level split: an announced prefix is "seen" by a
/// method if any of that method's addresses falls inside it.
pub fn split_prefixes<S: ActiveSet>(cdn: &S, icmp: &S, table: &RoutingTable) -> VisibilitySplit {
    let mut split = VisibilitySplit::default();
    for route in table.routes() {
        let c = cdn.any_in(route.prefix);
        let i = icmp.any_in(route.prefix);
        match (c, i) {
            (true, true) => split.both += 1,
            (true, false) => split.cdn_only += 1,
            (false, true) => split.icmp_only += 1,
            (false, false) => {}
        }
    }
    split
}

/// AS-level split via origin lookup.
pub fn split_ases<S: ActiveSet>(cdn: &S, icmp: &S, table: &RoutingTable) -> VisibilitySplit {
    let collect = |set: &S| -> HashSet<Asn> {
        let mut out = HashSet::new();
        // One lookup per touched /24 is enough: origins are uniform
        // below /24 in any realistic table, and both sets aggregate
        // identically so the comparison stays fair.
        for block in set.blocks24() {
            if let Some(asn) = table.origin_of(block.network()) {
                out.insert(asn);
            }
        }
        out
    };
    let ca = collect(cdn);
    let ia = collect(icmp);
    let both = ca.intersection(&ia).count();
    VisibilitySplit { cdn_only: ca.len() - both, both, icmp_only: ia.len() - both }
}

/// Capture/recapture estimate of the *total* active population from
/// the CDN and ICMP sightings (see [`crate::stats::chapman`]): the
/// two methods are treated as independent captures, so addresses
/// invisible to both can be extrapolated — the paper's nod to Zander
/// et al.'s statistical estimates.
///
/// Returns `None` when either sample is empty. Note the independence
/// assumption is violated in practice (NAT hides hosts from ICMP in a
/// correlated way), which biases the estimate up — the paper makes the
/// same caveat about all capture/recapture address censuses.
pub fn estimate_population<S: ActiveSet>(cdn: &S, icmp: &S) -> Option<f64> {
    if cdn.is_empty() || icmp.is_empty() {
        return None;
    }
    let overlap = cdn.intersect_len(icmp) as u64;
    Some(crate::stats::chapman(cdn.len() as u64, icmp.len() as u64, overlap))
}

/// Classification of ICMP-only addresses (Figure 2(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IcmpOnlyClasses {
    /// Answering an application service only.
    pub server: usize,
    /// Appearing in traceroutes *and* answering a service.
    pub server_router: usize,
    /// Appearing in traceroutes only.
    pub router: usize,
    /// Neither: unused, non-web-active, or infrastructure we can't see.
    pub unknown: usize,
}

impl IcmpOnlyClasses {
    /// Total classified addresses.
    pub fn total(&self) -> usize {
        self.server + self.server_router + self.router + self.unknown
    }

    /// Fraction attributable to server or router infrastructure.
    pub fn infrastructure_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.server + self.server_router + self.router) as f64 / self.total() as f64
        }
    }
}

/// Classifies the ICMP-only population against port-scan (`servers`)
/// and traceroute (`routers`) observations.
pub fn classify_icmp_only<S: ActiveSet>(
    icmp_only: &S,
    servers: &S,
    routers: &S,
) -> IcmpOnlyClasses {
    let mut out = IcmpOnlyClasses::default();
    for addr in icmp_only.iter() {
        match (servers.contains(addr), routers.contains(addr)) {
            (true, true) => out.server_router += 1,
            (true, false) => out.server += 1,
            (false, true) => out.router += 1,
            (false, false) => out.unknown += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_net::Addr;

    fn set(addrs: &[&str]) -> AddrSet {
        addrs.iter().map(|s| s.parse::<Addr>().unwrap()).collect()
    }

    #[test]
    fn addr_split_counts() {
        let cdn = set(&["10.0.0.1", "10.0.0.2", "10.0.0.3"]);
        let icmp = set(&["10.0.0.3", "10.0.0.4"]);
        let s = split_addrs(&cdn, &icmp);
        assert_eq!(s, VisibilitySplit { cdn_only: 2, both: 1, icmp_only: 1 });
        assert_eq!(s.total(), 4);
        assert!((s.cdn_only_fraction() - 0.5).abs() < 1e-12);
        assert!((s.icmp_only_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn block_split_aggregates() {
        // Different addrs of the same /24 seen by each method → "both".
        let cdn = set(&["10.0.0.1", "10.0.1.1"]);
        let icmp = set(&["10.0.0.200", "10.0.2.1"]);
        let s = split_blocks(&cdn, &icmp);
        assert_eq!(s, VisibilitySplit { cdn_only: 1, both: 1, icmp_only: 1 });
    }

    #[test]
    fn incongruity_shrinks_with_aggregation() {
        // The paper's headline: NAT'd clients make the IP-level CDN-only
        // share large, but the same /24s are often visible to both.
        let cdn = set(&["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"]);
        let icmp = set(&["10.0.0.4"]); // only the NAT gateway answers
        let ip = split_addrs(&cdn, &icmp);
        let blocks = split_blocks(&cdn, &icmp);
        assert!(ip.cdn_only_fraction() > blocks.cdn_only_fraction());
        assert_eq!(blocks.cdn_only_fraction(), 0.0);
    }

    #[test]
    fn prefix_and_as_splits() {
        let mut table = RoutingTable::new();
        table.announce("10.0.0.0/16".parse().unwrap(), Asn(1));
        table.announce("20.0.0.0/16".parse().unwrap(), Asn(2));
        table.announce("30.0.0.0/16".parse().unwrap(), Asn(3));
        let cdn = set(&["10.0.0.1", "20.0.0.1"]);
        let icmp = set(&["20.0.9.9", "30.0.0.1"]);
        let p = split_prefixes(&cdn, &icmp, &table);
        assert_eq!(p, VisibilitySplit { cdn_only: 1, both: 1, icmp_only: 1 });
        let a = split_ases(&cdn, &icmp, &table);
        assert_eq!(a, VisibilitySplit { cdn_only: 1, both: 1, icmp_only: 1 });
    }

    #[test]
    fn icmp_only_classification() {
        let icmp_only = set(&["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"]);
        let servers = set(&["10.0.0.1", "10.0.0.2"]);
        let routers = set(&["10.0.0.2", "10.0.0.3"]);
        let c = classify_icmp_only(&icmp_only, &servers, &routers);
        assert_eq!(c.server, 1);
        assert_eq!(c.server_router, 1);
        assert_eq!(c.router, 1);
        assert_eq!(c.unknown, 1);
        assert_eq!(c.total(), 4);
        assert!((c.infrastructure_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn population_estimate_extrapolates_hidden_addresses() {
        // 100 CDN addresses, 50 ICMP addresses, 25 overlap → Chapman
        // estimates ~198 total: more than either sighting saw.
        let cdn: AddrSet =
            (0u32..100).map(|i| Addr::new(0x0A000000 + i)).collect();
        let icmp: AddrSet =
            (75u32..125).map(|i| Addr::new(0x0A000000 + i)).collect();
        let est = estimate_population(&cdn, &icmp).unwrap();
        assert!(est > 190.0 && est < 210.0, "estimate {est}");
        assert!(est > cdn.union(&icmp).len() as f64);
        assert!(estimate_population(&AddrSet::new(), &icmp).is_none());
    }

    #[test]
    fn empty_sets_are_harmless() {
        let empty = AddrSet::new();
        let s = split_addrs(&empty, &empty);
        assert_eq!(s.total(), 0);
        assert_eq!(s.cdn_only_fraction(), 0.0);
        let c = classify_icmp_only(&empty, &empty, &empty);
        assert_eq!(c.total(), 0);
    }
}
