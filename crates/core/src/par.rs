//! Deterministic intra-figure parallelism.
//!
//! The figure kernels split their dominant loops (window pairs, block
//! ranges, weeks) into *chunk-range subtasks*. The partition is a pure
//! function of the problem size — [`chunk_count`] and [`chunk_range`]
//! never consult thread counts or timing — so a kernel produces the
//! same chunk results in the same order whether the chunks run on one
//! thread or sixteen. Threads only decide *who* computes a chunk,
//! never *what* the chunks are.
//!
//! [`Parallelism`] is a shared token budget: the figure scheduler in
//! the bench crate hands each figure worker a clone, and a kernel
//! spawns a scoped helper thread per token it can grab. With zero
//! tokens (the serial baseline, or a machine with no spare cores) the
//! calling thread simply works through the chunks itself.

use std::ops::Range;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Hard cap on subtasks per kernel invocation; bounds scheduling
/// overhead without affecting results (the partition is still pure).
pub const MAX_SUBTASKS: usize = 16;

/// Number of chunk-range subtasks a loop of `n` items splits into.
///
/// Pure in `n` and `min_chunk`: `1` when the loop is too small to be
/// worth splitting (fewer than two minimum-size chunks), otherwise
/// `⌊n / min_chunk⌋` capped at [`MAX_SUBTASKS`].
pub fn chunk_count(n: usize, min_chunk: usize) -> usize {
    let min_chunk = min_chunk.max(1);
    if n < 2 * min_chunk {
        1
    } else {
        (n / min_chunk).min(MAX_SUBTASKS)
    }
}

/// The half-open item range of chunk `i` of `k` over `n` items: the
/// standard balanced partition `[i·n/k, (i+1)·n/k)`.
pub fn chunk_range(n: usize, k: usize, i: usize) -> Range<usize> {
    debug_assert!(i < k);
    i * n / k..(i + 1) * n / k
}

/// A shared budget of helper-thread tokens.
///
/// Cloning shares the budget (all clones draw from the same pool), so
/// concurrently running figures compete for the same spare cores
/// instead of oversubscribing the machine. A budget of zero tokens
/// degrades every [`Parallelism::run`] into a serial loop over the
/// same chunks.
#[derive(Debug, Clone)]
pub struct Parallelism(Arc<AtomicIsize>);

impl Default for Parallelism {
    fn default() -> Self {
        Self::serial()
    }
}

impl Parallelism {
    /// A budget with no helper tokens: chunks all run on the caller.
    pub fn serial() -> Self {
        Parallelism(Arc::new(AtomicIsize::new(0)))
    }

    /// A budget of `tokens` helper threads shared by all clones.
    pub fn new(tokens: usize) -> Self {
        Parallelism(Arc::new(AtomicIsize::new(tokens as isize)))
    }

    /// Returns `tokens` to the pool (used by the figure scheduler when
    /// a whole worker retires and its core frees up).
    pub fn release_tokens(&self, tokens: usize) {
        self.0.fetch_add(tokens as isize, Ordering::SeqCst);
    }

    fn try_acquire(&self) -> bool {
        self.0
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                if v > 0 {
                    Some(v - 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Acquires one token as an RAII guard, or `None` when the pool is
    /// empty. The token returns to the pool when the guard drops — on
    /// every exit path, including unwinding out of a panicking kernel,
    /// so a caught panic can never permanently shrink the shared
    /// budget.
    fn acquire_guard(&self) -> Option<TokenGuard> {
        if self.try_acquire() {
            Some(TokenGuard(self.clone()))
        } else {
            None
        }
    }

    /// Runs `f` over every chunk of `0..n` and returns the chunk
    /// results in chunk order.
    ///
    /// The partition comes from [`chunk_count`]/[`chunk_range`] alone;
    /// helper threads (at most one per available token, returned to
    /// the pool as each helper exits) only steal whole chunks off a
    /// shared counter. `f` must be a pure function of its range for
    /// the caller to get deterministic output — which is exactly what
    /// the figure kernels provide.
    pub fn run<R, F>(&self, n: usize, min_chunk: usize, f: F) -> Vec<R>
    where
        R: Send + Sync,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let k = chunk_count(n, min_chunk);
        if k <= 1 {
            return vec![f(0..n)];
        }
        let slots: Vec<OnceLock<R>> = (0..k).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        // Claim a chunk off the shared counter, compute it, repeat.
        let drain = |first: usize| {
            let mut i = first;
            while i < k {
                let computed = f(chunk_range(n, k, i));
                let _ = slots[i].set(computed);
                i = next.fetch_add(1, Ordering::Relaxed);
            }
        };
        std::thread::scope(|scope| {
            // Recruit one helper per free token, capped so an idle
            // pool never spawns more workers than chunks. The caller
            // counts as one worker and drains alongside them.
            let mut helpers = 1usize;
            while helpers < k {
                let Some(token) = self.acquire_guard() else { break };
                helpers += 1;
                let (next_ref, drain_ref) = (&next, &drain);
                scope.spawn(move || {
                    // Hold the token for the helper's lifetime; the
                    // guard returns it even if `f` panics mid-chunk
                    // and the panic unwinds through `drain`.
                    let _token = token;
                    drain_ref(next_ref.fetch_add(1, Ordering::Relaxed));
                });
            }
            drain(next.fetch_add(1, Ordering::Relaxed));
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every chunk ran to completion"))
            .collect()
    }
}

/// RAII ownership of one helper token; returns it on drop.
struct TokenGuard(Parallelism);

impl Drop for TokenGuard {
    fn drop(&mut self) {
        self.0.release_tokens(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_is_pure_and_bounded() {
        assert_eq!(chunk_count(0, 8), 1);
        assert_eq!(chunk_count(15, 8), 1); // < 2 chunks of 8
        assert_eq!(chunk_count(16, 8), 2);
        assert_eq!(chunk_count(100, 8), 12);
        assert_eq!(chunk_count(10_000, 8), MAX_SUBTASKS);
        assert_eq!(chunk_count(5, 0), 5); // min_chunk clamps to 1
    }

    #[test]
    fn chunk_ranges_tile_the_input_exactly() {
        for n in [1usize, 7, 16, 100, 1001] {
            for min_chunk in [1usize, 8, 64] {
                let k = chunk_count(n, min_chunk);
                let mut covered = 0usize;
                for i in 0..k {
                    let r = chunk_range(n, k, i);
                    assert_eq!(r.start, covered, "n={n} k={k} i={i}");
                    covered = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn serial_and_parallel_budgets_agree() {
        let square_sums = |pool: &Parallelism| -> Vec<u64> {
            pool.run(1000, 8, |r| r.map(|i| (i * i) as u64).sum())
        };
        let serial = square_sums(&Parallelism::serial());
        let parallel = square_sums(&Parallelism::new(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), chunk_count(1000, 8));
        let total: u64 = serial.iter().sum();
        let expect: u64 = (0..1000u64).map(|i| i * i).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn tokens_are_returned_when_helpers_retire() {
        let pool = Parallelism::new(3);
        for _ in 0..5 {
            let out = pool.run(640, 8, |r| r.len());
            assert_eq!(out.iter().sum::<usize>(), 640);
        }
        // All three tokens must be back: acquire them explicitly.
        assert!(pool.try_acquire() && pool.try_acquire() && pool.try_acquire());
        assert!(!pool.try_acquire());
        pool.release_tokens(3);
    }

    /// Payload type for the injected panic below; the quiet hook
    /// suppresses exactly this type, so it can never hide a genuine
    /// failure from another test in the binary.
    struct InjectedChunkPanic;

    fn quiet_injected_panics() {
        static INSTALL: std::sync::Once = std::sync::Once::new();
        INSTALL.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<InjectedChunkPanic>().is_none() {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn panicking_kernel_does_not_leak_helper_tokens() {
        // Regression: helper tokens used to be released by straight-
        // line code after the drain, so a panic unwinding out of `f`
        // skipped the release and permanently shrank the shared pool.
        quiet_injected_panics();
        let pool = Parallelism::new(3);
        for round in 0..4 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(640, 8, |r| {
                    if r.contains(&320) {
                        std::panic::panic_any(InjectedChunkPanic);
                    }
                    r.len()
                })
            }));
            assert!(caught.is_err(), "round {round}: the injected panic must propagate");
            // Every token must be back in the pool after the unwind.
            assert!(
                pool.try_acquire() && pool.try_acquire() && pool.try_acquire(),
                "round {round}: panic leaked a helper token"
            );
            assert!(!pool.try_acquire());
            pool.release_tokens(3);
        }
        // And the pool still runs healthy kernels afterwards.
        let out = pool.run(640, 8, |r| r.len());
        assert_eq!(out.iter().sum::<usize>(), 640);
    }

    #[test]
    fn small_inputs_run_as_one_chunk() {
        let pool = Parallelism::new(8);
        let out = pool.run(3, 8, |r| r.collect::<Vec<_>>());
        assert_eq!(out, vec![vec![0, 1, 2]]);
    }
}
