//! The long-run growth timeline (Section 2, Figure 1): monthly active
//! IPv4 address counts, the pre-2014 linear fit, and stagnation
//! detection.

use crate::stats::LinearFit;
use ipactive_rir::YearMonth;

/// One monthly observation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GrowthPoint {
    /// The month.
    pub month: YearMonth,
    /// Unique active IPv4 addresses observed that month.
    pub active: u64,
}

/// Fits the linear pre-stagnation trend (paper: regression until
/// 2014-01) over months strictly before `until`.
pub fn fit_until(points: &[GrowthPoint], until: YearMonth) -> Option<LinearFit> {
    let origin = points.first()?.month;
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.month < until)
        .map(|p| (p.month.months_since(origin) as f64, p.active as f64))
        .collect();
    LinearFit::fit(&pts)
}

/// Shortfall of the measured count versus the linear extrapolation at
/// `at`, as a fraction of the extrapolated value (positive =
/// stagnation gap).
pub fn stagnation_gap(
    points: &[GrowthPoint],
    fit: &LinearFit,
    at: YearMonth,
) -> Option<f64> {
    let origin = points.first()?.month;
    let measured = points.iter().find(|p| p.month == at)?.active as f64;
    let predicted = fit.predict(at.months_since(origin) as f64);
    if predicted <= 0.0 {
        return None;
    }
    Some((predicted - measured) / predicted)
}

/// Detects the onset of stagnation: the first month after `min_history`
/// months where the trailing 12-month mean growth rate falls below
/// `frac` of the fitted pre-period slope — and never recovers above it.
///
/// Returns `None` if growth never stagnates.
pub fn detect_stagnation(
    points: &[GrowthPoint],
    fit: &LinearFit,
    frac: f64,
    min_history: usize,
) -> Option<YearMonth> {
    assert!((0.0..1.0).contains(&frac));
    if points.len() < min_history + 13 {
        return None;
    }
    let threshold = fit.slope * frac;
    // Trailing 12-month mean growth at index i.
    let rate = |i: usize| (points[i].active as f64 - points[i - 12].active as f64) / 12.0;
    let mut onset: Option<usize> = None;
    for i in min_history.max(12)..points.len() {
        if rate(i) < threshold {
            onset.get_or_insert(i);
        } else {
            onset = None; // recovered: not yet true stagnation
        }
    }
    onset.map(|i| points[i].month)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic Figure 1: linear 2008–2013, flat 2014 onwards.
    fn curve() -> Vec<GrowthPoint> {
        let start = YearMonth::new(2008, 1);
        let mut out = Vec::new();
        for m in 0..96u32 {
            let month = start.plus_months(m);
            let active = if month < YearMonth::new(2014, 1) {
                250_000_000 + 8_000_000 * m as u64
            } else {
                let base = 250_000_000 + 8_000_000 * 72u64;
                base + 200_000 * (m as u64 - 72)
            };
            out.push(GrowthPoint { month, active });
        }
        out
    }

    #[test]
    fn fit_recovers_linear_phase() {
        let pts = curve();
        let fit = fit_until(&pts, YearMonth::new(2014, 1)).unwrap();
        assert!((fit.slope - 8_000_000.0).abs() < 1.0);
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn stagnation_gap_grows_over_time() {
        let pts = curve();
        let fit = fit_until(&pts, YearMonth::new(2014, 1)).unwrap();
        let g2014 = stagnation_gap(&pts, &fit, YearMonth::new(2014, 12)).unwrap();
        let g2015 = stagnation_gap(&pts, &fit, YearMonth::new(2015, 12)).unwrap();
        assert!(g2014 > 0.05, "gap 2014 = {g2014}");
        assert!(g2015 > g2014);
        // Before stagnation the gap is ~0.
        let g2013 = stagnation_gap(&pts, &fit, YearMonth::new(2013, 6)).unwrap();
        assert!(g2013.abs() < 0.01);
    }

    #[test]
    fn detects_2014_onset() {
        let pts = curve();
        let fit = fit_until(&pts, YearMonth::new(2014, 1)).unwrap();
        let onset = detect_stagnation(&pts, &fit, 0.5, 24).unwrap();
        // Trailing window blurs the edge; onset must land in 2014.
        assert_eq!(onset.year, 2014);
    }

    #[test]
    fn no_stagnation_on_pure_linear_growth() {
        let start = YearMonth::new(2008, 1);
        let pts: Vec<GrowthPoint> = (0..96u32)
            .map(|m| GrowthPoint {
                month: start.plus_months(m),
                active: 250_000_000 + 8_000_000 * m as u64,
            })
            .collect();
        let fit = fit_until(&pts, YearMonth::new(2014, 1)).unwrap();
        assert!(detect_stagnation(&pts, &fit, 0.5, 24).is_none());
    }

    #[test]
    fn short_series_yields_none() {
        let pts = &curve()[..10];
        let fit = fit_until(pts, YearMonth::new(2014, 1)).unwrap();
        assert!(detect_stagnation(pts, &fit, 0.5, 24).is_none());
        assert!(stagnation_gap(pts, &fit, YearMonth::new(2020, 1)).is_none());
        assert!(fit_until(&[], YearMonth::new(2014, 1)).is_none());
    }
}
