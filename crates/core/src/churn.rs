//! Churn in the active address population (Section 4).
//!
//! * [`daily_series`] — Figure 4(a): daily active counts and up/down
//!   events between consecutive days.
//! * [`window_sweep`] — Figure 4(b): min/median/max percentage of
//!   up/down events between consecutive non-overlapping windows, for a
//!   sweep of window sizes.
//! * [`year_drift`] — Figure 4(c): weekly appear/disappear counts
//!   relative to the first snapshot of the year.
//! * [`per_as_churn`] — Figure 5(a): the per-AS distribution of median
//!   up-event percentages.
//! * [`long_term`] — Table 2: appear/disappear between two two-month
//!   unions, block-level bulkiness, and BGP attribution.

use crate::dataset::{DailyDataset, DailyWindows, WeeklyDataset, WeeklyWindows};
use crate::par::Parallelism;
use crate::stats::{Ecdf, MinMedMax};
use ipactive_bgp::{Asn, BgpTimeline};
use ipactive_net::{ActiveSet, AddrSet, Block24};
use std::collections::HashMap;
use std::sync::Arc;

/// One day of Figure 4(a): active count plus events versus the
/// previous day (`up`/`down` are 0 for day 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DayChurn {
    /// Day index.
    pub day: usize,
    /// Addresses active this day.
    pub active: usize,
    /// Addresses active today but not yesterday.
    pub up: usize,
    /// Addresses active yesterday but not today.
    pub down: usize,
}

/// Computes the Figure 4(a) series from the activity matrices.
///
/// ```
/// use ipactive_core::{churn, DailyDatasetBuilder};
/// let mut b = DailyDatasetBuilder::new(3);
/// b.record_hits(0, "10.0.0.1".parse().unwrap(), 5);
/// b.record_hits(1, "10.0.0.1".parse().unwrap(), 5);
/// b.record_hits(1, "10.0.0.2".parse().unwrap(), 1);
/// let series = churn::daily_series(&b.finish());
/// assert_eq!(series[1].up, 1);   // 10.0.0.2 appeared
/// assert_eq!(series[2].down, 2); // both gone on day 2
/// ```
pub fn daily_series(ds: &DailyDataset) -> Vec<DayChurn> {
    let mut out: Vec<DayChurn> = (0..ds.num_days)
        .map(|day| DayChurn { day, active: 0, up: 0, down: 0 })
        .collect();
    for rec in &ds.blocks {
        for bits in rec.rows.iter() {
            if bits.is_empty() {
                continue;
            }
            let mut prev = false;
            for (day, slot) in out.iter_mut().enumerate() {
                let cur = bits.get(day);
                if cur {
                    slot.active += 1;
                }
                if day > 0 {
                    match (prev, cur) {
                        (false, true) => slot.up += 1,
                        (true, false) => slot.down += 1,
                        _ => {}
                    }
                }
                prev = cur;
            }
        }
    }
    out
}

/// [`daily_series`] computed through a [`DailyWindows`] source, with
/// the per-pair intersections split into chunk-range subtasks.
///
/// The day sets are fetched up front in day order (so a memoizing
/// source sees the same query sequence regardless of the subtask
/// schedule); each pair `(d-1, d)` then needs only one
/// [`ActiveSet::intersect_len`], since `up = |D_d| − |D_{d-1} ∩ D_d|`
/// and `down = |D_{d-1}| − |D_{d-1} ∩ D_d|`. Agrees exactly with
/// [`daily_series`] on the underlying dataset.
pub fn daily_series_over<W: DailyWindows>(ds: &W, par: &Parallelism) -> Vec<DayChurn> {
    let n = ds.num_days();
    if n == 0 {
        return Vec::new();
    }
    let sets: Vec<Arc<W::Set>> = (0..n).map(|d| ds.union(d..d + 1)).collect();
    let active: Vec<usize> = sets.iter().map(|s| s.len()).collect();
    let pairs = par.run(n - 1, 8, |range| {
        range
            .map(|k| {
                let d = k + 1;
                let inter = sets[d - 1].intersect_len(&sets[d]);
                (active[d] - inter, active[d - 1] - inter)
            })
            .collect::<Vec<(usize, usize)>>()
    });
    let mut out = vec![DayChurn { day: 0, active: active[0], up: 0, down: 0 }];
    out.extend(pairs.into_iter().flatten().enumerate().map(|(k, (up, down))| {
        DayChurn { day: k + 1, active: active[k + 1], up, down }
    }));
    out
}

/// Mean active addresses per day-of-week (index 0..=6; the universe
/// treats 5 and 6 as the weekend). Figure 4(a)'s weekend dips, made
/// quantitative.
pub fn weekday_profile(ds: &DailyDataset) -> [f64; 7] {
    weekday_profile_from(&daily_series(ds))
}

/// The day-of-week averages of [`weekday_profile`], computed from an
/// already-materialized daily series (so a caller that has the
/// Figure 4(a) series in hand does not scan the matrices twice).
pub fn weekday_profile_from(series: &[DayChurn]) -> [f64; 7] {
    let mut sums = [0f64; 7];
    let mut counts = [0u32; 7];
    for p in series {
        sums[p.day % 7] += p.active as f64;
        counts[p.day % 7] += 1;
    }
    let mut out = [0f64; 7];
    for ((o, &sum), &count) in out.iter_mut().zip(&sums).zip(&counts) {
        *o = if count == 0 { 0.0 } else { sum / count as f64 };
    }
    out
}

/// Churn statistics for one aggregation window size (Figure 4(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowChurn {
    /// Window size in days.
    pub window_days: usize,
    /// Min/median/max percentage of up events across window pairs.
    pub up: MinMedMax,
    /// Min/median/max percentage of down events across window pairs.
    pub down: MinMedMax,
}

/// Raw per-pair percentages for one window size.
fn window_pair_percentages(ds: &DailyDataset, w: usize) -> (Vec<f64>, Vec<f64>) {
    let n_windows = ds.num_days / w;
    // Per window: |union|; per pair: |W_{i+1} \ W_i| and |W_i \ W_{i+1}|.
    let mut sizes = vec![0u64; n_windows];
    let mut ups = vec![0u64; n_windows.saturating_sub(1)];
    let mut downs = vec![0u64; n_windows.saturating_sub(1)];
    for rec in &ds.blocks {
        for bits in rec.rows.iter() {
            if bits.is_empty() {
                continue;
            }
            let mut prev_in = false;
            for i in 0..n_windows {
                let cur_in = bits.any_in_range(i * w, (i + 1) * w);
                if cur_in {
                    sizes[i] += 1;
                }
                if i > 0 {
                    match (prev_in, cur_in) {
                        (false, true) => ups[i - 1] += 1,
                        (true, false) => downs[i - 1] += 1,
                        _ => {}
                    }
                }
                prev_in = cur_in;
            }
        }
    }
    let mut up_pct = Vec::new();
    let mut down_pct = Vec::new();
    for i in 0..n_windows.saturating_sub(1) {
        if sizes[i + 1] > 0 {
            up_pct.push(100.0 * ups[i] as f64 / sizes[i + 1] as f64);
        }
        if sizes[i] > 0 {
            down_pct.push(100.0 * downs[i] as f64 / sizes[i] as f64);
        }
    }
    (up_pct, down_pct)
}

/// Computes Figure 4(b) for the given window sizes (paper: 1..=28).
///
/// Following Section 4.1: for window size `w` the dataset is split
/// into `⌊days/w⌋` non-overlapping windows, each window's activity is
/// the union of its days, the up percentage between windows `i` and
/// `i+1` is `100·|W_{i+1} ∖ W_i| / |W_{i+1}|`, and the down
/// percentage is `100·|W_i ∖ W_{i+1}| / |W_i|`.
pub fn window_sweep(ds: &DailyDataset, window_sizes: &[usize]) -> Vec<WindowChurn> {
    window_sizes
        .iter()
        .filter(|&&w| w >= 1 && ds.num_days / w >= 2)
        .map(|&w| {
            let (up, down) = window_pair_percentages(ds, w);
            // Pairs with an empty denominator window contribute no
            // percentage; a dataset can in principle leave none at all.
            let zero = MinMedMax { min: 0.0, median: 0.0, max: 0.0 };
            WindowChurn {
                window_days: w,
                up: MinMedMax::of(&up).unwrap_or(zero),
                down: MinMedMax::of(&down).unwrap_or(zero),
            }
        })
        .collect()
}

/// Per-pair up/down percentages from materialized window sets: the
/// set-algebra form of the [`window_pair_percentages`] matrix scan,
/// with the pair intersections split into chunk-range subtasks.
fn pair_percentages_from_windows<S: ActiveSet>(
    windows: &[Arc<S>],
    par: &Parallelism,
) -> (Vec<f64>, Vec<f64>) {
    let n_windows = windows.len();
    let sizes: Vec<u64> = windows.iter().map(|w| w.len() as u64).collect();
    let inters: Vec<u64> = par
        .run(n_windows - 1, 4, |range| {
            range
                .map(|i| windows[i].intersect_len(&windows[i + 1]) as u64)
                .collect::<Vec<u64>>()
        })
        .into_iter()
        .flatten()
        .collect();
    let mut up_pct = Vec::new();
    let mut down_pct = Vec::new();
    for i in 0..n_windows - 1 {
        if sizes[i + 1] > 0 {
            up_pct.push(100.0 * (sizes[i + 1] - inters[i]) as f64 / sizes[i + 1] as f64);
        }
        if sizes[i] > 0 {
            down_pct.push(100.0 * (sizes[i] - inters[i]) as f64 / sizes[i] as f64);
        }
    }
    (up_pct, down_pct)
}

/// [`window_sweep`] computed through a [`DailyWindows`] source.
///
/// Each window size fetches its window unions in order (one query per
/// window, so a memoizing source's hit/miss counts stay a pure
/// function of the sweep), then reduces every consecutive pair with a
/// single [`ActiveSet::intersect_len`]: `up = |W_{i+1}| − |W_i ∩
/// W_{i+1}|`, `down = |W_i| − |W_i ∩ W_{i+1}|`. Agrees exactly with
/// [`window_sweep`] on the underlying dataset.
pub fn window_sweep_over<W: DailyWindows>(
    ds: &W,
    window_sizes: &[usize],
    par: &Parallelism,
) -> Vec<WindowChurn> {
    window_sizes
        .iter()
        .filter(|&&w| w >= 1 && ds.num_days() / w >= 2)
        .map(|&w| {
            let n_windows = ds.num_days() / w;
            let windows: Vec<Arc<W::Set>> =
                (0..n_windows).map(|i| ds.union(i * w..(i + 1) * w)).collect();
            let (up, down) = pair_percentages_from_windows(&windows, par);
            let zero = MinMedMax { min: 0.0, median: 0.0, max: 0.0 };
            WindowChurn {
                window_days: w,
                up: MinMedMax::of(&up).unwrap_or(zero),
                down: MinMedMax::of(&down).unwrap_or(zero),
            }
        })
        .collect()
}

/// Extends the Figure 4(b) sweep beyond the daily dataset: the same
/// min/median/max up/down percentages computed over *week*-sized
/// aggregation windows of the weekly dataset (window sizes in weeks).
/// The paper's observation — churn does not decay with aggregation —
/// holds out to month-of-weeks windows.
pub fn weekly_window_sweep(ws: &WeeklyDataset, window_weeks: &[usize]) -> Vec<WindowChurn> {
    let mut out = Vec::new();
    for &w in window_weeks {
        if w == 0 || ws.num_weeks / w < 2 {
            continue;
        }
        let n_windows = ws.num_weeks / w;
        let mut sizes = vec![0u64; n_windows];
        let mut ups = vec![0u64; n_windows - 1];
        let mut downs = vec![0u64; n_windows - 1];
        let window_mask = |i: usize| -> u64 {
            if w >= 64 {
                u64::MAX
            } else {
                ((1u64 << w) - 1) << (i * w)
            }
        };
        for (_, rows) in &ws.blocks {
            for &bits in rows.iter() {
                if bits == 0 {
                    continue;
                }
                let mut prev_in = false;
                for i in 0..n_windows {
                    let cur_in = bits & window_mask(i) != 0;
                    if cur_in {
                        sizes[i] += 1;
                    }
                    if i > 0 {
                        match (prev_in, cur_in) {
                            (false, true) => ups[i - 1] += 1,
                            (true, false) => downs[i - 1] += 1,
                            _ => {}
                        }
                    }
                    prev_in = cur_in;
                }
            }
        }
        let mut up_pct = Vec::new();
        let mut down_pct = Vec::new();
        for i in 0..n_windows - 1 {
            if sizes[i + 1] > 0 {
                up_pct.push(100.0 * ups[i] as f64 / sizes[i + 1] as f64);
            }
            if sizes[i] > 0 {
                down_pct.push(100.0 * downs[i] as f64 / sizes[i] as f64);
            }
        }
        let zero = MinMedMax { min: 0.0, median: 0.0, max: 0.0 };
        out.push(WindowChurn {
            window_days: w * 7,
            up: MinMedMax::of(&up_pct).unwrap_or(zero),
            down: MinMedMax::of(&down_pct).unwrap_or(zero),
        });
    }
    out
}

/// [`weekly_window_sweep`] computed through a [`WeeklyWindows`]
/// source — the weekly counterpart of [`window_sweep_over`], with the
/// same query discipline and pair algebra.
pub fn weekly_window_sweep_over<W: WeeklyWindows>(
    ws: &W,
    window_weeks: &[usize],
    par: &Parallelism,
) -> Vec<WindowChurn> {
    window_weeks
        .iter()
        .filter(|&&w| w >= 1 && ws.num_weeks() / w >= 2)
        .map(|&w| {
            let n_windows = ws.num_weeks() / w;
            let windows: Vec<Arc<W::Set>> =
                (0..n_windows).map(|i| ws.union(i * w..(i + 1) * w)).collect();
            let (up, down) = pair_percentages_from_windows(&windows, par);
            let zero = MinMedMax { min: 0.0, median: 0.0, max: 0.0 };
            WindowChurn {
                window_days: w * 7,
                up: MinMedMax::of(&up).unwrap_or(zero),
                down: MinMedMax::of(&down).unwrap_or(zero),
            }
        })
        .collect()
}

/// One week of Figure 4(c): drift relative to the first week.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeekDrift {
    /// Week index (1-based comparison weeks; week 0 is the reference).
    pub week: usize,
    /// Addresses active this week but not in week 0.
    pub appear: usize,
    /// Addresses active in week 0 but not this week.
    pub disappear: usize,
    /// `appear` as a fraction of week 0's active count.
    pub appear_frac: f64,
    /// `disappear` as a fraction of week 0's active count.
    pub disappear_frac: f64,
}

/// Computes Figure 4(c): per-week appear/disappear versus week 0.
pub fn year_drift(ws: &WeeklyDataset) -> Vec<WeekDrift> {
    let mut base = 0u64;
    let mut appear = vec![0u64; ws.num_weeks];
    let mut disappear = vec![0u64; ws.num_weeks];
    for (_, rows) in &ws.blocks {
        for &bits in rows.iter() {
            if bits == 0 {
                continue;
            }
            let in_base = bits & 1 != 0;
            if in_base {
                base += 1;
            }
            for w in 1..ws.num_weeks {
                let in_w = bits & (1u64 << w) != 0;
                match (in_base, in_w) {
                    (false, true) => appear[w] += 1,
                    (true, false) => disappear[w] += 1,
                    _ => {}
                }
            }
        }
    }
    let basef = base.max(1) as f64;
    (1..ws.num_weeks)
        .map(|w| WeekDrift {
            week: w,
            appear: appear[w] as usize,
            disappear: disappear[w] as usize,
            appear_frac: appear[w] as f64 / basef,
            disappear_frac: disappear[w] as f64 / basef,
        })
        .collect()
}

/// Computes Figure 5(a): the distribution (as an [`Ecdf`]) over ASes
/// of the per-AS *median* percentage of addresses with an up event per
/// window pair, for one window size.
///
/// `resolve` maps a `/24` block to its origin AS (the synthetic
/// universe never splits a `/24` across ASes, matching how the paper
/// aggregates at `/24`-or-coarser granularity). Only ASes with at
/// least `min_ips` distinct active addresses are included (paper:
/// 1000).
pub fn per_as_churn<F>(
    ds: &DailyDataset,
    window_days: usize,
    min_ips: usize,
    mut resolve: F,
) -> Ecdf
where
    F: FnMut(Block24) -> Option<Asn>,
{
    let w = window_days;
    let n_windows = ds.num_days / w;
    assert!(n_windows >= 2, "need at least two windows");
    #[derive(Default)]
    struct AsAcc {
        active_ips: u64,
        ups: Vec<u64>,   // per pair
        sizes: Vec<u64>, // per window
    }
    let mut per_as: HashMap<Asn, AsAcc> = HashMap::new();
    for rec in &ds.blocks {
        let Some(asn) = resolve(rec.block) else { continue };
        let acc = per_as.entry(asn).or_insert_with(|| AsAcc {
            active_ips: 0,
            ups: vec![0; n_windows - 1],
            sizes: vec![0; n_windows],
        });
        for bits in rec.rows.iter() {
            if bits.is_empty() {
                continue;
            }
            acc.active_ips += 1;
            let mut prev_in = false;
            for i in 0..n_windows {
                let cur_in = bits.any_in_range(i * w, (i + 1) * w);
                if cur_in {
                    acc.sizes[i] += 1;
                }
                if i > 0 && !prev_in && cur_in {
                    acc.ups[i - 1] += 1;
                }
                prev_in = cur_in;
            }
        }
    }
    let mut medians = Vec::new();
    for acc in per_as.values() {
        if (acc.active_ips as usize) < min_ips {
            continue;
        }
        let pcts: Vec<f64> = (0..acc.ups.len())
            .filter(|&i| acc.sizes[i + 1] > 0)
            .map(|i| 100.0 * acc.ups[i] as f64 / acc.sizes[i + 1] as f64)
            .collect();
        if let Some(m) = MinMedMax::of(&pcts) {
            medians.push(m.median);
        }
    }
    Ecdf::new(medians)
}

/// [`per_as_churn`] computed through a [`DailyWindows`] source, with
/// the block scan split into chunk-range subtasks.
///
/// Instead of walking every address's day-bits, this form answers the
/// same questions with per-block counts against the window sets: per
/// `/24` block `b`, an AS gains `|All ∩ b|` active addresses, window
/// `i` contributes `|W_i ∩ b|` to its size, and pair `i−1`
/// contributes `|W_i ∩ b| − |W_{i−1} ∩ W_i ∩ b|` up events. The
/// counts come as whole columns — [`ActiveSet::block_counts`] per
/// window and [`ActiveSet::intersect_block_counts`] per adjacent
/// pair, merge-aligned against the block list — rather than
/// per-(block, window) `count_in` searches, and no intersection set
/// is ever materialized. Blocks with no activity contribute nothing
/// in either form, and the medians/ECDF math is unchanged, so the
/// result agrees exactly with [`per_as_churn`] on the underlying
/// dataset.
pub fn per_as_churn_over<W, F>(
    ds: &W,
    window_days: usize,
    min_ips: usize,
    resolve: F,
    par: &Parallelism,
) -> Ecdf
where
    W: DailyWindows,
    F: Fn(Block24) -> Option<Asn> + Sync,
{
    let w = window_days;
    let n_windows = ds.num_days() / w;
    assert!(n_windows >= 2, "need at least two windows");
    let windows: Vec<Arc<W::Set>> =
        (0..n_windows).map(|i| ds.union(i * w..(i + 1) * w)).collect();
    let all = ds.union(0..ds.num_days());
    let blocks = all.blocks24();

    // Count columns aligned to `blocks`: every window (and window
    // pair) is a subset of `all`, so its sorted per-block counts
    // merge-align in one linear walk.
    let align = |counts: Vec<(Block24, u32)>| -> Vec<u32> {
        let mut row = vec![0u32; blocks.len()];
        let mut k = 0;
        for (block, n) in counts {
            while blocks[k] != block {
                k += 1;
            }
            row[k] = n;
            k += 1;
        }
        row
    };
    let all_counts = align(all.block_counts());
    let win_counts: Vec<Vec<u32>> = windows.iter().map(|s| align(s.block_counts())).collect();
    let inter_counts: Vec<Vec<u32>> = (1..n_windows)
        .map(|i| align(windows[i - 1].intersect_block_counts(&windows[i])))
        .collect();

    #[derive(Clone)]
    struct Acc {
        active_ips: u64,
        ups: Vec<u64>,   // per pair
        sizes: Vec<u64>, // per window
    }
    let chunk_maps: Vec<HashMap<Asn, Acc>> = par.run(blocks.len(), 64, |range| {
        let mut per_as: HashMap<Asn, Acc> = HashMap::new();
        for bi in range {
            let Some(asn) = resolve(blocks[bi]) else { continue };
            let acc = per_as.entry(asn).or_insert_with(|| Acc {
                active_ips: 0,
                ups: vec![0; n_windows - 1],
                sizes: vec![0; n_windows],
            });
            acc.active_ips += all_counts[bi] as u64;
            for i in 0..n_windows {
                let cur = win_counts[i][bi] as u64;
                acc.sizes[i] += cur;
                if i > 0 {
                    acc.ups[i - 1] += cur - inter_counts[i - 1][bi] as u64;
                }
            }
        }
        per_as
    });
    let mut per_as: HashMap<Asn, Acc> = HashMap::new();
    for map in chunk_maps {
        for (asn, acc) in map {
            match per_as.entry(asn) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(acc);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let mine = slot.get_mut();
                    mine.active_ips += acc.active_ips;
                    for (a, b) in mine.ups.iter_mut().zip(&acc.ups) {
                        *a += b;
                    }
                    for (a, b) in mine.sizes.iter_mut().zip(&acc.sizes) {
                        *a += b;
                    }
                }
            }
        }
    }
    let mut medians = Vec::new();
    for acc in per_as.values() {
        if (acc.active_ips as usize) < min_ips {
            continue;
        }
        let pcts: Vec<f64> = (0..acc.ups.len())
            .filter(|&i| acc.sizes[i + 1] > 0)
            .map(|i| 100.0 * acc.ups[i] as f64 / acc.sizes[i + 1] as f64)
            .collect();
        if let Some(m) = MinMedMax::of(&pcts) {
            medians.push(m.median);
        }
    }
    Ecdf::new(medians)
}

/// BGP attribution of long-term appear/disappear events (Table 2 rows
/// "BGP no change / origin change / announce-withdraw").
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BgpBreakdown {
    /// Fraction with the same origin AS in both periods.
    pub no_change: f64,
    /// Fraction routed in both periods but by different origins.
    pub origin_change: f64,
    /// Fraction routed in exactly one of the periods.
    pub announce_withdraw: f64,
}

/// Table 2: long-term appear/disappear between two multi-week unions.
///
/// Generic over the [`ActiveSet`] backend the weekly source produces;
/// defaults to the reference [`AddrSet`] so existing callers that name
/// the type stay valid.
#[derive(Debug, Clone)]
pub struct LongTermChurn<S: ActiveSet = AddrSet> {
    /// Addresses active late but not early.
    pub appear: S,
    /// Addresses active early but not late.
    pub disappear: S,
    /// Fraction of appearing addresses whose entire containing `/24`
    /// appeared (no address of the block active early).
    pub appear_full_block_frac: f64,
    /// Fraction of disappearing addresses whose entire `/24` disappeared.
    pub disappear_full_block_frac: f64,
    /// BGP attribution of appearing addresses.
    pub appear_bgp: BgpBreakdown,
    /// BGP attribution of disappearing addresses.
    pub disappear_bgp: BgpBreakdown,
}

fn bgp_breakdown<S: ActiveSet>(
    addrs: &S,
    bgp: &BgpTimeline,
    early_days: core::ops::Range<u16>,
    late_days: core::ops::Range<u16>,
) -> BgpBreakdown {
    if addrs.is_empty() {
        return BgpBreakdown { no_change: 0.0, origin_change: 0.0, announce_withdraw: 0.0 };
    }
    // Memoize per /24: origins only change at prefix granularity ≥ /24
    // in practice, and this keeps the pass linear.
    let mut cache: HashMap<Block24, (Option<Asn>, Option<Asn>)> = HashMap::new();
    let (mut same, mut diff, mut aw) = (0u64, 0u64, 0u64);
    for addr in addrs.iter() {
        let block = Block24::of(addr);
        let (e, l) = *cache.entry(block).or_insert_with(|| {
            (
                bgp.majority_origin(addr, early_days.clone()),
                bgp.majority_origin(addr, late_days.clone()),
            )
        });
        match (e, l) {
            (Some(a), Some(b)) if a == b => same += 1,
            (Some(_), Some(_)) => diff += 1,
            (None, None) => same += 1, // never routed in either period: no change visible
            _ => aw += 1,
        }
    }
    let total = addrs.len() as f64;
    BgpBreakdown {
        no_change: same as f64 / total,
        origin_change: diff as f64 / total,
        announce_withdraw: aw as f64 / total,
    }
}

fn full_block_fraction<S: ActiveSet>(events: &S, other_period: &S) -> f64 {
    if events.is_empty() {
        return 0.0;
    }
    let mut covered = 0u64;
    for addr in events.iter() {
        let block = Block24::of(addr).prefix();
        if !other_period.any_in(block) {
            covered += 1;
        }
    }
    covered as f64 / events.len() as f64
}

/// Computes Table 2 over the weekly dataset.
///
/// `early`/`late` are week ranges (paper: weeks 0..9 ≈ Jan/Feb and
/// 43..52 ≈ Nov/Dec); `days_per_week` maps week indices onto the BGP
/// timeline's day axis.
///
/// Accepts any [`WeeklyWindows`] source, so the bench layer can pass
/// a memoizing cache in place of the raw dataset.
pub fn long_term<W: WeeklyWindows>(
    ws: &W,
    early: core::ops::Range<usize>,
    late: core::ops::Range<usize>,
    bgp: &BgpTimeline,
    days_per_week: u16,
) -> LongTermChurn<W::Set> {
    let early_set = ws.union(early.clone());
    let late_set = ws.union(late.clone());
    let appear = late_set.difference(&early_set);
    let disappear = early_set.difference(&late_set);
    let early_days = early.start as u16 * days_per_week..early.end as u16 * days_per_week;
    let late_days = late.start as u16 * days_per_week..late.end as u16 * days_per_week;
    LongTermChurn {
        appear_full_block_frac: full_block_fraction(&appear, &*early_set),
        disappear_full_block_frac: full_block_fraction(&disappear, &*late_set),
        appear_bgp: bgp_breakdown(&appear, bgp, early_days.clone(), late_days.clone()),
        disappear_bgp: bgp_breakdown(&disappear, bgp, early_days, late_days),
        appear,
        disappear,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DailyDatasetBuilder, WeeklyDatasetBuilder};
    use ipactive_bgp::{BgpEvent, BgpEventKind, RoutingTable};
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn daily_series_counts_transitions() {
        let mut b = DailyDatasetBuilder::new(4);
        // addr1: days 0,1   addr2: days 1,2,3   addr3: day 3 only
        b.record_hits(0, a("10.0.0.1"), 1);
        b.record_hits(1, a("10.0.0.1"), 1);
        for d in 1..4 {
            b.record_hits(d, a("10.0.0.2"), 1);
        }
        b.record_hits(3, a("10.0.0.3"), 1);
        let s = daily_series(&b.finish());
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], DayChurn { day: 0, active: 1, up: 0, down: 0 });
        assert_eq!(s[1], DayChurn { day: 1, active: 2, up: 1, down: 0 });
        assert_eq!(s[2], DayChurn { day: 2, active: 1, up: 0, down: 1 });
        assert_eq!(s[3], DayChurn { day: 3, active: 2, up: 1, down: 0 });
    }

    #[test]
    fn weekday_profile_averages_by_dow() {
        let mut b = DailyDatasetBuilder::new(14);
        // Two addresses active on weekdays only (days 0..5 and 7..12).
        for d in 0..14usize {
            if d % 7 < 5 {
                b.record_hits(d, a("10.0.0.1"), 1);
                b.record_hits(d, a("10.0.0.2"), 1);
            } else {
                b.record_hits(d, a("10.0.0.1"), 1);
            }
        }
        let profile = weekday_profile(&b.finish());
        for (dow, &v) in profile.iter().enumerate() {
            let expect = if dow < 5 { 2.0 } else { 1.0 };
            assert!((v - expect).abs() < 1e-12, "dow {dow}");
        }
    }

    #[test]
    fn window_sweep_aggregates_away_short_term_churn() {
        // Address flickers daily but is present in every 2-day window:
        // churn at w=1, none at w=2.
        let mut b = DailyDatasetBuilder::new(8);
        for d in (0..8).step_by(2) {
            b.record_hits(d, a("10.0.0.1"), 1);
        }
        // A stable companion so windows are never empty.
        for d in 0..8 {
            b.record_hits(d, a("10.0.0.2"), 1);
        }
        let ds = b.finish();
        let sweep = window_sweep(&ds, &[1, 2, 4]);
        assert_eq!(sweep.len(), 3);
        let w1 = &sweep[0];
        assert!(w1.up.max > 0.0, "daily flicker must show at w=1");
        let w2 = &sweep[1];
        assert_eq!(w2.up.max, 0.0, "2-day windows absorb the flicker");
        assert_eq!(w2.down.max, 0.0);
    }

    #[test]
    fn window_sweep_skips_oversized_windows() {
        let mut b = DailyDatasetBuilder::new(6);
        b.record_hits(0, a("10.0.0.1"), 1);
        let ds = b.finish();
        // w=6 would give a single window (no pairs): must be skipped.
        let sweep = window_sweep(&ds, &[1, 6, 3]);
        let sizes: Vec<usize> = sweep.iter().map(|s| s.window_days).collect();
        assert_eq!(sizes, vec![1, 3]);
    }

    #[test]
    fn weekly_window_sweep_matches_manual_counts() {
        let mut b = WeeklyDatasetBuilder::new(8);
        // addr x: alternates 2-week windows (in windows 0 and 2 of w=2);
        // addr y: steady all 8 weeks.
        let (x, y) = (a("10.0.0.1"), a("10.0.0.2"));
        for wk in [0usize, 1, 4, 5] {
            b.record_week(wk, x, 1);
        }
        for wk in 0..8 {
            b.record_week(wk, y, 1);
        }
        let ws = b.finish();
        let sweep = weekly_window_sweep(&ws, &[2, 8, 9]);
        // w=9 produces <2 windows and is skipped; w=8 gives 1 window (skipped too).
        assert_eq!(sweep.len(), 1);
        let s = &sweep[0];
        assert_eq!(s.window_days, 14);
        // Window membership for x: [1,0,1,0]; pairs: down, up, down.
        // up%: pair1: 0/1; pair2: 1/2 = 50%; pair3: 0/1.
        assert_eq!(s.up.max, 50.0);
        assert_eq!(s.up.min, 0.0);
        assert_eq!(s.down.max, 50.0);
    }

    #[test]
    fn year_drift_relative_to_week_zero() {
        let mut b = WeeklyDatasetBuilder::new(4);
        // week0: {x, y}; week1: {x}; week2: {x, z}; week3: {z}
        let (x, y, z) = (a("10.0.0.1"), a("10.0.0.2"), a("10.0.1.1"));
        b.record_week(0, x, 1);
        b.record_week(0, y, 1);
        b.record_week(1, x, 1);
        b.record_week(2, x, 1);
        b.record_week(2, z, 1);
        b.record_week(3, z, 1);
        let drift = year_drift(&b.finish());
        assert_eq!(drift.len(), 3);
        assert_eq!((drift[0].appear, drift[0].disappear), (0, 1)); // week1: y gone
        assert_eq!((drift[1].appear, drift[1].disappear), (1, 1)); // week2: z new, y gone
        assert_eq!((drift[2].appear, drift[2].disappear), (1, 2)); // week3: z new, x+y gone
        assert!((drift[2].disappear_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_as_churn_separates_stable_and_volatile_ases() {
        let mut b = DailyDatasetBuilder::new(8);
        // AS 1 (block 10.0.0.0/24): fully stable addresses.
        for host in 0..50u8 {
            for d in 0..8 {
                b.record_hits(d, Block24::of(a("10.0.0.0")).addr(host), 1);
            }
        }
        // AS 2 (block 10.0.1.0/24): half the addresses alternate windows.
        for host in 0..50u8 {
            for d in 0..8 {
                let volatile = host % 2 == 0;
                // Volatile hosts occupy odd 2-day windows only, yielding
                // up events in half of the window pairs.
                let on = if volatile { (d / 2) % 2 == 1 } else { true };
                if on {
                    b.record_hits(d, Block24::of(a("10.0.1.0")).addr(host), 1);
                }
            }
        }
        let ds = b.finish();
        let resolve = |block: Block24| {
            Some(if block == Block24::of(a("10.0.0.0")) { Asn(1) } else { Asn(2) })
        };
        let ecdf = per_as_churn(&ds, 2, 10, resolve);
        assert_eq!(ecdf.len(), 2);
        let samples = ecdf.samples();
        assert_eq!(samples[0], 0.0); // the stable AS
        assert!(samples[1] > 20.0, "volatile AS median {}%", samples[1]);
    }

    #[test]
    fn per_as_churn_applies_min_ips_filter() {
        let mut b = DailyDatasetBuilder::new(4);
        b.record_hits(0, a("10.0.0.1"), 1);
        let ds = b.finish();
        let ecdf = per_as_churn(&ds, 2, 100, |_| Some(Asn(9)));
        assert!(ecdf.is_empty());
    }

    /// A 12-day dataset with steady, flickering, and one-shot
    /// addresses across three blocks — enough texture to exercise
    /// every transition kind in the set-algebra kernel forms.
    fn churny_fixture() -> DailyDataset {
        let mut b = DailyDatasetBuilder::new(12);
        for d in 0..12 {
            b.record_hits(d, a("10.0.0.1"), 1); // steady
        }
        for d in (0..12).step_by(2) {
            b.record_hits(d, a("10.0.0.2"), 1); // daily flicker
        }
        for d in (0..12).step_by(3) {
            b.record_hits(d, a("10.0.1.7"), 1); // slower flicker, block 2
        }
        b.record_hits(5, a("10.0.2.9"), 1); // one-shot, block 3
        b.record_hits(11, a("10.0.2.10"), 1); // appears at the end
        b.finish()
    }

    #[test]
    fn daily_series_over_matches_matrix_scan() {
        let ds = churny_fixture();
        let expect = daily_series(&ds);
        for pool in [Parallelism::serial(), Parallelism::new(3)] {
            assert_eq!(daily_series_over(&ds, &pool), expect);
        }
        assert_eq!(weekday_profile_from(&expect), weekday_profile(&ds));
    }

    #[test]
    fn window_sweep_over_matches_matrix_scan() {
        let ds = churny_fixture();
        let sizes = [1usize, 2, 3, 4, 6, 12];
        let expect = window_sweep(&ds, &sizes);
        for pool in [Parallelism::serial(), Parallelism::new(3)] {
            assert_eq!(window_sweep_over(&ds, &sizes, &pool), expect);
        }
    }

    #[test]
    fn weekly_window_sweep_over_matches_matrix_scan() {
        let mut b = WeeklyDatasetBuilder::new(8);
        for wk in [0usize, 1, 4, 5] {
            b.record_week(wk, a("10.0.0.1"), 1);
        }
        for wk in 0..8 {
            b.record_week(wk, a("10.0.0.2"), 1);
        }
        b.record_week(7, a("10.0.3.3"), 1);
        let ws = b.finish();
        let sizes = [1usize, 2, 4, 8];
        let expect = weekly_window_sweep(&ws, &sizes);
        assert_eq!(weekly_window_sweep_over(&ws, &sizes, &Parallelism::new(2)), expect);
    }

    #[test]
    fn per_as_churn_over_matches_matrix_scan() {
        let ds = churny_fixture();
        let resolve = |block: Block24| {
            Some(if block == Block24::of(a("10.0.0.0")) { Asn(1) } else { Asn(2) })
        };
        let expect = per_as_churn(&ds, 2, 1, resolve);
        for pool in [Parallelism::serial(), Parallelism::new(3)] {
            let got = per_as_churn_over(&ds, 2, 1, resolve, &pool);
            assert_eq!(got.samples(), expect.samples());
        }
        // The min_ips filter applies identically.
        let filtered = per_as_churn_over(&ds, 2, 100, resolve, &Parallelism::serial());
        assert!(filtered.is_empty());
    }

    #[test]
    fn long_term_full_block_and_bgp_attribution() {
        let mut b = WeeklyDatasetBuilder::new(8);
        // Block A (10.0.0.0/24): active early only — disappears entirely.
        for host in 0..10u8 {
            b.record_week(0, Block24::of(a("10.0.0.0")).addr(host), 1);
        }
        // Block B (10.0.1.0/24): active late only — appears entirely.
        for host in 0..10u8 {
            b.record_week(7, Block24::of(a("10.0.1.0")).addr(host), 1);
        }
        // Block C (10.0.2.0/24): one addr swaps for another (partial).
        b.record_week(0, a("10.0.2.1"), 1);
        b.record_week(0, a("10.0.2.2"), 1);
        b.record_week(7, a("10.0.2.2"), 1);
        b.record_week(7, a("10.0.2.3"), 1);
        let ws = b.finish();

        let mut table = RoutingTable::new();
        table.announce("10.0.0.0/16".parse().unwrap(), Asn(77));
        let mut bgp = BgpTimeline::new(table);
        // Block B's /24 gets announced (more specific) mid-year by AS88.
        bgp.push(BgpEvent {
            day: 30,
            prefix: "10.0.1.0/24".parse().unwrap(),
            kind: BgpEventKind::OriginChange { to: Asn(88) },
        });

        let lt = long_term(&ws, 0..2, 6..8, &bgp, 7);
        assert_eq!(lt.appear.len(), 11); // block B (10) + 10.0.2.3
        assert_eq!(lt.disappear.len(), 11); // block A (10) + 10.0.2.1
        assert!((lt.appear_full_block_frac - 10.0 / 11.0).abs() < 1e-9);
        assert!((lt.disappear_full_block_frac - 10.0 / 11.0).abs() < 1e-9);
        // Appearing block B changed origin 77 -> 88; 10.0.2.3 stayed at 77.
        assert!((lt.appear_bgp.origin_change - 10.0 / 11.0).abs() < 1e-9);
        assert!((lt.appear_bgp.no_change - 1.0 / 11.0).abs() < 1e-9);
        // Disappearing addresses all stayed under AS77.
        assert!((lt.disappear_bgp.no_change - 1.0).abs() < 1e-9);
    }
}
