//! Address-market and governance analytics (Section 8, "implications
//! to Internet governance").
//!
//! The paper closes by reading its utilization measurements as market
//! signals: how much advertised space is actually used, how much
//! could be freed inside already-active blocks, and which holders are
//! natural transfer-market sellers. This module computes those
//! quantities from a dataset plus a routing table.

use crate::dataset::DailyDataset;
use ipactive_bgp::{Asn, RoutingTable};
use ipactive_net::Block24;
use std::collections::HashMap;

/// Whole-space utilization summary (Section 8's "42.8% of advertised
/// unicast space is active" and "roughly 450 million addresses may be
/// unused" claims, at the dataset's scale).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MarketSurvey {
    /// Addresses covered by the routing table (deduplicated).
    pub advertised: u64,
    /// Distinct active addresses in the observation window.
    pub active: u64,
    /// `active / advertised`.
    pub active_share: f64,
    /// Addresses inside *active* `/24`s that never showed activity —
    /// the "unused despite being in operation" pool.
    pub idle_in_active_blocks: u64,
    /// Number of active `/24` blocks considered.
    pub active_blocks: u64,
}

/// Computes the survey.
pub fn survey(ds: &DailyDataset, table: &RoutingTable) -> MarketSurvey {
    let advertised = table.covered_addresses();
    let active = ds.total_active() as u64;
    let active_blocks = ds
        .blocks
        .iter()
        .filter(|r| r.any_active(0..ds.num_days))
        .count() as u64;
    let in_blocks = active_blocks * 256;
    MarketSurvey {
        advertised,
        active,
        active_share: if advertised == 0 { 0.0 } else { active as f64 / advertised as f64 },
        idle_in_active_blocks: in_blocks.saturating_sub(active),
        active_blocks,
    }
}

/// One holder's idle-address estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AsSlack {
    /// The holder.
    pub asn: Asn,
    /// `/24` blocks attributed to the holder.
    pub blocks_held: u32,
    /// Addresses held (256 × blocks).
    pub addrs_held: u32,
    /// Addresses without any observed activity.
    pub addrs_idle: u32,
}

impl AsSlack {
    /// Idle fraction of the holding.
    pub fn idle_fraction(&self) -> f64 {
        if self.addrs_held == 0 {
            0.0
        } else {
            self.addrs_idle as f64 / self.addrs_held as f64
        }
    }
}

/// Ranks holders by idle addresses, descending — the "likely candidate
/// sellers" list. `holdings` enumerates every `/24` a holder is
/// responsible for (including fully idle ones, which a dataset alone
/// cannot see).
pub fn slack_ranking(holdings: &[(Block24, Asn)], ds: &DailyDataset) -> Vec<AsSlack> {
    let mut per_as: HashMap<Asn, AsSlack> = HashMap::new();
    for &(block, asn) in holdings {
        let slack = per_as.entry(asn).or_insert(AsSlack {
            asn,
            blocks_held: 0,
            addrs_held: 0,
            addrs_idle: 0,
        });
        slack.blocks_held += 1;
        slack.addrs_held += 256;
        let used = ds
            .block(block)
            .map(|r| r.filling_degree(0..ds.num_days))
            .unwrap_or(0);
        slack.addrs_idle += 256 - used;
    }
    let mut out: Vec<AsSlack> = per_as.into_values().collect();
    out.sort_by(|x, y| y.addrs_idle.cmp(&x.addrs_idle).then(x.asn.0.cmp(&y.asn.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn dataset() -> DailyDataset {
        let mut b = DailyDatasetBuilder::new(4);
        // Block A: 200 active addresses.
        for host in 0..200u8 {
            b.record_hits(0, Block24::of(a("10.0.0.0")).addr(host), 1);
        }
        // Block B: 10 active addresses.
        for host in 0..10u8 {
            b.record_hits(1, Block24::of(a("10.0.1.0")).addr(host), 1);
        }
        b.finish()
    }

    #[test]
    fn survey_counts() {
        let ds = dataset();
        let mut table = RoutingTable::new();
        table.announce("10.0.0.0/22".parse().unwrap(), Asn(1)); // 1024 addrs
        let s = survey(&ds, &table);
        assert_eq!(s.advertised, 1024);
        assert_eq!(s.active, 210);
        assert!((s.active_share - 210.0 / 1024.0).abs() < 1e-12);
        assert_eq!(s.active_blocks, 2);
        assert_eq!(s.idle_in_active_blocks, 2 * 256 - 210);
    }

    #[test]
    fn survey_with_empty_table() {
        let ds = dataset();
        let s = survey(&ds, &RoutingTable::new());
        assert_eq!(s.advertised, 0);
        assert_eq!(s.active_share, 0.0);
    }

    #[test]
    fn slack_ranking_orders_by_idle() {
        let ds = dataset();
        let holdings = vec![
            (Block24::of(a("10.0.0.0")), Asn(1)), // 56 idle
            (Block24::of(a("10.0.1.0")), Asn(2)), // 246 idle
            (Block24::of(a("10.0.2.0")), Asn(2)), // fully idle: 256
        ];
        let ranking = slack_ranking(&holdings, &ds);
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].asn, Asn(2));
        assert_eq!(ranking[0].blocks_held, 2);
        assert_eq!(ranking[0].addrs_idle, 246 + 256);
        assert!((ranking[0].idle_fraction() - 502.0 / 512.0).abs() < 1e-12);
        assert_eq!(ranking[1].asn, Asn(1));
        assert_eq!(ranking[1].addrs_idle, 56);
    }

    #[test]
    fn empty_holdings_empty_ranking() {
        let ds = dataset();
        assert!(slack_ranking(&[], &ds).is_empty());
    }
}
