//! Spatio-temporal block views (Section 5.1, Figures 6 and 7).
//!
//! The paper's block exemplars are "activity matrices": addresses of a
//! `/24` on the y-axis, observation days on the x-axis, a mark where
//! the address was active. [`render`] reproduces them as terminal art;
//! [`BlockMetrics`] carries the FD/STU annotations printed under each
//! subfigure.

use crate::dataset::BlockRecord;

/// The two Section 5.1 metrics for one block over a day window.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockMetrics {
    /// Filling degree: active addresses in the window (0..=256).
    pub fd: u32,
    /// Spatio-temporal utilization in `[0, 1]`.
    pub stu: f64,
}

impl BlockMetrics {
    /// Computes both metrics for `rec` over `days`.
    pub fn of(rec: &BlockRecord, days: core::ops::Range<usize>) -> BlockMetrics {
        BlockMetrics { fd: rec.filling_degree(days.clone()), stu: rec.stu(days) }
    }
}

/// Month-by-month STU series for a block (input to change detection).
///
/// The window is split into `⌊days/month_days⌋` consecutive "months"
/// (the paper uses 28-day months over its 112-day window).
pub fn monthly_stu(rec: &BlockRecord, num_days: usize, month_days: usize) -> Vec<f64> {
    assert!(month_days > 0);
    let months = num_days / month_days;
    (0..months)
        .map(|m| rec.stu(m * month_days..(m + 1) * month_days))
        .collect()
}

/// Renders a block's activity matrix as terminal art.
///
/// Output has `256 / addr_step` rows (top row = host `.0`) and one
/// column per day; `#` marks activity, `.` inactivity. With
/// `addr_step > 1`, each row aggregates `addr_step` consecutive
/// addresses and uses a density ramp ` .:#` so the Figure 6 patterns
/// (diagonal round-robin stripes, horizontal static bands, solid
/// dynamic fill) stay recognizable at terminal sizes.
pub fn render(rec: &BlockRecord, num_days: usize, addr_step: usize) -> String {
    assert!(addr_step >= 1 && 256 % addr_step == 0, "addr_step must divide 256");
    let mut out = String::with_capacity((256 / addr_step) * (num_days + 1));
    for group in 0..(256 / addr_step) {
        for day in 0..num_days {
            let active = (0..addr_step)
                .filter(|i| rec.rows[group * addr_step + i].get(day))
                .count();
            let ch = if addr_step == 1 {
                if active > 0 { '#' } else { '.' }
            } else {
                let density = active as f64 / addr_step as f64;
                match density {
                    0.0 => '.',
                    d if d < 0.34 => ':',
                    d if d < 0.67 => '+',
                    _ => '#',
                }
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Renders a block's *year-scale* activity matrix from weekly bits
/// (rows aggregate `addr_step` addresses; columns are weeks). Same
/// density ramp as [`render`].
pub fn render_weekly(rows: &[u64; 256], num_weeks: usize, addr_step: usize) -> String {
    assert!(addr_step >= 1 && 256 % addr_step == 0, "addr_step must divide 256");
    assert!(num_weeks <= 64);
    let mut out = String::with_capacity((256 / addr_step) * (num_weeks + 1));
    for group in 0..(256 / addr_step) {
        for week in 0..num_weeks {
            let active = (0..addr_step)
                .filter(|i| rows[group * addr_step + i] & (1u64 << week) != 0)
                .count();
            let ch = if addr_step == 1 {
                if active > 0 { '#' } else { '.' }
            } else {
                let density = active as f64 / addr_step as f64;
                match density {
                    0.0 => '.',
                    d if d < 0.34 => ':',
                    d if d < 0.67 => '+',
                    _ => '#',
                }
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_net::{Addr, Block24};

    fn block_with_pattern<F: Fn(u8, usize) -> bool>(num_days: usize, f: F) -> BlockRecord {
        let mut b = DailyDatasetBuilder::new(num_days);
        let block = Block24::of("10.0.0.0".parse::<Addr>().unwrap());
        for host in 0..=255u8 {
            for day in 0..num_days {
                if f(host, day) {
                    b.record_hits(day, block.addr(host), 1);
                }
            }
        }
        let ds = b.finish();
        ds.block(block).unwrap().clone()
    }

    #[test]
    fn metrics_of_full_block() {
        let rec = block_with_pattern(8, |_, _| true);
        let m = BlockMetrics::of(&rec, 0..8);
        assert_eq!(m.fd, 256);
        assert!((m.stu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_of_sparse_static_block() {
        // 29 fixed addresses, each active half the days — like Figure 6(a).
        let rec = block_with_pattern(8, |host, day| host < 29 && day % 2 == 0);
        let m = BlockMetrics::of(&rec, 0..8);
        assert_eq!(m.fd, 29);
        let expect = (29.0 * 4.0) / (256.0 * 8.0);
        assert!((m.stu - expect).abs() < 1e-12);
    }

    #[test]
    fn monthly_stu_detects_policy_shift() {
        // First 4 "days" sparse, last 4 dense (month length 4).
        let rec = block_with_pattern(8, |host, day| if day < 4 { host < 16 } else { true });
        let series = monthly_stu(&rec, 8, 4);
        assert_eq!(series.len(), 2);
        assert!((series[0] - 16.0 / 256.0).abs() < 1e-12);
        assert!((series[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_full_resolution_marks_activity() {
        let rec = block_with_pattern(4, |host, day| host == 2 && day == 1);
        let art = render(&rec, 4, 1);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 256);
        assert_eq!(lines[2], ".#..");
        assert_eq!(lines[0], "....");
    }

    #[test]
    fn render_aggregated_uses_density_ramp() {
        // All 4 addresses of group 0 active on day 0, one of group 1.
        let rec = block_with_pattern(2, |host, day| {
            day == 0 && host <= 4
        });
        let art = render(&rec, 2, 4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 64);
        assert_eq!(&lines[0][0..1], "#"); // 4/4 density
        assert_eq!(&lines[1][0..1], ":"); // 1/4 density
        assert_eq!(&lines[0][1..2], "."); // inactive day
    }

    #[test]
    fn render_weekly_marks_weeks() {
        let mut rows = [0u64; 256];
        rows[0] = 0b101; // addr .0 active weeks 0 and 2
        rows[255] = 0b010;
        let art = render_weekly(&rows, 3, 1);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 256);
        assert_eq!(lines[0], "#.#");
        assert_eq!(lines[255], ".#.");
        assert_eq!(lines[100], "...");
    }

    #[test]
    #[should_panic(expected = "divide 256")]
    fn render_rejects_bad_step() {
        let rec = block_with_pattern(2, |host, day| host == 0 && day == 0);
        render(&rec, 2, 3);
    }
}
