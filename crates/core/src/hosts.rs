//! Relative host counts from sampled User-Agent strings
//! (Section 6.3, Figure 10).

use crate::dataset::DailyDataset;
use ipactive_net::Block24;

/// One Figure 10 point: a `/24` block's UA sample count (x, a traffic
/// proxy) and unique UA string count (y, a relative host count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UaPoint {
    /// The block.
    pub block: Block24,
    /// Number of sampled User-Agent observations.
    pub samples: u64,
    /// Number of distinct sampled User-Agent strings.
    pub unique: u32,
}

/// The three regions the paper reads off Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UaRegion {
    /// The bulk: residential blocks — moderate traffic, diversity
    /// tracking traffic.
    Bulk,
    /// Bottom-right: automated activity (crawlers/bots) — many
    /// requests, one or very few UA strings.
    Bot,
    /// Top-right: gateways (CGN/proxies) — many requests *and* very
    /// high UA diversity.
    Gateway,
}

/// Classification thresholds (log10-scale), tunable per deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UaRegionThresholds {
    /// Minimum samples for a block to count as high-traffic.
    pub high_traffic_samples: u64,
    /// At or below this many unique UAs, a high-traffic block is a bot.
    pub bot_max_unique: u32,
    /// At or above this many unique UAs, a high-traffic block is a
    /// gateway.
    pub gateway_min_unique: u32,
}

impl Default for UaRegionThresholds {
    fn default() -> Self {
        // Thresholds are deployment-tunable (the paper reads its
        // regions off the plot); the defaults put the high-traffic
        // knee above what a fully cycled residential /24 produces at
        // the reference sampling rate, so only aggregation points
        // (gateways) and automation (bots) cross it.
        UaRegionThresholds {
            high_traffic_samples: 1_000,
            bot_max_unique: 10,
            gateway_min_unique: 600,
        }
    }
}

/// Extracts the Figure 10 scatter from a dataset (blocks with at
/// least one UA sample).
pub fn ua_scatter(ds: &DailyDataset) -> Vec<UaPoint> {
    ds.blocks
        .iter()
        .filter(|r| r.ua_samples > 0)
        .map(|r| UaPoint { block: r.block, samples: r.ua_samples, unique: r.ua_unique })
        .collect()
}

/// Classifies a point into a region (or none: the bulk also absorbs
/// everything not matching the two high-traffic corners).
pub fn classify(p: &UaPoint, t: &UaRegionThresholds) -> UaRegion {
    if p.samples >= t.high_traffic_samples {
        if p.unique <= t.bot_max_unique {
            return UaRegion::Bot;
        }
        if p.unique >= t.gateway_min_unique {
            return UaRegion::Gateway;
        }
    }
    UaRegion::Bulk
}

/// A log-log 2D histogram of the scatter — the heat map behind
/// Figure 10.
#[derive(Debug, Clone)]
pub struct UaHistogram2d {
    /// `counts[yi][xi]`: blocks in sample-decade `xi`, unique-decade `yi`.
    pub counts: Vec<Vec<u64>>,
    /// Number of x (sample-count) decades.
    pub x_decades: usize,
    /// Number of y (unique-count) decades.
    pub y_decades: usize,
}

/// Builds the 2D histogram with one bin per order of magnitude.
pub fn histogram2d(points: &[UaPoint], x_decades: usize, y_decades: usize) -> UaHistogram2d {
    let mut counts = vec![vec![0u64; x_decades]; y_decades];
    for p in points {
        let xi = (p.samples.max(1) as f64).log10().floor() as usize;
        let yi = (p.unique.max(1) as f64).log10().floor() as usize;
        counts[yi.min(y_decades - 1)][xi.min(x_decades - 1)] += 1;
    }
    UaHistogram2d { counts, x_decades, y_decades }
}

/// Pearson correlation between log-samples and log-uniques — the
/// "strong correlation between traffic and hosts" observation.
pub fn log_correlation(points: &[UaPoint]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = points.iter().map(|p| (p.samples.max(1) as f64).log10()).collect();
    let ys: Vec<f64> = points.iter().map(|p| (p.unique.max(1) as f64).log10()).collect();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn point(samples: u64, unique: u32) -> UaPoint {
        UaPoint { block: Block24::new(1), samples, unique }
    }

    #[test]
    fn classification_regions() {
        let t = UaRegionThresholds::default();
        assert_eq!(classify(&point(100, 50), &t), UaRegion::Bulk);
        assert_eq!(classify(&point(1_000_000, 3), &t), UaRegion::Bot);
        assert_eq!(classify(&point(1_000_000, 50_000), &t), UaRegion::Gateway);
        // High traffic, mid diversity: still bulk.
        assert_eq!(classify(&point(1_000_000, 100), &t), UaRegion::Bulk);
        // Low traffic, low diversity: bulk, not bot.
        assert_eq!(classify(&point(5, 1), &t), UaRegion::Bulk);
    }

    #[test]
    fn scatter_reads_block_records() {
        let mut b = DailyDatasetBuilder::new(2);
        b.record_hits(0, a("10.0.0.1"), 5);
        b.record_ua(0, a("10.0.0.1"), 1);
        b.record_ua(0, a("10.0.0.1"), 2);
        b.record_ua(1, a("10.0.0.1"), 1);
        b.record_hits(0, a("10.0.1.1"), 5); // block without UA samples
        let ds = b.finish();
        let pts = ua_scatter(&ds);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].samples, 3);
        assert_eq!(pts[0].unique, 2);
    }

    #[test]
    fn histogram_bins_by_decade() {
        let pts =
            vec![point(1, 1), point(99, 9), point(100, 10), point(10_000, 10_000)];
        let h = histogram2d(&pts, 8, 6);
        assert_eq!(h.counts[0][0], 1); // (1,1)
        assert_eq!(h.counts[0][1], 1); // (99,9)
        assert_eq!(h.counts[1][2], 1); // (100,10)
        // (10_000, 10_000): y decade 4 clamps to y_decades-1 = 5? no: log10=4 < 6.
        assert_eq!(h.counts[4][4], 1);
        let total: u64 = h.counts.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let pts = vec![point(u64::MAX, u32::MAX)];
        let h = histogram2d(&pts, 3, 3);
        assert_eq!(h.counts[2][2], 1);
    }

    #[test]
    fn log_correlation_detects_structure() {
        // Perfectly correlated in log space.
        let pts: Vec<UaPoint> =
            (0..6).map(|i| point(10u64.pow(i), 10u32.pow(i))).collect();
        let r = log_correlation(&pts).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
        // Anti-correlated.
        let pts: Vec<UaPoint> =
            (0..6).map(|i| point(10u64.pow(i), 10u32.pow(5 - i))).collect();
        let r = log_correlation(&pts).unwrap();
        assert!((r + 1.0).abs() < 1e-9);
        assert!(log_correlation(&[point(1, 1)]).is_none());
        // Zero variance.
        assert!(log_correlation(&[point(10, 1), point(10, 5)]).is_none());
    }
}
