//! # ipactive-core
//!
//! The analysis library reproducing *Beyond Counting: New Perspectives
//! on the Active IPv4 Address Space* (Richter et al., IMC 2016): data
//! model and every metric and analysis from the paper.
//!
//! ## Data model
//!
//! * [`DailyDataset`] — per-`/24` activity matrices (address × day
//!   bits) plus per-address traffic summaries over the paper's
//!   112-day daily window (Section 3.2, Table 1).
//! * [`WeeklyDataset`] — 52 weeks of activity bits and per-week
//!   traffic multisets for the year-long view.
//!
//! ## Analyses (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | §3.2/3.3 visibility vs ICMP (Fig 2) | [`visibility`] |
//! | §3.4 geography (Fig 3) | [`geo`] |
//! | §4.1 churn & volatility (Fig 4) | [`churn`] |
//! | §4.2 per-AS / event sizes / BGP (Fig 5, Table 2) | [`churn`], [`events`] |
//! | §5.1 FD & STU metrics (Fig 6/7) | [`matrix`] |
//! | §5.2 change detection (Fig 8a) | [`change`] |
//! | §5.3/5.4 addressing practice (Fig 8b/8c) | [`blocks`] |
//! | §6 traffic & devices (Fig 9/10) | [`traffic`], [`hosts`] |
//! | §7 demographics (Fig 11/12) | [`demographics`] |
//! | §8 reputation lifetimes | [`persistence`] |
//! | §8 market / governance | [`market`] |
//! | related work: reliability | [`outages`] |
//! | §2 growth timeline (Fig 1) | [`timeline`] |
//! | Table 1 dataset census | [`census`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod census;
pub mod change;
pub mod churn;
pub mod coverage;
mod dataset;
pub mod demographics;
pub mod engine;
pub mod events;
pub mod geo;
pub mod hosts;
pub mod market;
pub mod matrix;
pub mod outages;
pub mod par;
pub mod persistence;
pub mod stats;
pub mod timeline;
pub mod traffic;
pub mod visibility;

pub use coverage::Coverage;
pub use engine::{AnalysisCtx, CacheStats, DeadlineExceeded, QueryBudget};
pub use dataset::{
    BlockRecord, DailyDataset, DailyDatasetBuilder, DailyWindows, IpTraffic,
    WeeklyDataset, WeeklyDatasetBuilder, WeeklyWindows,
};
