//! Address persistence and reputation lifetimes (Section 8,
//! "implications to network security").
//!
//! A host's IP address is routinely used as a reputation handle; the
//! paper's point is that the *validity period* of that handle varies
//! by orders of magnitude with the block's assignment practice, and
//! that change detection (Section 5.2) should force early expiry. This
//! module turns activity matrices into per-block persistence measures
//! and TTL recommendations.

use crate::change::ChangePartition;
use crate::dataset::{BlockRecord, DailyDataset};
use ipactive_net::Block24;
use std::collections::HashSet;

/// Persistence profile of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockPersistence {
    /// The block.
    pub block: Block24,
    /// Filling degree over the window.
    pub fd: u32,
    /// Mean number of simultaneously active addresses per day.
    pub mean_daily_active: f64,
    /// `mean_daily_active / fd`: 1.0 means the same addresses carry
    /// the activity every day (sticky mapping); values near 0 mean
    /// each day's activity lands on different addresses (cycling
    /// pool, many users per address over time).
    pub reuse_ratio: f64,
    /// Mean per-address activity streak length in days (how long an
    /// address stays continuously active once it lights up).
    pub mean_streak_days: f64,
}

/// A recommended reputation lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReputationTtl {
    /// The block's assignment practice just changed: drop all cached
    /// reputation now.
    ExpireNow,
    /// Addresses cycle through users within a day or two.
    Hours,
    /// Addresses stick to users for days.
    Days,
    /// Address ≈ subscriber: reputation can live for weeks.
    Weeks,
}

/// Computes the persistence profile of one block over `days`.
/// Returns `None` if the block had no activity in the window.
///
/// ```
/// use ipactive_core::{persistence, DailyDatasetBuilder};
/// let mut b = DailyDatasetBuilder::new(4);
/// for d in 0..4 {
///     b.record_hits(d, "10.0.0.1".parse().unwrap(), 1);
/// }
/// let ds = b.finish();
/// let p = persistence::block_persistence(&ds.blocks[0], 0..4).unwrap();
/// assert_eq!(p.reuse_ratio, 1.0); // perfectly sticky
/// assert_eq!(persistence::recommend_ttl(&p, false), persistence::ReputationTtl::Weeks);
/// ```
pub fn block_persistence(
    rec: &BlockRecord,
    days: core::ops::Range<usize>,
) -> Option<BlockPersistence> {
    let fd = rec.filling_degree(days.clone());
    if fd == 0 {
        return None;
    }
    let span = (days.end - days.start) as f64;
    let active_addr_days: u64 = rec
        .rows
        .iter()
        .map(|b| b.count_range(days.start, days.end) as u64)
        .sum();
    let mean_daily_active = active_addr_days as f64 / span;
    // Mean streak length: total active days divided by the number of
    // maximal runs of consecutive active days across all addresses.
    let mut streaks = 0u64;
    for bits in rec.rows.iter() {
        let mut prev = false;
        for d in days.clone() {
            let cur = bits.get(d);
            if cur && !prev {
                streaks += 1;
            }
            prev = cur;
        }
    }
    let mean_streak_days =
        if streaks == 0 { 0.0 } else { active_addr_days as f64 / streaks as f64 };
    Some(BlockPersistence {
        block: rec.block,
        fd,
        mean_daily_active,
        reuse_ratio: mean_daily_active / fd as f64,
        mean_streak_days,
    })
}

/// Maps a persistence profile (plus the change-detection verdict) to a
/// TTL recommendation.
///
/// The thresholds encode the paper's qualitative classes: cycling
/// pools (high FD, low reuse) invalidate within hours; sticky dynamic
/// blocks within days; static space within weeks; any block whose
/// assignment practice changed expires immediately.
pub fn recommend_ttl(p: &BlockPersistence, practice_changed: bool) -> ReputationTtl {
    if practice_changed {
        ReputationTtl::ExpireNow
    } else if p.fd > 200 && p.reuse_ratio < 0.5 {
        ReputationTtl::Hours
    } else if p.reuse_ratio < 0.85 {
        ReputationTtl::Days
    } else {
        ReputationTtl::Weeks
    }
}

/// Runs the full analysis over a dataset: persistence + TTL per active
/// block, honoring a prior change-detection partition.
pub fn analyze(
    ds: &DailyDataset,
    changes: &ChangePartition,
) -> Vec<(BlockPersistence, ReputationTtl)> {
    let changed: HashSet<Block24> = changes.major.iter().copied().collect();
    ds.blocks
        .iter()
        .filter_map(|rec| block_persistence(rec, 0..ds.num_days))
        .map(|p| {
            let ttl = recommend_ttl(&p, changed.contains(&p.block));
            (p, ttl)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn static_block_is_sticky() {
        let mut b = DailyDatasetBuilder::new(8);
        for host in 0..30u8 {
            for d in 0..8 {
                b.record_hits(d, Block24::of(a("10.0.0.0")).addr(host), 1);
            }
        }
        let ds = b.finish();
        let p = block_persistence(&ds.blocks[0], 0..8).unwrap();
        assert_eq!(p.fd, 30);
        assert!((p.reuse_ratio - 1.0).abs() < 1e-12);
        assert!((p.mean_streak_days - 8.0).abs() < 1e-12);
        assert_eq!(recommend_ttl(&p, false), ReputationTtl::Weeks);
        assert_eq!(recommend_ttl(&p, true), ReputationTtl::ExpireNow);
    }

    #[test]
    fn cycling_pool_gets_hours() {
        // Every address active exactly one day: FD 256, reuse 1/8.
        let mut b = DailyDatasetBuilder::new(8);
        let block = Block24::of(a("10.0.1.0"));
        for host in 0..=255u8 {
            b.record_hits(host as usize % 8, block.addr(host), 1);
        }
        let ds = b.finish();
        let p = block_persistence(&ds.blocks[0], 0..8).unwrap();
        assert_eq!(p.fd, 256);
        assert!(p.reuse_ratio < 0.2);
        assert!((p.mean_streak_days - 1.0).abs() < 1e-12);
        assert_eq!(recommend_ttl(&p, false), ReputationTtl::Hours);
    }

    #[test]
    fn intermittent_static_space_gets_days() {
        // 100 fixed addresses active 6 of 8 days: reuse 0.75.
        let mut b = DailyDatasetBuilder::new(8);
        let block = Block24::of(a("10.0.2.0"));
        for host in 0..100u8 {
            for d in 0..6 {
                b.record_hits(d, block.addr(host), 1);
            }
        }
        let ds = b.finish();
        let p = block_persistence(&ds.blocks[0], 0..8).unwrap();
        assert!((p.reuse_ratio - 0.75).abs() < 1e-12);
        assert_eq!(recommend_ttl(&p, false), ReputationTtl::Days);
    }

    #[test]
    fn empty_block_yields_none() {
        let mut b = DailyDatasetBuilder::new(4);
        b.record_hits(0, a("10.0.0.1"), 1);
        let ds = b.finish();
        assert!(block_persistence(&ds.blocks[0], 1..4).is_none());
    }

    #[test]
    fn analyze_honors_change_partition() {
        let mut b = DailyDatasetBuilder::new(8);
        // Stable sticky block.
        for host in 0..30u8 {
            for d in 0..8 {
                b.record_hits(d, Block24::of(a("10.0.0.0")).addr(host), 1);
            }
        }
        // Block that flips from empty to full at day 4 (major change).
        for host in 0..=255u8 {
            for d in 4..8 {
                b.record_hits(d, Block24::of(a("10.0.1.0")).addr(host), 1);
            }
        }
        let ds = b.finish();
        let part = change::detect(&ds, 4, 0.25);
        let results = analyze(&ds, &part);
        assert_eq!(results.len(), 2);
        let flipped = results
            .iter()
            .find(|(p, _)| p.block == Block24::of(a("10.0.1.0")))
            .unwrap();
        assert_eq!(flipped.1, ReputationTtl::ExpireNow);
        let steady = results
            .iter()
            .find(|(p, _)| p.block == Block24::of(a("10.0.0.0")))
            .unwrap();
        assert_eq!(steady.1, ReputationTtl::Weeks);
    }

    #[test]
    fn streaks_count_runs_not_days() {
        // One address alternating on/off: 4 streaks of length 1.
        let mut b = DailyDatasetBuilder::new(8);
        for d in (0..8).step_by(2) {
            b.record_hits(d, a("10.0.3.1"), 1);
        }
        let ds = b.finish();
        let p = block_persistence(&ds.blocks[0], 0..8).unwrap();
        assert!((p.mean_streak_days - 1.0).abs() < 1e-12);
    }
}
