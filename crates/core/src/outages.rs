//! Whole-block outage detection.
//!
//! The paper's related work studies Internet reliability through
//! address activity (Quan et al.'s Trinocular; Padmanabhan et al.
//! correlate address changes with outages at customer premises). The
//! same activity matrices this library builds for utilization also
//! expose *outages*: a block that is steadily active, goes completely
//! dark for days, and then returns did not change its assignment
//! practice — it lost connectivity. This module finds such episodes
//! and distinguishes them from lifecycle changes (which change
//! detection in [`crate::change`] owns).

use crate::dataset::{BlockRecord, DailyDataset};
use ipactive_net::Block24;

/// One detected outage episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Outage {
    /// The affected block.
    pub block: Block24,
    /// First dark day (0-based dataset day).
    pub start: usize,
    /// Number of consecutive dark days.
    pub days: usize,
}

/// Detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageParams {
    /// Minimum dark streak to call an outage (paper-adjacent studies
    /// use hours; at day granularity 2+ days is a strong signal).
    pub min_days: usize,
    /// Minimum mean daily active addresses in the surrounding active
    /// period — a nearly-idle block going quiet is noise, not outage.
    pub min_baseline: f64,
}

impl Default for OutageParams {
    fn default() -> Self {
        OutageParams { min_days: 2, min_baseline: 8.0 }
    }
}

/// Finds outage episodes in one block: maximal all-addresses-dark
/// day runs, strictly *inside* the block's active span (dark leading
/// and trailing edges are lifecycle, not outage).
pub fn block_outages(
    rec: &BlockRecord,
    num_days: usize,
    params: &OutageParams,
) -> Vec<Outage> {
    // Daily activity counts.
    let daily: Vec<u32> = (0..num_days).map(|d| rec.active_on(d)).collect();
    let first_active = match daily.iter().position(|&n| n > 0) {
        Some(i) => i,
        None => return Vec::new(),
    };
    let last_active = daily.iter().rposition(|&n| n > 0).expect("nonempty");
    let active_days = daily[first_active..=last_active]
        .iter()
        .filter(|&&n| n > 0)
        .count()
        .max(1);
    let baseline = daily[first_active..=last_active]
        .iter()
        .map(|&n| n as f64)
        .sum::<f64>()
        / active_days as f64;
    if baseline < params.min_baseline {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut dark_start: Option<usize> = None;
    for (d, &count) in daily
        .iter()
        .enumerate()
        .take(last_active + 1)
        .skip(first_active)
    {
        if count == 0 {
            dark_start.get_or_insert(d);
        } else if let Some(start) = dark_start.take() {
            if d - start >= params.min_days {
                out.push(Outage { block: rec.block, start, days: d - start });
            }
        }
    }
    // A dark run touching last_active can't exist (last_active > 0).
    out
}

/// Finds outages across the whole dataset, ordered by block then day.
pub fn detect(ds: &DailyDataset, params: &OutageParams) -> Vec<Outage> {
    ds.blocks
        .iter()
        .flat_map(|rec| block_outages(rec, ds.num_days, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DailyDatasetBuilder;
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn block_with_gap(gap: core::ops::Range<usize>) -> DailyDataset {
        let mut b = DailyDatasetBuilder::new(14);
        let block = Block24::of(a("10.0.0.0"));
        for host in 0..30u8 {
            for d in 0..14 {
                if !gap.contains(&d) {
                    b.record_hits(d, block.addr(host), 1);
                }
            }
        }
        b.finish()
    }

    #[test]
    fn detects_mid_window_outage() {
        let ds = block_with_gap(5..9);
        let outages = detect(&ds, &OutageParams::default());
        assert_eq!(outages.len(), 1);
        assert_eq!(outages[0].start, 5);
        assert_eq!(outages[0].days, 4);
    }

    #[test]
    fn single_dark_day_is_ignored_by_default() {
        let ds = block_with_gap(5..6);
        assert!(detect(&ds, &OutageParams::default()).is_empty());
        // But a 1-day-min parameterization sees it.
        let p = OutageParams { min_days: 1, ..Default::default() };
        assert_eq!(detect(&ds, &p).len(), 1);
    }

    #[test]
    fn lifecycle_edges_are_not_outages() {
        // Block starts late and ends early: dark edges are lifecycle.
        let mut b = DailyDatasetBuilder::new(14);
        let block = Block24::of(a("10.0.0.0"));
        for host in 0..30u8 {
            for d in 4..10 {
                b.record_hits(d, block.addr(host), 1);
            }
        }
        let ds = b.finish();
        assert!(detect(&ds, &OutageParams::default()).is_empty());
    }

    #[test]
    fn idle_blocks_do_not_alarm() {
        // Two lonely addresses flickering: below the baseline gate.
        let mut b = DailyDatasetBuilder::new(14);
        b.record_hits(0, a("10.0.0.1"), 1);
        b.record_hits(9, a("10.0.0.2"), 1);
        let ds = b.finish();
        assert!(detect(&ds, &OutageParams::default()).is_empty());
    }

    #[test]
    fn multiple_outages_in_one_block() {
        let mut b = DailyDatasetBuilder::new(14);
        let block = Block24::of(a("10.0.0.0"));
        for host in 0..30u8 {
            for d in 0..14 {
                if !(3..5).contains(&d) && !(8..11).contains(&d) {
                    b.record_hits(d, block.addr(host), 1);
                }
            }
        }
        let ds = b.finish();
        let outages = detect(&ds, &OutageParams::default());
        assert_eq!(outages.len(), 2);
        assert_eq!((outages[0].start, outages[0].days), (3, 2));
        assert_eq!((outages[1].start, outages[1].days), (8, 3));
    }

    #[test]
    fn empty_dataset_is_quiet() {
        let ds = DailyDatasetBuilder::new(14).finish();
        assert!(detect(&ds, &OutageParams::default()).is_empty());
    }
}
