//! Sorted address sets with range queries.
//!
//! Snapshot-level analyses (up/down events, visibility joins, BGP
//! correlation) operate on large immutable sets of active addresses.
//! [`AddrSet`] stores them as a sorted, deduplicated `Vec<Addr>`:
//! membership and prefix-range emptiness are binary searches, and set
//! algebra is a linear merge — cache-friendly and far smaller than a
//! hash set at the hundreds-of-millions scale the paper works at.

use crate::{Addr, Prefix};

/// An immutable, sorted, deduplicated set of IPv4 addresses.
///
/// ```
/// use ipactive_net::{Addr, AddrSet};
/// let set = AddrSet::from_unsorted(vec![
///     "10.0.0.2".parse().unwrap(),
///     "10.0.0.1".parse().unwrap(),
///     "10.0.0.2".parse().unwrap(),
/// ]);
/// assert_eq!(set.len(), 2);
/// assert!(set.contains("10.0.0.1".parse().unwrap()));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AddrSet {
    addrs: Vec<Addr>,
}

impl AddrSet {
    /// An empty set.
    pub fn new() -> Self {
        AddrSet { addrs: Vec::new() }
    }

    /// Builds a set from arbitrary input, sorting and deduplicating.
    pub fn from_unsorted(mut addrs: Vec<Addr>) -> Self {
        addrs.sort_unstable();
        addrs.dedup();
        AddrSet { addrs }
    }

    /// Builds a set from input that is already sorted and deduplicated.
    ///
    /// # Panics
    /// In debug builds, panics if the invariant does not hold.
    pub fn from_sorted(addrs: Vec<Addr>) -> Self {
        debug_assert!(addrs.windows(2).all(|w| w[0] < w[1]), "input not sorted/deduped");
        AddrSet { addrs }
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, addr: Addr) -> bool {
        self.addrs.binary_search(&addr).is_ok()
    }

    /// Number of set members inside `prefix`.
    pub fn count_in(&self, prefix: Prefix) -> usize {
        let lo = self.addrs.partition_point(|&a| a < prefix.network());
        let hi = self.addrs.partition_point(|&a| a <= prefix.last());
        hi - lo
    }

    /// Whether any set member falls inside `prefix`.
    ///
    /// This is the hot primitive behind event sizing (Section 4.2): it
    /// runs two binary searches and never materializes the range.
    pub fn any_in(&self, prefix: Prefix) -> bool {
        let lo = self.addrs.partition_point(|&a| a < prefix.network());
        lo < self.addrs.len() && self.addrs[lo] <= prefix.last()
    }

    /// The members of the set, sorted ascending.
    pub fn as_slice(&self) -> &[Addr] {
        &self.addrs
    }

    /// Iterator over members, ascending.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        self.addrs.iter().copied()
    }

    /// Set union via linear merge.
    pub fn union(&self, other: &AddrSet) -> AddrSet {
        let mut out = Vec::with_capacity(self.len().max(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.addrs.len() && j < other.addrs.len() {
            match self.addrs[i].cmp(&other.addrs[j]) {
                core::cmp::Ordering::Less => {
                    out.push(self.addrs[i]);
                    i += 1;
                }
                core::cmp::Ordering::Greater => {
                    out.push(other.addrs[j]);
                    j += 1;
                }
                core::cmp::Ordering::Equal => {
                    out.push(self.addrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.addrs[i..]);
        out.extend_from_slice(&other.addrs[j..]);
        AddrSet { addrs: out }
    }

    /// Set intersection via linear merge.
    pub fn intersect(&self, other: &AddrSet) -> AddrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.addrs.len() && j < other.addrs.len() {
            match self.addrs[i].cmp(&other.addrs[j]) {
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => {
                    out.push(self.addrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        AddrSet { addrs: out }
    }

    /// Set difference (`self \ other`) via linear merge.
    ///
    /// `a.difference(&b)` yields exactly the *up events* from snapshot
    /// `b` to snapshot `a` (present now, absent before), and the *down
    /// events* when the arguments are swapped.
    pub fn difference(&self, other: &AddrSet) -> AddrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.addrs.len() && j < other.addrs.len() {
            match self.addrs[i].cmp(&other.addrs[j]) {
                core::cmp::Ordering::Less => {
                    out.push(self.addrs[i]);
                    i += 1;
                }
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.addrs[i..]);
        AddrSet { addrs: out }
    }

    /// Size of the intersection without materializing it.
    pub fn intersect_len(&self, other: &AddrSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.addrs.len() && j < other.addrs.len() {
            match self.addrs[i].cmp(&other.addrs[j]) {
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// The minimal ordered list of CIDR prefixes covering *exactly*
    /// this set (every member inside some prefix, no non-member inside
    /// any). Contiguous runs of addresses compress into large blocks —
    /// turning raw event sets into operator-readable prefix lists.
    ///
    /// ```
    /// use ipactive_net::{Addr, AddrSet};
    /// let set: AddrSet = (0u32..512).map(|i| Addr::new(0x0A000000 + i)).collect();
    /// let ps = set.to_prefixes();
    /// assert_eq!(ps.len(), 1);
    /// assert_eq!(ps[0].to_string(), "10.0.0.0/23");
    /// ```
    pub fn to_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.addrs.len() {
            // Find the maximal consecutive run starting at i.
            let start = self.addrs[i];
            let mut j = i + 1;
            while j < self.addrs.len()
                && self.addrs[j].bits() as u64 == self.addrs[j - 1].bits() as u64 + 1
            {
                j += 1;
            }
            out.extend(Prefix::cover_range(start, (j - i) as u64));
            i = j;
        }
        out
    }

    /// The distinct `/24` blocks touched by this set, ascending.
    pub fn blocks24(&self) -> Vec<crate::Block24> {
        let mut out: Vec<crate::Block24> = Vec::new();
        for &a in &self.addrs {
            let b = crate::Block24::of(a);
            if out.last() != Some(&b) {
                out.push(b);
            }
        }
        out
    }
}

impl FromIterator<Addr> for AddrSet {
    fn from_iter<T: IntoIterator<Item = Addr>>(iter: T) -> Self {
        AddrSet::from_unsorted(iter.into_iter().collect())
    }
}

/// Streaming block-wise builder for [`AddrSet`] (see
/// [`crate::SetBuilder`]): blocks arrive ascending, so the vector is
/// appended in order and needs no sort or counting pre-pass.
pub struct RefSetBuilder {
    addrs: Vec<Addr>,
}

impl crate::SetBuilder for RefSetBuilder {
    type Set = AddrSet;

    fn new() -> Self {
        RefSetBuilder { addrs: Vec::new() }
    }

    fn push_block(&mut self, block: crate::Block24, bits: &crate::AddrBits256) {
        debug_assert!(
            !self.addrs.last().is_some_and(|a| crate::Block24::of(*a).id() >= block.id()),
            "blocks must arrive in ascending order"
        );
        self.addrs.extend(bits.iter().map(|h| block.addr(h)));
    }

    fn finish(self) -> AddrSet {
        AddrSet { addrs: self.addrs }
    }
}

impl crate::ActiveSet for AddrSet {
    type Iter<'a> = core::iter::Copied<core::slice::Iter<'a, Addr>>;
    type Builder = RefSetBuilder;

    fn backend_name() -> &'static str {
        "ref"
    }

    fn empty() -> Self {
        AddrSet::new()
    }

    fn from_sorted_vec(addrs: Vec<Addr>) -> Self {
        AddrSet::from_sorted(addrs)
    }

    fn len(&self) -> usize {
        self.addrs.len()
    }

    fn contains(&self, addr: Addr) -> bool {
        AddrSet::contains(self, addr)
    }

    fn count_in(&self, prefix: Prefix) -> usize {
        AddrSet::count_in(self, prefix)
    }

    fn any_in(&self, prefix: Prefix) -> bool {
        AddrSet::any_in(self, prefix)
    }

    fn iter(&self) -> Self::Iter<'_> {
        self.addrs.iter().copied()
    }

    fn insert(&mut self, addr: Addr) -> bool {
        match self.addrs.binary_search(&addr) {
            Ok(_) => false,
            Err(i) => {
                self.addrs.insert(i, addr);
                true
            }
        }
    }

    fn union(&self, other: &Self) -> Self {
        AddrSet::union(self, other)
    }

    fn intersect(&self, other: &Self) -> Self {
        AddrSet::intersect(self, other)
    }

    fn difference(&self, other: &Self) -> Self {
        AddrSet::difference(self, other)
    }

    fn intersect_len(&self, other: &Self) -> usize {
        AddrSet::intersect_len(self, other)
    }

    fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.addrs.capacity() * core::mem::size_of::<Addr>()
    }

    fn blocks24(&self) -> Vec<crate::Block24> {
        AddrSet::blocks24(self)
    }

    fn to_prefixes(&self) -> Vec<Prefix> {
        AddrSet::to_prefixes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn set(addrs: &[&str]) -> AddrSet {
        addrs.iter().map(|s| a(s)).collect()
    }

    #[test]
    fn from_unsorted_dedups_and_sorts() {
        let s = set(&["9.9.9.9", "1.1.1.1", "9.9.9.9", "5.5.5.5"]);
        assert_eq!(s.len(), 3);
        let v: Vec<String> = s.iter().map(|a| a.to_string()).collect();
        assert_eq!(v, vec!["1.1.1.1", "5.5.5.5", "9.9.9.9"]);
    }

    #[test]
    fn contains_and_range_queries() {
        let s = set(&["10.0.0.5", "10.0.0.200", "10.0.1.3", "10.0.3.1"]);
        assert!(s.contains(a("10.0.0.200")));
        assert!(!s.contains(a("10.0.0.201")));
        let p24: Prefix = "10.0.0.0/24".parse().unwrap();
        assert_eq!(s.count_in(p24), 2);
        assert!(s.any_in(p24));
        let p22: Prefix = "10.0.0.0/22".parse().unwrap();
        assert_eq!(s.count_in(p22), 4);
        let empty: Prefix = "10.0.2.0/24".parse().unwrap();
        assert_eq!(s.count_in(empty), 0);
        assert!(!s.any_in(empty));
    }

    #[test]
    fn any_in_at_vector_end() {
        let s = set(&["10.0.0.5"]);
        assert!(!s.any_in("10.0.1.0/24".parse().unwrap()));
        assert!(s.any_in("10.0.0.0/24".parse().unwrap()));
        assert!(s.any_in("0.0.0.0/0".parse().unwrap()));
        assert!(AddrSet::new().is_empty());
        assert!(!AddrSet::new().any_in("0.0.0.0/0".parse().unwrap()));
    }

    #[test]
    fn union_intersection_difference() {
        let x = set(&["1.0.0.1", "1.0.0.2", "1.0.0.3"]);
        let y = set(&["1.0.0.3", "1.0.0.4"]);
        assert_eq!(x.union(&y).len(), 4);
        assert_eq!(x.intersect(&y).len(), 1);
        assert_eq!(x.intersect_len(&y), 1);
        let up = y.difference(&x); // present in y, absent in x
        assert_eq!(up.len(), 1);
        assert!(up.contains(a("1.0.0.4")));
        let down = x.difference(&y);
        assert_eq!(down.len(), 2);
    }

    #[test]
    fn difference_with_disjoint_and_empty() {
        let x = set(&["1.0.0.1"]);
        let y = set(&["2.0.0.1"]);
        assert_eq!(x.difference(&y), x);
        assert_eq!(x.difference(&AddrSet::new()), x);
        assert_eq!(AddrSet::new().difference(&x), AddrSet::new());
    }

    #[test]
    fn to_prefixes_compresses_runs() {
        // A /25-aligned run of 128, a lone address, and a pair.
        let mut addrs: Vec<Addr> = (0u32..128).map(|i| Addr::new(0x0A000000 + i)).collect();
        addrs.push(a("10.0.1.7"));
        addrs.push(a("10.0.2.4"));
        addrs.push(a("10.0.2.5"));
        let set = AddrSet::from_unsorted(addrs);
        let ps: Vec<String> = set.to_prefixes().iter().map(|p| p.to_string()).collect();
        assert_eq!(ps, vec!["10.0.0.0/25", "10.0.1.7/32", "10.0.2.4/31"]);
        assert!(AddrSet::new().to_prefixes().is_empty());
    }

    #[test]
    fn blocks24_dedups_consecutive() {
        let s = set(&["10.0.0.1", "10.0.0.2", "10.0.1.9", "10.2.0.1"]);
        let blocks = s.blocks24();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].network().to_string(), "10.0.0.0");
        assert_eq!(blocks[2].network().to_string(), "10.2.0.0");
    }
}
