//! Tiered compressed address sets (Roaring-style) and the per-prefix
//! density index.
//!
//! [`TieredSet`] chunks the IPv4 space by `/24`: each non-empty block
//! becomes one chunk keyed by its top 24 bits, stored in whichever of
//! three representations is smallest for its contents:
//!
//! * **Sparse** — an explicit sorted array of host octets, for up to
//!   [`SPARSE_MAX`] members (≤ 16 bytes);
//! * **Runs** — a list of inclusive `(start, end)` host runs, for up
//!   to [`RUNS_MAX`] maximal runs (≤ 16 bytes) — the shape DHCP pools
//!   and fully-lit blocks produce;
//! * **Dense** — the full 256-bit bitmap (32 bytes), for everything
//!   else.
//!
//! The representation is a *pure function of chunk content* (see
//! [`canonical_repr`]): two sets with equal membership are structurally
//! identical, so the derived `PartialEq` is content equality and
//! snapshots hash/compare deterministically. The property suite in
//! `tests/tiered_prop.rs` drives arbitrary operation sequences against
//! the sorted-`Vec` reference ([`crate::RefSet`]) and asserts
//! bit-identical results, plus explicit dense↔sparse threshold
//! crossings in both directions.
//!
//! Set algebra walks the two chunk lists in one linear merge; matching
//! chunks are combined through the 256-bit bitmap and re-canonicalized,
//! so every operation's output is canonical by construction.
//!
//! [`PrefixDensity`] is the counting index over a snapshot: one hash
//! map per prefix length 0..=24 from prefix key to active-address
//! count, giving O(1) density queries for any /8–/24 (indeed /0–/24)
//! prefix — the primitive behind prefix-level utilization views.

use std::collections::HashMap;

use crate::active::{ActiveSet, SetBuilder};
use crate::{Addr, AddrBits256, Block24, Prefix};

/// Largest chunk population stored as an explicit sparse array.
pub const SPARSE_MAX: usize = 16;

/// Largest number of maximal runs stored as a run list.
pub const RUNS_MAX: usize = 8;

/// One `/24` chunk's physical representation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Repr {
    /// Sorted host octets, `1..=SPARSE_MAX` of them.
    Sparse(Vec<u8>),
    /// Inclusive `(start, end)` maximal runs, ascending, non-adjacent.
    Runs(Vec<(u8, u8)>),
    /// Full 256-bit bitmap.
    Dense(Box<AddrBits256>),
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Chunk {
    /// Top 24 bits of every member address.
    key: u32,
    /// Member count (1..=256); cached so len/density never rescan.
    count: u16,
    repr: Repr,
}

/// Number of maximal runs of consecutive set bits in `bits`.
///
/// A run starts at every set bit whose predecessor is clear; counting
/// starts word-wise costs four popcounts instead of a 256-step scan.
fn run_count(bits: &AddrBits256) -> u32 {
    let mut starts = 0u32;
    let mut carry = 0u64; // MSB of the previous word
    for w in bits.words() {
        starts += (w & !((w << 1) | carry)).count_ones();
        carry = w >> 63;
    }
    starts
}

/// Materializes the maximal runs of `bits` as inclusive pairs.
fn runs_of(bits: &AddrBits256) -> Vec<(u8, u8)> {
    let mut out = Vec::new();
    let mut cur: Option<(u8, u8)> = None;
    for h in bits.iter() {
        match cur {
            Some((s, e)) if e as u16 + 1 == h as u16 => cur = Some((s, h)),
            Some(done) => {
                out.push(done);
                cur = Some((h, h));
            }
            None => cur = Some((h, h)),
        }
    }
    out.extend(cur);
    out
}

/// The canonical representation for a chunk with the given contents,
/// or `None` if the chunk is empty (empty chunks are never stored).
///
/// Canonical choice: sparse while the population fits, then runs while
/// the run list fits, else dense. Being a pure function of content is
/// what makes equal sets structurally equal.
fn canonical_repr(bits: &AddrBits256) -> Option<(Repr, u16)> {
    let n = bits.count();
    if n == 0 {
        return None;
    }
    let repr = if n as usize <= SPARSE_MAX {
        Repr::Sparse(bits.iter().collect())
    } else if run_count(bits) as usize <= RUNS_MAX {
        Repr::Runs(runs_of(bits))
    } else {
        Repr::Dense(Box::new(*bits))
    };
    Some((repr, n as u16))
}

impl Repr {
    fn to_bits(&self) -> AddrBits256 {
        match self {
            Repr::Sparse(hosts) => hosts.iter().copied().collect(),
            Repr::Runs(runs) => {
                let mut bits = AddrBits256::new();
                for &(s, e) in runs {
                    bits.set_range(s, e);
                }
                bits
            }
            Repr::Dense(bits) => **bits,
        }
    }

    fn contains(&self, h: u8) -> bool {
        match self {
            Repr::Sparse(hosts) => hosts.binary_search(&h).is_ok(),
            Repr::Runs(runs) => runs.iter().any(|&(s, e)| s <= h && h <= e),
            Repr::Dense(bits) => bits.get(h),
        }
    }

    /// Members with host octet in `lo..=hi`.
    fn count_range(&self, lo: u8, hi: u8) -> usize {
        match self {
            Repr::Sparse(hosts) => {
                let a = hosts.partition_point(|&h| h < lo);
                let b = hosts.partition_point(|&h| h <= hi);
                b - a
            }
            Repr::Runs(runs) => runs
                .iter()
                .map(|&(s, e)| {
                    let s = s.max(lo);
                    let e = e.min(hi);
                    if s <= e { (e - s) as usize + 1 } else { 0 }
                })
                .sum(),
            Repr::Dense(bits) => {
                (0..4usize)
                    .map(|w| {
                        let word = bits.words()[w];
                        let base = (w as u16) << 6;
                        // Clip the 64-bit word to [lo, hi].
                        let wlo = (lo as u16).max(base).min(base + 64) - base;
                        let whi = ((hi as u16 + 1).max(base).min(base + 64)) - base;
                        if wlo >= whi {
                            0
                        } else {
                            let mask = if whi - wlo == 64 {
                                u64::MAX
                            } else {
                                ((1u64 << (whi - wlo)) - 1) << wlo
                            };
                            (word & mask).count_ones() as usize
                        }
                    })
                    .sum()
            }
        }
    }

    /// Largest member `≤ h`, if any.
    fn pred(&self, h: u8) -> Option<u8> {
        match self {
            Repr::Sparse(hosts) => {
                let i = hosts.partition_point(|&x| x <= h);
                i.checked_sub(1).map(|i| hosts[i])
            }
            Repr::Runs(runs) => {
                let mut best = None;
                for &(s, e) in runs {
                    if s > h {
                        break;
                    }
                    best = Some(e.min(h));
                }
                best
            }
            Repr::Dense(bits) => {
                let words = bits.words();
                let mut wi = (h >> 6) as usize;
                let off = h & 63;
                let mask = if off == 63 { u64::MAX } else { (1u64 << (off + 1)) - 1 };
                let mut w = words[wi] & mask;
                loop {
                    if w != 0 {
                        return Some(((wi as u8) << 6) | (63 - w.leading_zeros() as u8));
                    }
                    wi = wi.checked_sub(1)?;
                    w = words[wi];
                }
            }
        }
    }

    /// Smallest member `≥ h`, if any.
    fn succ(&self, h: u8) -> Option<u8> {
        match self {
            Repr::Sparse(hosts) => {
                let i = hosts.partition_point(|&x| x < h);
                hosts.get(i).copied()
            }
            Repr::Runs(runs) => {
                for &(s, e) in runs {
                    if e >= h {
                        return Some(s.max(h));
                    }
                }
                None
            }
            Repr::Dense(bits) => {
                let words = bits.words();
                let mut wi = (h >> 6) as usize;
                let mut w = words[wi] & (u64::MAX << (h & 63));
                loop {
                    if w != 0 {
                        return Some(((wi as u8) << 6) | w.trailing_zeros() as u8);
                    }
                    wi += 1;
                    if wi == 4 {
                        return None;
                    }
                    w = words[wi];
                }
            }
        }
    }

    /// Smallest member (chunks are never empty).
    fn first(&self) -> u8 {
        match self {
            Repr::Sparse(hosts) => hosts[0],
            Repr::Runs(runs) => runs[0].0,
            Repr::Dense(bits) => bits.iter().next().expect("dense chunk is non-empty"),
        }
    }

    /// Largest member (chunks are never empty).
    fn last(&self) -> u8 {
        match self {
            Repr::Sparse(hosts) => *hosts.last().expect("sparse chunk is non-empty"),
            Repr::Runs(runs) => runs.last().expect("runs chunk is non-empty").1,
            Repr::Dense(_) => self.pred(255).expect("dense chunk is non-empty"),
        }
    }

    /// Heap bytes held by this representation.
    fn heap_bytes(&self) -> usize {
        match self {
            Repr::Sparse(hosts) => hosts.capacity(),
            Repr::Runs(runs) => runs.capacity() * 2,
            Repr::Dense(_) => core::mem::size_of::<AddrBits256>(),
        }
    }
}

/// Per-backend chunk representation tallies, for reports and the
/// threshold-transition property tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReprCensus {
    /// Chunks stored as explicit sparse arrays.
    pub sparse: usize,
    /// Chunks stored as run lists.
    pub runs: usize,
    /// Chunks stored as dense bitmaps.
    pub dense: usize,
}

impl ReprCensus {
    /// Total chunks.
    pub fn total(&self) -> usize {
        self.sparse + self.runs + self.dense
    }
}

/// A tiered, chunked set of IPv4 addresses.
///
/// Same observable contract as [`crate::AddrSet`] (the analysis layers
/// use either through [`ActiveSet`]), but resident memory scales with
/// *structure* rather than population: a fully-lit /24 costs ~40 bytes
/// instead of 1 KiB of sorted `u32`s.
///
/// ```
/// use ipactive_net::{ActiveSet, Addr, TieredSet};
/// let set: TieredSet = (0u32..600).map(|i| Addr::new(0x0A000000 + i)).collect();
/// assert_eq!(set.len(), 600);
/// assert!(set.contains(Addr::new(0x0A000101)));
/// assert_eq!(set.repr_census().total(), 3); // spans three /24 chunks
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct TieredSet {
    /// Non-empty chunks, strictly ascending by key.
    chunks: Vec<Chunk>,
    /// Cached total population.
    len: usize,
}

impl core::fmt::Debug for TieredSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let c = self.repr_census();
        write!(
            f,
            "TieredSet[{} addrs in {} chunks: {} sparse, {} runs, {} dense]",
            self.len,
            c.total(),
            c.sparse,
            c.runs,
            c.dense
        )
    }
}

enum MergeKind {
    Union,
    Intersect,
    Difference,
}

/// First index `>= from` whose chunk key is `>= key`.
///
/// Exponential probing then a binary search over the overshoot window:
/// O(log gap) instead of the two-pointer loop's O(gap) when one side of
/// a merge is far ahead (skewed inputs). Requires `chunks[from].key <
/// key`, which is what the merge's unequal-key branches guarantee.
fn gallop(chunks: &[Chunk], from: usize, key: u32) -> usize {
    debug_assert!(chunks[from].key < key);
    let mut lo = from;
    let mut step = 1usize;
    let hi = loop {
        let probe = lo + step;
        if probe >= chunks.len() {
            break chunks.len();
        }
        if chunks[probe].key >= key {
            break probe;
        }
        lo = probe;
        step <<= 1;
    };
    lo + 1 + chunks[lo + 1..hi].partition_point(|c| c.key < key)
}

impl TieredSet {
    /// An empty set.
    pub fn new() -> Self {
        TieredSet::default()
    }

    /// Builds a set from arbitrary input, sorting and deduplicating.
    pub fn from_unsorted(mut addrs: Vec<Addr>) -> Self {
        addrs.sort_unstable();
        addrs.dedup();
        Self::from_sorted(addrs)
    }

    /// Builds a set from input that is already sorted and deduplicated.
    ///
    /// # Panics
    /// In debug builds, panics if the invariant does not hold.
    pub fn from_sorted(addrs: Vec<Addr>) -> Self {
        debug_assert!(addrs.windows(2).all(|w| w[0] < w[1]), "input not sorted/deduped");
        let mut b = TieredSetBuilder::new();
        let mut i = 0;
        while i < addrs.len() {
            let key = addrs[i].bits() >> 8;
            let mut bits = AddrBits256::new();
            while i < addrs.len() && addrs[i].bits() >> 8 == key {
                bits.set(addrs[i].host_index());
                i += 1;
            }
            b.push_block(Block24::new(key), &bits);
        }
        b.finish()
    }

    /// Tallies which representation each chunk currently uses.
    pub fn repr_census(&self) -> ReprCensus {
        let mut c = ReprCensus::default();
        for chunk in &self.chunks {
            match chunk.repr {
                Repr::Sparse(_) => c.sparse += 1,
                Repr::Runs(_) => c.runs += 1,
                Repr::Dense(_) => c.dense += 1,
            }
        }
        c
    }

    /// Number of chunks (distinct non-empty `/24` blocks).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Whether every structural invariant holds: keys strictly
    /// ascending, every chunk canonical for its contents with a correct
    /// cached count, and the cached total consistent. The property
    /// suite calls this after every operation.
    pub fn is_canonical(&self) -> bool {
        let mut total = 0usize;
        let mut prev_key: Option<u32> = None;
        for c in &self.chunks {
            if prev_key.is_some_and(|p| p >= c.key) {
                return false;
            }
            prev_key = Some(c.key);
            let bits = c.repr.to_bits();
            match canonical_repr(&bits) {
                Some((repr, count)) if repr == c.repr && count == c.count => {}
                _ => return false,
            }
            total += c.count as usize;
        }
        total == self.len
    }

    /// Builds the O(1) per-prefix density index for this snapshot.
    ///
    /// Costs one pass over the chunks per level; the result is
    /// independent of representation tiers (pinned against the
    /// reference backend by the property suite).
    pub fn prefix_density(&self) -> PrefixDensity {
        PrefixDensity::from_block_counts(
            self.chunks.iter().map(|c| (c.key, c.count as u64)),
        )
    }

    fn merge(&self, other: &Self, kind: MergeKind) -> Self {
        let mut chunks = Vec::with_capacity(match kind {
            MergeKind::Union => self.chunks.len() + other.chunks.len(),
            MergeKind::Intersect => self.chunks.len().min(other.chunks.len()),
            MergeKind::Difference => self.chunks.len(),
        });
        let mut len = 0usize;
        let mut push = |c: Chunk| {
            len += c.count as usize;
            chunks.push(c);
        };
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (a, b) = (&self.chunks[i], &other.chunks[j]);
            match a.key.cmp(&b.key) {
                core::cmp::Ordering::Less => {
                    // Gallop to the next possible key match and handle
                    // the whole skipped run at once.
                    let stop = gallop(&self.chunks, i, b.key);
                    if !matches!(kind, MergeKind::Intersect) {
                        self.chunks[i..stop].iter().for_each(|c| push(c.clone()));
                    }
                    i = stop;
                }
                core::cmp::Ordering::Greater => {
                    let stop = gallop(&other.chunks, j, a.key);
                    if matches!(kind, MergeKind::Union) {
                        other.chunks[j..stop].iter().for_each(|c| push(c.clone()));
                    }
                    j = stop;
                }
                core::cmp::Ordering::Equal => {
                    if a.repr == b.repr {
                        // Identical chunks (steady blocks dominate
                        // real window pairs): the result is the chunk
                        // itself for union/intersect and empty for
                        // difference — no bitmap round-trip, and the
                        // clone is already canonical.
                        if !matches!(kind, MergeKind::Difference) {
                            push(a.clone());
                        }
                        i += 1;
                        j += 1;
                        continue;
                    }
                    let (x, y) = (a.repr.to_bits(), b.repr.to_bits());
                    let bits = match kind {
                        MergeKind::Union => x.union(&y),
                        MergeKind::Intersect => x.intersect(&y),
                        MergeKind::Difference => x.difference(&y),
                    };
                    if let Some((repr, count)) = canonical_repr(&bits) {
                        push(Chunk { key: a.key, count, repr });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        match kind {
            MergeKind::Union => {
                self.chunks[i..].iter().for_each(|c| push(c.clone()));
                other.chunks[j..].iter().for_each(|c| push(c.clone()));
            }
            MergeKind::Difference => {
                self.chunks[i..].iter().for_each(|c| push(c.clone()));
            }
            MergeKind::Intersect => {}
        }
        TieredSet { chunks, len }
    }

    fn chunk_index(&self, key: u32) -> Result<usize, usize> {
        self.chunks.binary_search_by_key(&key, |c| c.key)
    }
}

impl FromIterator<Addr> for TieredSet {
    fn from_iter<T: IntoIterator<Item = Addr>>(iter: T) -> Self {
        TieredSet::from_unsorted(iter.into_iter().collect())
    }
}

/// Streaming block-wise builder for [`TieredSet`].
///
/// Chunks materialize straight into canonical form, so construction
/// never allocates a full bitmap for blocks that end up sparse — the
/// fix for the old counting-pass + `Vec::with_capacity` pre-sizing in
/// the dataset layers.
pub struct TieredSetBuilder {
    chunks: Vec<Chunk>,
    len: usize,
}

impl SetBuilder for TieredSetBuilder {
    type Set = TieredSet;

    fn new() -> Self {
        TieredSetBuilder { chunks: Vec::new(), len: 0 }
    }

    fn push_block(&mut self, block: Block24, bits: &AddrBits256) {
        debug_assert!(
            !self.chunks.last().is_some_and(|c| c.key >= block.id()),
            "blocks must arrive in ascending order"
        );
        if let Some((repr, count)) = canonical_repr(bits) {
            self.len += count as usize;
            self.chunks.push(Chunk { key: block.id(), count, repr });
        }
    }

    fn finish(self) -> TieredSet {
        TieredSet { chunks: self.chunks, len: self.len }
    }
}

/// Ascending iterator over a [`TieredSet`]'s members.
pub struct TieredIter<'a> {
    chunks: &'a [Chunk],
    next_chunk: usize,
    cur: Option<(u32, HostIter<'a>)>,
}

enum HostIter<'a> {
    Sparse(core::slice::Iter<'a, u8>),
    Runs { runs: core::slice::Iter<'a, (u8, u8)>, pos: u16, end: u16 },
    Dense { words: [u64; 4], w: usize },
}

impl HostIter<'_> {
    fn of(repr: &Repr) -> HostIter<'_> {
        match repr {
            Repr::Sparse(hosts) => HostIter::Sparse(hosts.iter()),
            // pos > end marks "fetch the next run".
            Repr::Runs(runs) => HostIter::Runs { runs: runs.iter(), pos: 1, end: 0 },
            Repr::Dense(bits) => HostIter::Dense { words: *bits.words(), w: 0 },
        }
    }

    fn next(&mut self) -> Option<u8> {
        match self {
            HostIter::Sparse(it) => it.next().copied(),
            HostIter::Runs { runs, pos, end } => {
                if *pos > *end {
                    let &(s, e) = runs.next()?;
                    *pos = s as u16;
                    *end = e as u16;
                }
                let h = *pos as u8;
                *pos += 1;
                Some(h)
            }
            HostIter::Dense { words, w } => loop {
                if *w == 4 {
                    return None;
                }
                if words[*w] == 0 {
                    *w += 1;
                    continue;
                }
                let bit = words[*w].trailing_zeros() as u8;
                words[*w] &= words[*w] - 1;
                return Some(((*w as u8) << 6) | bit);
            },
        }
    }
}

impl Iterator for TieredIter<'_> {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        loop {
            if let Some((base, hosts)) = &mut self.cur {
                if let Some(h) = hosts.next() {
                    return Some(Addr::new(*base | h as u32));
                }
                self.cur = None;
            }
            let c = self.chunks.get(self.next_chunk)?;
            self.next_chunk += 1;
            self.cur = Some((c.key << 8, HostIter::of(&c.repr)));
        }
    }
}

impl ActiveSet for TieredSet {
    type Iter<'a> = TieredIter<'a>;
    type Builder = TieredSetBuilder;

    fn backend_name() -> &'static str {
        "tiered"
    }

    fn empty() -> Self {
        TieredSet::new()
    }

    fn from_sorted_vec(addrs: Vec<Addr>) -> Self {
        TieredSet::from_sorted(addrs)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn contains(&self, addr: Addr) -> bool {
        match self.chunk_index(addr.bits() >> 8) {
            Ok(i) => self.chunks[i].repr.contains(addr.host_index()),
            Err(_) => false,
        }
    }

    fn count_in(&self, prefix: Prefix) -> usize {
        let (net, last) = (prefix.network().bits(), prefix.last().bits());
        if prefix.len() >= 24 {
            // At most one chunk; count the host sub-range inside it.
            match self.chunk_index(net >> 8) {
                Ok(i) => self.chunks[i].repr.count_range(net as u8, last as u8),
                Err(_) => 0,
            }
        } else {
            // /0../23 prefixes cover whole chunks: sum cached counts.
            let lo = self.chunks.partition_point(|c| c.key < net >> 8);
            let hi = self.chunks.partition_point(|c| c.key <= last >> 8);
            self.chunks[lo..hi].iter().map(|c| c.count as usize).sum()
        }
    }

    fn any_in(&self, prefix: Prefix) -> bool {
        let (net, last) = (prefix.network().bits(), prefix.last().bits());
        if prefix.len() >= 24 {
            match self.chunk_index(net >> 8) {
                Ok(i) => self.chunks[i].repr.count_range(net as u8, last as u8) > 0,
                Err(_) => false,
            }
        } else {
            // Any chunk keyed inside the prefix is non-empty by invariant.
            let lo = self.chunks.partition_point(|c| c.key < net >> 8);
            lo < self.chunks.len() && self.chunks[lo].key <= last >> 8
        }
    }

    /// Closed form instead of the default's per-mask growth walk: the
    /// result is `min(32, 1 + cpl)` where `cpl` is the longest common
    /// prefix between `addr` and any member — and that maximum is
    /// always attained by the nearest member below or above `addr`
    /// (values between two numbers sharing a prefix share it too). So
    /// one chunk binary search plus two neighbor probes replaces up
    /// to 32 range-emptiness checks. Agreement with the default walk
    /// is pinned by `covering_mask_override_matches_default_walk` and
    /// the property suite.
    fn covering_mask(&self, addr: Addr) -> u8 {
        let bits = addr.bits();
        let (key, h) = (bits >> 8, addr.host_index());
        let (i, own) = match self.chunk_index(key) {
            Ok(i) => (i, Some(&self.chunks[i].repr)),
            Err(i) => (i, None),
        };
        // Nearest member ≤ addr: in addr's own chunk if present there,
        // else the last member of the previous chunk (chunks are
        // sorted and never empty).
        let pred = own
            .and_then(|repr| repr.pred(h))
            .map(|p| (key << 8) | p as u32)
            .or_else(|| {
                let c = self.chunks[..i].last()?;
                Some((c.key << 8) | c.repr.last() as u32)
            });
        // Nearest member ≥ addr, symmetrically.
        let next_chunk = i + usize::from(own.is_some());
        let succ = own
            .and_then(|repr| repr.succ(h))
            .map(|s| (key << 8) | s as u32)
            .or_else(|| {
                let c = self.chunks.get(next_chunk)?;
                Some((c.key << 8) | c.repr.first() as u32)
            });
        let cpl = [pred, succ]
            .into_iter()
            .flatten()
            .map(|n| (bits ^ n).leading_zeros())
            .max();
        match cpl {
            // `cpl == 32` means addr itself is a member: still /32.
            Some(cpl) => (cpl + 1).min(32) as u8,
            None => 0, // empty exclusion: growth reaches /0
        }
    }

    fn iter(&self) -> TieredIter<'_> {
        TieredIter { chunks: &self.chunks, next_chunk: 0, cur: None }
    }

    fn insert(&mut self, addr: Addr) -> bool {
        let (key, h) = (addr.bits() >> 8, addr.host_index());
        match self.chunk_index(key) {
            Ok(i) => {
                let c = &mut self.chunks[i];
                if c.repr.contains(h) {
                    return false;
                }
                let mut bits = c.repr.to_bits();
                bits.set(h);
                let (repr, count) =
                    canonical_repr(&bits).expect("chunk non-empty after insert");
                c.repr = repr;
                c.count = count;
                self.len += 1;
                true
            }
            Err(i) => {
                self.chunks.insert(i, Chunk { key, count: 1, repr: Repr::Sparse(vec![h]) });
                self.len += 1;
                true
            }
        }
    }

    fn union(&self, other: &Self) -> Self {
        self.merge(other, MergeKind::Union)
    }

    /// K-way union: one pass over all chunk lists, each output chunk
    /// OR'd straight from every input holding it — an n-day window
    /// union materializes no intermediate sets.
    fn union_many(sets: &[&Self]) -> Self {
        match sets {
            [] => return TieredSet::new(),
            [only] => return (*only).clone(),
            _ => {}
        }
        let mut cursors = vec![0usize; sets.len()];
        let mut chunks = Vec::new();
        let mut len = 0usize;
        let mut matching: Vec<&Chunk> = Vec::with_capacity(sets.len());
        loop {
            // Keys are 24-bit, so u32::MAX doubles as "all exhausted".
            let mut min_key = u32::MAX;
            for (s, &c) in sets.iter().zip(cursors.iter()) {
                if let Some(chunk) = s.chunks.get(c) {
                    min_key = min_key.min(chunk.key);
                }
            }
            if min_key == u32::MAX {
                break;
            }
            matching.clear();
            for (s, c) in sets.iter().zip(cursors.iter_mut()) {
                if let Some(chunk) = s.chunks.get(*c) {
                    if chunk.key == min_key {
                        matching.push(chunk);
                        *c += 1;
                    }
                }
            }
            if let [only] = matching[..] {
                // Already canonical: adopt it without re-deriving.
                len += only.count as usize;
                chunks.push(only.clone());
            } else if matching[1..].iter().all(|c| c.repr == matching[0].repr) {
                // Every operand contributes the identical chunk (steady
                // blocks dominate overlapping windows): adopt it.
                len += matching[0].count as usize;
                chunks.push(matching[0].clone());
            } else {
                let mut bits = matching[0].repr.to_bits();
                for c in &matching[1..] {
                    bits = bits.union(&c.repr.to_bits());
                }
                let (repr, count) =
                    canonical_repr(&bits).expect("chunks are non-empty by invariant");
                len += count as usize;
                chunks.push(Chunk { key: min_key, count, repr });
            }
        }
        TieredSet { chunks, len }
    }

    fn intersect(&self, other: &Self) -> Self {
        self.merge(other, MergeKind::Intersect)
    }

    fn difference(&self, other: &Self) -> Self {
        self.merge(other, MergeKind::Difference)
    }

    fn intersect_len(&self, other: &Self) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0usize);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (a, b) = (&self.chunks[i], &other.chunks[j]);
            match a.key.cmp(&b.key) {
                core::cmp::Ordering::Less => i = gallop(&self.chunks, i, b.key),
                core::cmp::Ordering::Greater => j = gallop(&other.chunks, j, a.key),
                core::cmp::Ordering::Equal => {
                    if a.repr == b.repr {
                        // Identical chunks (steady blocks dominate
                        // adjacent windows): the cached count is the
                        // overlap, no bitmap round-trip needed.
                        n += a.count as usize;
                    } else {
                        n += a.repr.to_bits().intersect(&b.repr.to_bits()).count() as usize;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    fn for_each_difference(&self, other: &Self, mut f: impl FnMut(Addr)) {
        // One merge walk over the two chunk lists, visiting survivors
        // in ascending order without building a set. Chunks with no
        // counterpart stream their hosts directly; matching chunks
        // diff four words and scan the set bits.
        let mut j = 0;
        for a in &self.chunks {
            while j < other.chunks.len() && other.chunks[j].key < a.key {
                j += 1;
            }
            let base = a.key << 8;
            if j < other.chunks.len() && other.chunks[j].key == a.key {
                if a.repr == other.chunks[j].repr {
                    // Identical chunk on both sides (the steady-block
                    // common case): no survivors, skip the word walk.
                    continue;
                }
                let b_bits = other.chunks[j].repr.to_bits();
                for (w, (x, y)) in
                    a.repr.to_bits().words().iter().zip(b_bits.words()).enumerate()
                {
                    let mut bits = x & !y;
                    while bits != 0 {
                        let h = (w as u32) * 64 + bits.trailing_zeros();
                        bits &= bits - 1;
                        f(Addr::new(base | h));
                    }
                }
            } else {
                let mut hosts = HostIter::of(&a.repr);
                while let Some(h) = hosts.next() {
                    f(Addr::new(base | h as u32));
                }
            }
        }
    }

    fn diff_event_masks(&self, other: &Self, mut f: impl FnMut(u8)) {
        // The fused form of `for_each_difference` + `covering_mask`:
        // events ascend, so the walk's cursor `j` — the first
        // exclusion chunk with key ≥ the event's key — is exactly the
        // insertion point `covering_mask` would binary-search for,
        // and the neighbor probes become cursor-local.
        let exc = &other.chunks;
        let mut j = 0usize;
        for a in &self.chunks {
            while j < exc.len() && exc[j].key < a.key {
                j += 1;
            }
            let matched = j < exc.len() && exc[j].key == a.key;
            let own = matched.then(|| &exc[j].repr);
            let next_chunk = j + usize::from(matched);
            let base = a.key << 8;
            // `covering_mask`'s closed form with (i, own) resolved by
            // the cursor instead of `chunk_index`.
            let size = |h: u8| -> u8 {
                let bits = base | h as u32;
                let pred = own
                    .and_then(|repr| repr.pred(h))
                    .map(|p| base | p as u32)
                    .or_else(|| {
                        let c = exc[..j].last()?;
                        Some((c.key << 8) | c.repr.last() as u32)
                    });
                let succ = own
                    .and_then(|repr| repr.succ(h))
                    .map(|s| base | s as u32)
                    .or_else(|| {
                        let c = exc.get(next_chunk)?;
                        Some((c.key << 8) | c.repr.first() as u32)
                    });
                let cpl = [pred, succ]
                    .into_iter()
                    .flatten()
                    .map(|n| (bits ^ n).leading_zeros())
                    .max();
                match cpl {
                    Some(cpl) => (cpl + 1).min(32) as u8,
                    None => 0,
                }
            };
            if matched && a.repr == exc[j].repr {
                // Identical chunk on both sides: no events here.
                continue;
            }
            if matched {
                let y_bits = exc[j].repr.to_bits();
                for (w, (x, y)) in
                    a.repr.to_bits().words().iter().zip(y_bits.words()).enumerate()
                {
                    let mut word = x & !y;
                    while word != 0 {
                        let h = (w * 64) as u8 + word.trailing_zeros() as u8;
                        word &= word - 1;
                        f(size(h));
                    }
                }
            } else {
                let mut hosts = HostIter::of(&a.repr);
                while let Some(h) = hosts.next() {
                    f(size(h));
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>()
            + self.chunks.capacity() * core::mem::size_of::<Chunk>()
            + self.chunks.iter().map(|c| c.repr.heap_bytes()).sum::<usize>()
    }

    fn blocks24(&self) -> Vec<Block24> {
        self.chunks.iter().map(|c| Block24::new(c.key)).collect()
    }

    fn block_counts(&self) -> Vec<(Block24, u32)> {
        // The chunk directory *is* the answer: keys ascend and counts
        // are cached per chunk.
        self.chunks.iter().map(|c| (Block24::new(c.key), c.count as u32)).collect()
    }

    fn intersect_block_counts(&self, other: &Self) -> Vec<(Block24, u32)> {
        // One merge walk over the two chunk lists; matching chunks
        // cost four AND+popcount words, and no set is materialized.
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (a, b) = (&self.chunks[i], &other.chunks[j]);
            match a.key.cmp(&b.key) {
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => {
                    let (x, y) = (a.repr.to_bits(), b.repr.to_bits());
                    let n: u32 = x
                        .words()
                        .iter()
                        .zip(y.words())
                        .map(|(p, q)| (p & q).count_ones())
                        .sum();
                    if n > 0 {
                        out.push((Block24::new(a.key), n));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

/// O(1) active-count index over every /0–/24 prefix of a snapshot.
///
/// One hash map per prefix length; the key for a length-`l` prefix is
/// its network address shifted down by `32 − l` bits. Built from a
/// [`TieredSet`]'s chunk counts (each chunk contributes to one key per
/// level) or from any ascending address iterator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixDensity {
    /// `levels[l]` maps `network >> (32 - l)` to the member count, for
    /// `l` in 1..=24; level 0 is the total.
    levels: Vec<HashMap<u32, u64>>,
    total: u64,
}

impl PrefixDensity {
    /// Deepest indexed prefix length.
    pub const MAX_LEN: u8 = 24;

    fn from_block_counts(blocks: impl Iterator<Item = (u32, u64)>) -> Self {
        let mut levels: Vec<HashMap<u32, u64>> =
            (0..=Self::MAX_LEN).map(|_| HashMap::new()).collect();
        let mut total = 0u64;
        for (key, count) in blocks {
            total += count;
            for l in 1..=Self::MAX_LEN {
                *levels[l as usize].entry(key >> (Self::MAX_LEN - l)).or_insert(0) += count;
            }
        }
        PrefixDensity { levels, total }
    }

    /// Builds the index from any backend by grouping its ascending
    /// iterator into `/24` blocks.
    pub fn from_set<S: ActiveSet>(set: &S) -> Self {
        let mut blocks: Vec<(u32, u64)> = Vec::new();
        for a in set.iter() {
            let key = a.bits() >> 8;
            match blocks.last_mut() {
                Some((k, n)) if *k == key => *n += 1,
                _ => blocks.push((key, 1)),
            }
        }
        Self::from_block_counts(blocks.into_iter())
    }

    /// Active addresses inside `prefix`, in O(1).
    ///
    /// # Panics
    /// If `prefix.len() > 24` — host-granular counts stay with the set
    /// itself (`count_in`), the index covers aggregation levels only.
    pub fn count(&self, prefix: Prefix) -> u64 {
        let l = prefix.len();
        assert!(l <= Self::MAX_LEN, "PrefixDensity indexes /0../24, got /{l}");
        if l == 0 {
            return self.total;
        }
        let key = prefix.network().bits() >> (32 - l as u32);
        self.levels[l as usize].get(&key).copied().unwrap_or(0)
    }

    /// Total population of the snapshot.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct prefixes with at least one active address at
    /// the given level.
    pub fn active_prefixes(&self, len: u8) -> usize {
        assert!((1..=Self::MAX_LEN).contains(&len));
        self.levels[len as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn set(addrs: &[&str]) -> TieredSet {
        addrs.iter().map(|s| a(s)).collect()
    }

    #[test]
    fn from_unsorted_dedups_sorts_and_is_canonical() {
        let s = set(&["9.9.9.9", "1.1.1.1", "9.9.9.9", "5.5.5.5"]);
        assert_eq!(s.len(), 3);
        assert!(s.is_canonical());
        let v: Vec<String> = s.iter().map(|a| a.to_string()).collect();
        assert_eq!(v, vec!["1.1.1.1", "5.5.5.5", "9.9.9.9"]);
    }

    #[test]
    fn representation_thresholds() {
        // 16 scattered hosts: sparse.
        let sparse: TieredSet = (0..16u32).map(|i| Addr::new(0x0A000000 + 2 * i)).collect();
        assert_eq!(sparse.repr_census(), ReprCensus { sparse: 1, runs: 0, dense: 0 });
        // 17 hosts in one run: runs.
        let runs: TieredSet = (0..17u32).map(|i| Addr::new(0x0A000000 + i)).collect();
        assert_eq!(runs.repr_census(), ReprCensus { sparse: 0, runs: 1, dense: 0 });
        // 9 runs of 3 (27 > SPARSE_MAX, 9 > RUNS_MAX): dense.
        let dense: TieredSet = (0..9u32)
            .flat_map(|r| (0..3u32).map(move |i| Addr::new(0x0A000000 + 8 * r + i)))
            .collect();
        assert_eq!(dense.repr_census(), ReprCensus { sparse: 0, runs: 0, dense: 1 });
        for s in [&sparse, &runs, &dense] {
            assert!(s.is_canonical());
        }
    }

    #[test]
    fn insert_crosses_thresholds_and_stays_canonical() {
        let mut s = TieredSet::new();
        for i in 0..=255u32 {
            assert!(s.insert(Addr::new(0x0A000000 + i)));
            assert!(!s.insert(Addr::new(0x0A000000 + i)));
            assert!(s.is_canonical(), "not canonical after {} inserts", i + 1);
        }
        assert_eq!(s.len(), 256);
        // A full block is a single run.
        assert_eq!(s.repr_census(), ReprCensus { sparse: 0, runs: 1, dense: 0 });
    }

    #[test]
    fn set_algebra_matches_reference_semantics() {
        let x = set(&["1.0.0.1", "1.0.0.2", "1.0.0.3", "2.0.0.1"]);
        let y = set(&["1.0.0.3", "1.0.0.4", "3.0.0.1"]);
        assert_eq!(x.union(&y).len(), 6);
        assert_eq!(x.intersect(&y).len(), 1);
        assert_eq!(x.intersect_len(&y), 1);
        let diff = x.difference(&y);
        assert_eq!(diff.len(), 3);
        assert!(diff.contains(a("2.0.0.1")) && !diff.contains(a("1.0.0.3")));
        for s in [x.union(&y), x.intersect(&y), diff] {
            assert!(s.is_canonical());
        }
    }

    #[test]
    fn count_in_and_any_in_across_granularities() {
        let s = set(&["10.0.0.5", "10.0.0.200", "10.0.1.3", "10.0.3.1", "11.0.0.1"]);
        assert_eq!(s.count_in("10.0.0.0/24".parse().unwrap()), 2);
        assert_eq!(s.count_in("10.0.0.0/22".parse().unwrap()), 4);
        assert_eq!(s.count_in("10.0.0.0/8".parse().unwrap()), 4);
        assert_eq!(s.count_in("10.0.0.0/25".parse().unwrap()), 1);
        assert_eq!(s.count_in("10.0.0.128/25".parse().unwrap()), 1);
        assert_eq!(s.count_in("10.0.2.0/24".parse().unwrap()), 0);
        assert_eq!(s.count_in("0.0.0.0/0".parse().unwrap()), 5);
        assert!(s.any_in("10.0.3.0/24".parse().unwrap()));
        assert!(s.any_in("10.0.2.0/23".parse().unwrap())); // covers 10.0.3.1
        assert!(!s.any_in("10.0.4.0/23".parse().unwrap()));
        assert!(!TieredSet::new().any_in("0.0.0.0/0".parse().unwrap()));
    }

    #[test]
    fn union_many_matches_pairwise_fold() {
        let days: Vec<TieredSet> = vec![
            set(&["1.0.0.1", "1.0.0.2", "2.0.0.9"]),
            set(&["1.0.0.2", "3.0.0.7"]),
            (0..300u32).map(|i| Addr::new(0x0A000000 + i)).collect(),
            TieredSet::new(),
            set(&["3.0.0.7", "10.0.0.5"]),
        ];
        let refs: Vec<&TieredSet> = days.iter().collect();
        let kway = TieredSet::union_many(&refs);
        let fold = refs.iter().fold(TieredSet::new(), |acc, s| acc.union(s));
        assert_eq!(kway, fold);
        assert!(kway.is_canonical());
        assert_eq!(TieredSet::union_many(&[]), TieredSet::new());
        assert_eq!(TieredSet::union_many(&[&days[0]]), days[0]);
    }

    #[test]
    fn gallop_merges_handle_skewed_inputs() {
        // One chunk on the left, many on the right (and vice versa):
        // the galloping advance must not skip or duplicate chunks.
        let wide: TieredSet = (0..64u32).map(|b| Addr::new(b << 16 | 5)).collect();
        let narrow = set(&["0.32.0.5", "0.63.0.9"]);
        assert_eq!(wide.union(&narrow).len(), 65);
        assert_eq!(wide.intersect(&narrow).len(), 1);
        assert_eq!(wide.intersect_len(&narrow), 1);
        assert_eq!(narrow.intersect_len(&wide), 1);
        assert_eq!(wide.difference(&narrow).len(), 63);
        assert_eq!(narrow.difference(&wide).len(), 1);
        for s in [wide.union(&narrow), wide.intersect(&narrow), wide.difference(&narrow)] {
            assert!(s.is_canonical());
        }
    }

    #[test]
    fn covering_mask_override_matches_default_walk() {
        use crate::AddrSet;
        let members = ["10.0.0.43", "10.0.0.200", "10.0.4.1", "10.1.0.1", "192.0.0.1"];
        let tiered = set(&members);
        let reference: AddrSet = members.iter().map(|s| a(s)).collect();
        let probes = [
            "10.0.0.42",  // /31 partner of a member
            "10.0.0.40",  // nearby member limits growth
            "10.0.0.201", "10.0.1.77", // own /24 occupied vs absent
            "10.0.5.1", "10.128.0.1", "11.0.0.1", "250.0.0.1",
        ];
        for p in probes {
            let addr = a(p);
            assert_eq!(
                ActiveSet::covering_mask(&tiered, addr),
                ActiveSet::covering_mask(&reference, addr),
                "probe {p}"
            );
        }
        // Empty exclusion grows all the way to /0 on both paths.
        assert_eq!(ActiveSet::covering_mask(&TieredSet::new(), a("1.2.3.4")), 0);

        // Exhaustive sweep across all three chunk representations:
        // a dense chunk, a runs chunk, a sparse chunk, and the gaps
        // between them, probing every address in the span plus
        // far-away strays on both sides.
        let mut members: Vec<Addr> = Vec::new();
        members.extend((0u32..200).map(|i| Addr::new(0x0A000500 + (i * 5) % 256))); // dense
        members.extend((16u32..80).map(|i| Addr::new(0x0A000900 + i))); // one run
        members.extend([3u32, 77, 130].map(|i| Addr::new(0x0A000C00 + i))); // sparse
        let tiered: TieredSet = members.iter().copied().collect();
        let reference: AddrSet = members.into_iter().collect();
        for bits in 0x0A000400..0x0A000E00u32 {
            let addr = Addr::new(bits);
            assert_eq!(
                ActiveSet::covering_mask(&tiered, addr),
                ActiveSet::covering_mask(&reference, addr),
                "sweep probe {addr:?}"
            );
        }
        for stray in ["0.0.0.0", "9.255.255.255", "10.0.13.0", "255.255.255.255"] {
            let addr = a(stray);
            assert_eq!(
                ActiveSet::covering_mask(&tiered, addr),
                ActiveSet::covering_mask(&reference, addr),
                "stray probe {stray}"
            );
        }
    }

    #[test]
    fn block_count_overrides_match_default_grouping() {
        use crate::RefSet;
        // Mixed representations on both sides: dense, runs, sparse
        // chunks, plus chunks present in only one operand.
        let left: Vec<Addr> = (0u32..200)
            .map(|i| Addr::new(0x0A000500 + (i * 5) % 256))
            .chain((16u32..80).map(|i| Addr::new(0x0A000900 + i)))
            .chain([3u32, 77, 130].map(|i| Addr::new(0x0A000C00 + i)))
            .collect();
        let right: Vec<Addr> = (0u32..256)
            .map(|i| Addr::new(0x0A000500 + i)) // full /24 overlapping the dense chunk
            .chain((60u32..100).map(|i| Addr::new(0x0A000900 + i)))
            .chain([9u32].map(|i| Addr::new(0x0A000D00 + i))) // only-right chunk
            .collect();
        let (lt, rt): (TieredSet, TieredSet) =
            (left.iter().copied().collect(), right.iter().copied().collect());
        let (lr, rr): (RefSet, RefSet) =
            (left.into_iter().collect(), right.into_iter().collect());
        // RefSet runs the trait defaults; the overrides must agree.
        assert_eq!(lt.block_counts(), lr.block_counts());
        assert_eq!(rt.block_counts(), rr.block_counts());
        assert_eq!(lt.intersect_block_counts(&rt), lr.intersect_block_counts(&rr));
        assert_eq!(rt.intersect_block_counts(&lt), rr.intersect_block_counts(&lr));
        assert_eq!(TieredSet::new().block_counts(), vec![]);
        assert_eq!(lt.intersect_block_counts(&TieredSet::new()), vec![]);
    }

    #[test]
    fn streaming_difference_matches_materialized() {
        // Same mixed-representation fixture shape as the block-count
        // test: the streaming walk must visit exactly the members of
        // `difference`, ascending, for every chunk pairing (matched,
        // only-left, only-right, empty operands).
        let left: Vec<Addr> = (0u32..200)
            .map(|i| Addr::new(0x0A000500 + (i * 5) % 256))
            .chain((16u32..80).map(|i| Addr::new(0x0A000900 + i)))
            .chain([3u32, 77, 130].map(|i| Addr::new(0x0A000C00 + i)))
            .collect();
        let right: Vec<Addr> = (0u32..256)
            .map(|i| Addr::new(0x0A000500 + i))
            .chain((60u32..100).map(|i| Addr::new(0x0A000900 + i)))
            .chain([9u32].map(|i| Addr::new(0x0A000D00 + i)))
            .collect();
        let (lt, rt): (TieredSet, TieredSet) =
            (left.into_iter().collect(), right.into_iter().collect());
        for (a, b) in [(&lt, &rt), (&rt, &lt), (&lt, &TieredSet::new()), (&TieredSet::new(), &lt)]
        {
            let mut streamed = Vec::new();
            a.for_each_difference(b, |addr| streamed.push(addr));
            let materialized: Vec<Addr> = a.difference(b).iter().collect();
            assert_eq!(streamed, materialized);

            // The fused event-mask walk must equal sizing each
            // streamed event against `b` with the plain covering mask
            // (the trait-default path).
            let mut fused = Vec::new();
            a.diff_event_masks(b, |m| fused.push(m));
            let unfused: Vec<u8> = materialized.iter().map(|&x| b.covering_mask(x)).collect();
            assert_eq!(fused, unfused);
        }
    }

    #[test]
    fn builder_skips_empty_blocks() {
        let mut b = TieredSetBuilder::new();
        b.push_block(Block24::new(1), &AddrBits256::new());
        let mut bits = AddrBits256::new();
        bits.set(7);
        b.push_block(Block24::new(2), &bits);
        let s = b.finish();
        assert_eq!(s.num_chunks(), 1);
        assert_eq!(s.len(), 1);
        assert!(s.is_canonical());
    }

    #[test]
    fn memory_stays_structural_for_dense_blocks() {
        // Two fully-lit /24s: 512 addresses, but only two run chunks.
        let s: TieredSet = (0..512u32).map(|i| Addr::new(0x0A000000 + i)).collect();
        assert!(s.memory_bytes() < 512 * 4, "tiered set larger than the Vec it replaces");
    }

    #[test]
    fn prefix_density_counts_match_count_in() {
        let s = set(&["10.0.0.5", "10.0.0.200", "10.0.1.3", "10.7.3.1", "11.0.0.1"]);
        let d = s.prefix_density();
        assert_eq!(d.total(), 5);
        for p in ["10.0.0.0/24", "10.0.0.0/16", "10.0.0.0/8", "0.0.0.0/0", "12.0.0.0/8"] {
            let p: Prefix = p.parse().unwrap();
            assert_eq!(d.count(p), s.count_in(p) as u64, "mismatch at {p}");
        }
        assert_eq!(d.active_prefixes(24), 4);
        assert_eq!(d.active_prefixes(8), 2);
        // Same index from the generic path.
        assert_eq!(PrefixDensity::from_set(&s), d);
    }

    #[test]
    #[should_panic(expected = "indexes /0../24")]
    fn prefix_density_rejects_host_prefixes() {
        set(&["10.0.0.1"]).prefix_density().count("10.0.0.0/32".parse().unwrap());
    }

    #[test]
    fn to_prefixes_and_blocks24_match_reference() {
        use crate::AddrSet;
        let addrs: Vec<Addr> = (0u32..300)
            .map(|i| Addr::new(0x0A000000 + i))
            .chain([a("10.0.2.7"), a("10.9.0.1")])
            .collect();
        let t = TieredSet::from_unsorted(addrs.clone());
        let r = AddrSet::from_unsorted(addrs);
        assert_eq!(ActiveSet::to_prefixes(&t), r.to_prefixes());
        assert_eq!(ActiveSet::blocks24(&t), r.blocks24());
    }
}
