//! Binary radix trie keyed by CIDR prefixes.
//!
//! Used by the BGP substrate for longest-prefix match (routing lookups)
//! and by the RIR substrate for delegation lookups. A straightforward
//! uncompressed binary trie: simple and robust (the smoltcp design
//! philosophy), with node storage in a flat arena to keep allocation
//! per-insert at amortized O(1).

use crate::{Addr, Prefix};

const NO_NODE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<T> {
    children: [u32; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node { children: [NO_NODE; 2], value: None }
    }
}

/// A map from CIDR prefixes to values, supporting exact lookup,
/// longest-prefix match, and covered-prefix queries.
///
/// ```
/// use ipactive_net::{Prefix, PrefixTrie};
/// let mut t = PrefixTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "big");
/// t.insert("10.1.0.0/16".parse().unwrap(), "small");
/// let (p, v) = t.longest_match("10.1.2.3".parse().unwrap()).unwrap();
/// assert_eq!(*v, "small");
/// assert_eq!(p.to_string(), "10.1.0.0/16");
/// ```
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie { nodes: vec![Node::new()], len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(addr: Addr, depth: u8) -> usize {
        ((addr.bits() >> (31 - depth)) & 1) as usize
    }

    /// Inserts `prefix -> value`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = 0u32;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.network(), depth);
            let child = self.nodes[node as usize].children[b];
            let child = if child == NO_NODE {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node as usize].children[b] = idx;
                idx
            } else {
                child
            };
            node = child;
        }
        let slot = &mut self.nodes[node as usize].value;
        let old = slot.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut node = 0u32;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.network(), depth);
            let child = self.nodes[node as usize].children[b];
            if child == NO_NODE {
                return None;
            }
            node = child;
        }
        self.nodes[node as usize].value.as_ref()
    }

    /// Removes a prefix, returning its value. Node storage is not
    /// compacted (removal is rare in our workloads; the arena stays).
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let mut node = 0u32;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.network(), depth);
            let child = self.nodes[node as usize].children[b];
            if child == NO_NODE {
                return None;
            }
            node = child;
        }
        let old = self.nodes[node as usize].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match for `addr`: the most-specific stored prefix
    /// containing it, with its value.
    pub fn longest_match(&self, addr: Addr) -> Option<(Prefix, &T)> {
        let mut node = 0u32;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0u8, v));
        for depth in 0..32u8 {
            let b = Self::bit(addr, depth);
            let child = self.nodes[node as usize].children[b];
            if child == NO_NODE {
                break;
            }
            node = child;
            if let Some(v) = self.nodes[node as usize].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| (Prefix::new(addr, len), v))
    }

    /// All stored `(prefix, value)` pairs covered by `root` (including
    /// `root` itself if stored), in trie (address) order.
    pub fn covered_by(&self, root: Prefix) -> Vec<(Prefix, &T)> {
        // Walk down to the node for `root`, then DFS below it.
        let mut node = 0u32;
        for depth in 0..root.len() {
            let b = Self::bit(root.network(), depth);
            let child = self.nodes[node as usize].children[b];
            if child == NO_NODE {
                return Vec::new();
            }
            node = child;
        }
        let mut out = Vec::new();
        let mut stack = vec![(node, root.network().bits(), root.len())];
        while let Some((n, base, len)) = stack.pop() {
            if let Some(v) = self.nodes[n as usize].value.as_ref() {
                out.push((Prefix::new(Addr::new(base), len), v));
            }
            // Push high branch first so the low branch pops first (address order).
            for b in [1usize, 0] {
                let child = self.nodes[n as usize].children[b];
                if child != NO_NODE {
                    debug_assert!(len < 32);
                    let child_base = base | ((b as u32) << (31 - len));
                    stack.push((child, child_base, len + 1));
                }
            }
        }
        out
    }

    /// All stored `(prefix, value)` pairs, in address order.
    pub fn iter(&self) -> Vec<(Prefix, &T)> {
        self.covered_by(Prefix::ALL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");
        assert_eq!(t.longest_match(a("10.1.2.3")).unwrap().1, &"twentyfour");
        assert_eq!(t.longest_match(a("10.1.3.3")).unwrap().1, &"sixteen");
        assert_eq!(t.longest_match(a("10.9.9.9")).unwrap().1, &"eight");
        assert!(t.longest_match(a("11.0.0.1")).is_none());
    }

    #[test]
    fn longest_match_returns_matched_prefix() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), ());
        let (matched, _) = t.longest_match(a("10.1.200.9")).unwrap();
        assert_eq!(matched, p("10.1.0.0/16"));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        assert_eq!(t.longest_match(a("203.0.113.1")).unwrap().1, &"default");
    }

    #[test]
    fn remove_restores_previous_behavior() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.remove(p("10.1.0.0/16")), Some(2));
        assert_eq!(t.remove(p("10.1.0.0/16")), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.longest_match(a("10.1.2.3")).unwrap().1, &1);
    }

    #[test]
    fn covered_by_returns_subtree_in_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 0);
        t.insert(p("10.0.0.0/16"), 1);
        t.insert(p("10.128.0.0/16"), 2);
        t.insert(p("11.0.0.0/8"), 3);
        let covered = t.covered_by(p("10.0.0.0/8"));
        let prefixes: Vec<String> = covered.iter().map(|(pr, _)| pr.to_string()).collect();
        assert_eq!(prefixes, vec!["10.0.0.0/8", "10.0.0.0/16", "10.128.0.0/16"]);
        assert_eq!(t.iter().len(), 4);
    }

    #[test]
    fn slash32_prefixes_work() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(t.longest_match(a("1.2.3.4")).unwrap().1, &"host");
        assert!(t.longest_match(a("1.2.3.5")).is_none());
        assert_eq!(t.get(p("1.2.3.4/32")), Some(&"host"));
    }

    #[test]
    fn dense_sibling_prefixes() {
        let mut t = PrefixTrie::new();
        for i in 0..=255u32 {
            t.insert(Prefix::new(Addr::new(i << 24), 8), i);
        }
        assert_eq!(t.len(), 256);
        assert_eq!(t.longest_match(a("42.1.2.3")).unwrap().1, &42);
        assert_eq!(t.iter().len(), 256);
    }
}
