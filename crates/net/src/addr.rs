//! IPv4 address newtype.
//!
//! [`Addr`] wraps a host-order `u32`. Compared to `std::net::Ipv4Addr` it
//! is `Copy + Ord` with cheap arithmetic, which the analysis layers rely
//! on for sorted-set range queries and prefix math.

use core::fmt;
use core::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
///
/// Ordering is numeric, which matches the natural ordering of the
/// address space (e.g. `10.0.0.0 < 10.0.0.1 < 10.0.1.0`).
///
/// ```
/// use ipactive_net::Addr;
/// let a = Addr::new(0xC0000201);
/// assert_eq!(a.to_string(), "192.0.2.1");
/// assert_eq!(a.octets(), [192, 0, 2, 1]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Addr(u32);

impl Addr {
    /// The lowest address, `0.0.0.0`.
    pub const MIN: Addr = Addr(0);
    /// The highest address, `255.255.255.255`.
    pub const MAX: Addr = Addr(u32::MAX);

    /// Creates an address from its host-order `u32` representation.
    #[inline]
    pub const fn new(bits: u32) -> Self {
        Addr(bits)
    }

    /// Creates an address from four dotted-quad octets.
    #[inline]
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the host-order `u32` representation.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns the four dotted-quad octets, most significant first.
    #[inline]
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Returns the address `n` above this one, saturating at `255.255.255.255`.
    #[inline]
    pub const fn saturating_add(self, n: u32) -> Self {
        Addr(self.0.saturating_add(n))
    }

    /// Returns the numerically next address, or `None` at the top of the space.
    #[inline]
    pub const fn next(self) -> Option<Self> {
        match self.0.checked_add(1) {
            Some(v) => Some(Addr(v)),
            None => None,
        }
    }

    /// Index of this address within its containing `/24` block (the last octet).
    #[inline]
    pub const fn host_index(self) -> u8 {
        (self.0 & 0xFF) as u8
    }

    /// Whether this address falls in conventional unicast space actually
    /// usable by clients (excludes `0.0.0.0/8`, loopback `127.0.0.0/8`,
    /// and class D/E `224.0.0.0/3`).
    #[inline]
    pub const fn is_client_unicast(self) -> bool {
        let top = self.0 >> 24;
        top != 0 && top != 127 && top < 224
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({self})")
    }
}

impl From<std::net::Ipv4Addr> for Addr {
    fn from(a: std::net::Ipv4Addr) -> Self {
        Addr(u32::from(a))
    }
}

impl From<Addr> for std::net::Ipv4Addr {
    fn from(a: Addr) -> Self {
        std::net::Ipv4Addr::from(a.0)
    }
}

impl From<u32> for Addr {
    fn from(bits: u32) -> Self {
        Addr(bits)
    }
}

/// Error returned when parsing an [`Addr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    input: String,
}

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {:?}", self.input)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAddrError { input: s.to_owned() };
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            if part.is_empty() || part.len() > 3 || (part.len() > 1 && part.starts_with('0')) {
                return Err(err());
            }
            *slot = part.parse::<u8>().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(Addr::from_octets(octets[0], octets[1], octets[2], octets[3]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display_parse() {
        for bits in [0u32, 1, 0xC0000201, 0x0A000001, u32::MAX, 0x7F000001] {
            let a = Addr::new(bits);
            let parsed: Addr = a.to_string().parse().unwrap();
            assert_eq!(parsed, a);
        }
    }

    #[test]
    fn octet_construction_matches_bits() {
        assert_eq!(Addr::from_octets(192, 0, 2, 1).bits(), 0xC0000201);
        assert_eq!(Addr::from_octets(0, 0, 0, 0), Addr::MIN);
        assert_eq!(Addr::from_octets(255, 255, 255, 255), Addr::MAX);
    }

    #[test]
    fn ordering_is_numeric() {
        let lo: Addr = "10.0.0.0".parse().unwrap();
        let mid: Addr = "10.0.0.255".parse().unwrap();
        let hi: Addr = "10.0.1.0".parse().unwrap();
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn next_and_saturating_add() {
        assert_eq!(Addr::MIN.next(), Some(Addr::new(1)));
        assert_eq!(Addr::MAX.next(), None);
        assert_eq!(Addr::MAX.saturating_add(10), Addr::MAX);
    }

    #[test]
    fn host_index_is_last_octet() {
        let a: Addr = "198.51.100.37".parse().unwrap();
        assert_eq!(a.host_index(), 37);
    }

    #[test]
    fn client_unicast_classification() {
        assert!(Addr::from_octets(1, 2, 3, 4).is_client_unicast());
        assert!(Addr::from_octets(223, 255, 255, 255).is_client_unicast());
        assert!(!Addr::from_octets(0, 1, 2, 3).is_client_unicast());
        assert!(!Addr::from_octets(127, 0, 0, 1).is_client_unicast());
        assert!(!Addr::from_octets(224, 0, 0, 1).is_client_unicast());
        assert!(!Addr::from_octets(240, 0, 0, 1).is_client_unicast());
    }

    #[test]
    fn rejects_malformed_strings() {
        for s in ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4", "a.b.c.d", "1..2.3"] {
            assert!(s.parse::<Addr>().is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn std_conversions() {
        let std_addr = std::net::Ipv4Addr::new(203, 0, 113, 9);
        let a: Addr = std_addr.into();
        assert_eq!(std::net::Ipv4Addr::from(a), std_addr);
    }
}
