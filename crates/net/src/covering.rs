//! Event sizing: the *smallest covering prefix mask* (Section 4.2).
//!
//! For a per-address up event (address absent in window *i*, present in
//! window *i+1*) the paper asks: how large an address range flipped
//! together? It finds the smallest mask `m` (largest prefix) such that
//! *every* address inside the prefix either had an up event itself or
//! was inactive in both windows. Equivalently — since both cases demand
//! absence in window *i* — the largest prefix around the event address
//! containing **no** address active in window *i*.
//!
//! Down events are symmetric with the roles of the two windows swapped,
//! so callers pass "the snapshot in which the event population must be
//! absent" as `exclusion`.

use crate::{ActiveSet, Addr};

#[cfg(test)]
use crate::AddrSet;

/// Computes the smallest covering mask for an event at `addr`.
///
/// `exclusion` is the set of addresses whose presence *limits* growth:
/// for up events pass the *earlier* snapshot's active set, for down
/// events the *later* one. Returns the mask length `m ∈ 0..=32`; the
/// event then "affects" the prefix `Prefix::containing(addr, m)`.
///
/// Runs in `O(32 · log n)` via binary-searched range-emptiness probes.
///
/// ```
/// use ipactive_net::{covering_mask, Addr, AddrSet};
/// // Whole /24 flipped: nothing from the old snapshot survives nearby.
/// let old = AddrSet::from_unsorted(vec!["10.0.1.7".parse().unwrap()]);
/// let m = covering_mask("10.0.0.42".parse().unwrap(), &old);
/// assert_eq!(m, 24); // the /23 would include 10.0.1.7, so growth stops at /24
/// ```
pub fn covering_mask<S: ActiveSet>(addr: Addr, exclusion: &S) -> u8 {
    // Backends may specialize the growth walk; the trait default is the
    // one-mask-at-a-time loop this function always performed.
    exclusion.covering_mask(addr)
}

/// Histogram of event sizes keyed by covering mask length (0..=32).
///
/// Mirrors Figure 5(b): fraction of per-address events whose covering
/// mask falls in each bucket. Buckets can be re-grouped for display
/// (e.g. `>= /16`, `/20`, `/24`, `/28`, `/32`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventSizeHistogram {
    counts: [u64; 33],
}

impl Default for EventSizeHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSizeHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        EventSizeHistogram { counts: [0; 33] }
    }

    /// Records one event with covering mask `m`.
    pub fn record(&mut self, mask: u8) {
        assert!(mask <= 32, "mask {mask} out of range");
        self.counts[mask as usize] += 1;
    }

    /// Builds the histogram for a whole event population.
    ///
    /// `events` are the per-address events; `exclusion` as in
    /// [`covering_mask`].
    pub fn from_events<S: ActiveSet>(events: &S, exclusion: &S) -> Self {
        let mut h = Self::new();
        for addr in events.iter() {
            h.record(covering_mask(addr, exclusion));
        }
        h
    }

    /// Builds the histogram for the event population `cur \ prev`,
    /// sized against `prev` as the exclusion set, without
    /// materializing the events (see
    /// [`ActiveSet::diff_event_masks`]); equal to
    /// `from_events(&cur.difference(prev), prev)`. Down events swap
    /// the operands — the exclusion is always the window the events
    /// are absent from, which is exactly the subtracted one.
    pub fn from_diff_events<S: ActiveSet>(cur: &S, prev: &S) -> Self {
        let mut h = Self::new();
        cur.diff_event_masks(prev, |mask| h.record(mask));
        h
    }

    /// Raw count for a mask length.
    pub fn count(&self, mask: u8) -> u64 {
        self.counts[mask as usize]
    }

    /// Total number of recorded events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of events whose mask is in `lo..=hi` (inclusive).
    pub fn fraction_between(&self, lo: u8, hi: u8) -> f64 {
        assert!(lo <= hi && hi <= 32);
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n: u64 = (lo..=hi).map(|m| self.counts[m as usize]).sum();
        n as f64 / total as f64
    }

    /// The Figure 5(b) display buckets:
    /// `(>= /16, /17../20, /21../24, /25../28, /29../32)` fractions.
    pub fn figure5b_buckets(&self) -> [f64; 5] {
        [
            self.fraction_between(0, 16),
            self.fraction_between(17, 20),
            self.fraction_between(21, 24),
            self.fraction_between(25, 28),
            self.fraction_between(29, 32),
        ]
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &EventSizeHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn set(addrs: &[&str]) -> AddrSet {
        addrs.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn isolated_event_next_to_steady_neighbor_is_slash32() {
        // 10.0.0.42 flips up; 10.0.0.43 was active before — can't grow at all.
        let old = set(&["10.0.0.43"]);
        assert_eq!(covering_mask(a("10.0.0.42"), &old), 32);
    }

    #[test]
    fn pair_event_is_slash31() {
        // Exclusion first appears two addresses away (the /31 partner is free).
        let old = set(&["10.0.0.40"]);
        assert_eq!(covering_mask(a("10.0.0.42"), &old), 31);
    }

    #[test]
    fn empty_exclusion_grows_to_slash0() {
        assert_eq!(covering_mask(a("10.0.0.42"), &AddrSet::new()), 0);
    }

    #[test]
    fn block_sized_event() {
        // Nearest old activity is in the adjacent /24 at even distance, so the
        // covering prefix is exactly the /24.
        let old = set(&["10.0.1.0"]);
        assert_eq!(covering_mask(a("10.0.0.128"), &old), 24);
    }

    #[test]
    fn growth_is_monotonic_in_exclusion() {
        // Removing exclusion addresses can only let the mask shrink (grow range).
        let addr = a("192.0.2.77");
        let dense = set(&["192.0.2.76", "192.0.2.100", "192.0.3.1"]);
        let sparse = set(&["192.0.3.1"]);
        assert!(covering_mask(addr, &dense) >= covering_mask(addr, &sparse));
    }

    #[test]
    fn event_addr_in_exclusion_is_ignored_only_if_absent() {
        // covering_mask assumes addr itself is not in the exclusion set
        // (an up event can't be active in the old window). If it is, /32.
        let old = set(&["10.0.0.42"]);
        assert_eq!(covering_mask(a("10.0.0.42"), &old), 32);
    }

    #[test]
    fn histogram_fractions() {
        let mut h = EventSizeHistogram::new();
        h.record(32);
        h.record(32);
        h.record(24);
        h.record(16);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(32), 2);
        assert!((h.fraction_between(29, 32) - 0.5).abs() < 1e-12);
        assert!((h.fraction_between(0, 16) - 0.25).abs() < 1e-12);
        let buckets = h.figure5b_buckets();
        assert!((buckets.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_from_events() {
        // Two up events in an otherwise-dead /24: both should cover big ranges.
        let events = set(&["10.0.0.1", "10.0.0.2"]);
        let old = set(&["10.1.0.0"]);
        let h = EventSizeHistogram::from_events(&events, &old);
        assert_eq!(h.total(), 2);
        assert!(h.fraction_between(0, 24) > 0.99);
    }

    #[test]
    fn histogram_merge() {
        let mut h1 = EventSizeHistogram::new();
        h1.record(32);
        let mut h2 = EventSizeHistogram::new();
        h2.record(24);
        h2.record(32);
        h1.merge(&h2);
        assert_eq!(h1.total(), 3);
        assert_eq!(h1.count(32), 2);
    }

    #[test]
    fn empty_histogram_fraction_is_zero() {
        assert_eq!(EventSizeHistogram::new().fraction_between(0, 32), 0.0);
    }
}
