//! # ipactive-net
//!
//! Foundation types for IPv4 address-space analytics: addresses, CIDR
//! prefixes, `/24` block identifiers, sorted address sets with range
//! queries, a binary radix trie keyed by prefixes, compact day/address
//! bitsets, and the *smallest covering mask* primitive used to size
//! address churn events (Richter et al., IMC 2016, Section 4.2).
//!
//! Everything in this crate is deliberately dependency-free, allocation
//! conscious, and exhaustively unit- and property-tested: all higher
//! layers (the CDN observatory simulator, the BGP substrate, the
//! analysis library) are built on these primitives.
//!
//! ## Quick tour
//!
//! ```
//! use ipactive_net::{Addr, Prefix, Block24};
//!
//! let a: Addr = "192.0.2.17".parse().unwrap();
//! let p: Prefix = "192.0.2.0/24".parse().unwrap();
//! assert!(p.contains(a));
//! assert_eq!(Block24::of(a).network(), "192.0.2.0".parse().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod addr;
mod bitset;
mod block;
mod covering;
mod prefix;
mod set;
mod tiered;
mod trie;

pub use active::{ActiveSet, SetBuilder};
pub use addr::{Addr, ParseAddrError};
pub use bitset::{AddrBits256, DayBits};
pub use block::Block24;
pub use covering::{covering_mask, EventSizeHistogram};
pub use prefix::{ParsePrefixError, Prefix};
pub use set::{AddrSet, RefSetBuilder};
pub use tiered::{PrefixDensity, ReprCensus, TieredSet, TieredSetBuilder, RUNS_MAX, SPARSE_MAX};
pub use trie::PrefixTrie;

/// The sorted-`Vec` reference backend — the differential oracle every
/// other [`ActiveSet`] implementation is property-tested against.
pub type RefSet = AddrSet;
