//! The [`ActiveSet`] abstraction: what an "active address set" must
//! provide so the analysis layers can run against interchangeable
//! backends.
//!
//! Two implementations live in this crate:
//!
//! * [`crate::AddrSet`] (aliased [`crate::RefSet`]) — the sorted-`Vec`
//!   reference. Simple, obviously correct, and the oracle the
//!   differential property suite checks every other backend against.
//! * [`crate::TieredSet`] — the Roaring-style chunked representation
//!   that makes paper-scale (~1.2B address) runs fit in memory.
//!
//! Both iterate ascending and implement identical set algebra, so any
//! analysis generic over `S: ActiveSet` produces byte-identical output
//! regardless of the backend — an invariant pinned by
//! `crates/net/tests/tiered_prop.rs` and the figure-suite differential
//! test in `crates/bench/tests/engine.rs`.

use crate::{Addr, AddrBits256, Block24, Prefix};

/// Streaming constructor for an [`ActiveSet`], fed one `/24` block at a
/// time in ascending block order.
///
/// This is how the dataset layers materialize day/week activity sets:
/// they already hold per-block bitmaps, so handing whole blocks to the
/// builder avoids both a counting pre-pass and a per-address sort —
/// and lets a chunked backend adopt each block without rewriting it.
pub trait SetBuilder: Sized {
    /// The set type this builder produces.
    type Set: ActiveSet;

    /// A builder holding no addresses yet.
    fn new() -> Self;

    /// Appends the members of `block` given by `bits`.
    ///
    /// Blocks must arrive in strictly ascending order; an empty `bits`
    /// is allowed and contributes nothing.
    fn push_block(&mut self, block: Block24, bits: &AddrBits256);

    /// Finalizes the set.
    fn finish(self) -> Self::Set;
}

/// An immutable-flavored set of IPv4 addresses with ascending
/// iteration, prefix range queries, and linear-merge set algebra.
///
/// Implementations must agree exactly: for any two sets with equal
/// membership, every method here returns equal results (and `iter`
/// yields the same ascending sequence). The analysis stack relies on
/// this to swap backends without disturbing figure output.
pub trait ActiveSet:
    Sized
    + Clone
    + Default
    + core::fmt::Debug
    + PartialEq
    + Eq
    + Send
    + Sync
    + FromIterator<Addr>
    + 'static
{
    /// Ascending iterator over members.
    type Iter<'a>: Iterator<Item = Addr> + 'a
    where
        Self: 'a;

    /// The streaming block-wise constructor for this backend.
    type Builder: SetBuilder<Set = Self>;

    /// A short stable identifier for reports (`"ref"`, `"tiered"`).
    fn backend_name() -> &'static str;

    /// An empty set.
    fn empty() -> Self;

    /// Builds from a sorted, deduplicated vector of addresses.
    fn from_sorted_vec(addrs: Vec<Addr>) -> Self;

    /// Number of members.
    fn len(&self) -> usize;

    /// Whether the set has no members.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    fn contains(&self, addr: Addr) -> bool;

    /// Number of members inside `prefix`.
    fn count_in(&self, prefix: Prefix) -> usize;

    /// Whether any member falls inside `prefix` (the hot primitive
    /// behind covering-mask growth; backends should short-circuit).
    fn any_in(&self, prefix: Prefix) -> bool {
        self.count_in(prefix) > 0
    }

    /// Ascending iterator over members.
    fn iter(&self) -> Self::Iter<'_>;

    /// Inserts one address; returns whether it was newly added.
    fn insert(&mut self, addr: Addr) -> bool;

    /// Set union.
    fn union(&self, other: &Self) -> Self;

    /// Set intersection.
    fn intersect(&self, other: &Self) -> Self;

    /// Set difference (`self \ other`).
    fn difference(&self, other: &Self) -> Self;

    /// Size of the intersection without materializing it.
    fn intersect_len(&self, other: &Self) -> usize;

    /// Approximate resident heap + inline size of this set, in bytes.
    /// `BENCH_setops.json` compares backends with this.
    fn memory_bytes(&self) -> usize;

    /// The distinct `/24` blocks touched by this set, ascending.
    fn blocks24(&self) -> Vec<Block24> {
        let mut out: Vec<Block24> = Vec::new();
        for a in self.iter() {
            let b = Block24::of(a);
            if out.last() != Some(&b) {
                out.push(b);
            }
        }
        out
    }

    /// The minimal ordered list of CIDR prefixes covering *exactly*
    /// this set. Same contract (and algorithm) as
    /// [`crate::AddrSet::to_prefixes`], so backends agree byte-for-byte.
    fn to_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut iter = self.iter().peekable();
        while let Some(start) = iter.next() {
            // Extend the maximal consecutive run starting here.
            let mut len = 1u64;
            let mut prev = start;
            while let Some(&next) = iter.peek() {
                if next.bits() as u64 == prev.bits() as u64 + 1 {
                    prev = next;
                    iter.next();
                    len += 1;
                } else {
                    break;
                }
            }
            out.extend(Prefix::cover_range(start, len));
        }
        out
    }
}
