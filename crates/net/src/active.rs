//! The [`ActiveSet`] abstraction: what an "active address set" must
//! provide so the analysis layers can run against interchangeable
//! backends.
//!
//! Two implementations live in this crate:
//!
//! * [`crate::AddrSet`] (aliased [`crate::RefSet`]) — the sorted-`Vec`
//!   reference. Simple, obviously correct, and the oracle the
//!   differential property suite checks every other backend against.
//! * [`crate::TieredSet`] — the Roaring-style chunked representation
//!   that makes paper-scale (~1.2B address) runs fit in memory.
//!
//! Both iterate ascending and implement identical set algebra, so any
//! analysis generic over `S: ActiveSet` produces byte-identical output
//! regardless of the backend — an invariant pinned by
//! `crates/net/tests/tiered_prop.rs` and the figure-suite differential
//! test in `crates/bench/tests/engine.rs`.

use crate::{Addr, AddrBits256, Block24, Prefix};

/// Streaming constructor for an [`ActiveSet`], fed one `/24` block at a
/// time in ascending block order.
///
/// This is how the dataset layers materialize day/week activity sets:
/// they already hold per-block bitmaps, so handing whole blocks to the
/// builder avoids both a counting pre-pass and a per-address sort —
/// and lets a chunked backend adopt each block without rewriting it.
pub trait SetBuilder: Sized {
    /// The set type this builder produces.
    type Set: ActiveSet;

    /// A builder holding no addresses yet.
    fn new() -> Self;

    /// Appends the members of `block` given by `bits`.
    ///
    /// Blocks must arrive in strictly ascending order; an empty `bits`
    /// is allowed and contributes nothing.
    fn push_block(&mut self, block: Block24, bits: &AddrBits256);

    /// Finalizes the set.
    fn finish(self) -> Self::Set;
}

/// An immutable-flavored set of IPv4 addresses with ascending
/// iteration, prefix range queries, and linear-merge set algebra.
///
/// Implementations must agree exactly: for any two sets with equal
/// membership, every method here returns equal results (and `iter`
/// yields the same ascending sequence). The analysis stack relies on
/// this to swap backends without disturbing figure output.
pub trait ActiveSet:
    Sized
    + Clone
    + Default
    + core::fmt::Debug
    + PartialEq
    + Eq
    + Send
    + Sync
    + FromIterator<Addr>
    + 'static
{
    /// Ascending iterator over members.
    type Iter<'a>: Iterator<Item = Addr> + 'a
    where
        Self: 'a;

    /// The streaming block-wise constructor for this backend.
    type Builder: SetBuilder<Set = Self>;

    /// A short stable identifier for reports (`"ref"`, `"tiered"`).
    fn backend_name() -> &'static str;

    /// An empty set.
    fn empty() -> Self;

    /// Builds from a sorted, deduplicated vector of addresses.
    fn from_sorted_vec(addrs: Vec<Addr>) -> Self;

    /// Number of members.
    fn len(&self) -> usize;

    /// Whether the set has no members.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    fn contains(&self, addr: Addr) -> bool;

    /// Number of members inside `prefix`.
    fn count_in(&self, prefix: Prefix) -> usize;

    /// Whether any member falls inside `prefix` (the hot primitive
    /// behind covering-mask growth; backends should short-circuit).
    fn any_in(&self, prefix: Prefix) -> bool {
        self.count_in(prefix) > 0
    }

    /// The smallest covering mask for an event at `addr` when this set
    /// is the exclusion population: the largest prefix around `addr`
    /// containing no member (see [`crate::covering_mask`] for the
    /// figure-5(b) semantics). The default grows one mask bit at a time
    /// through [`ActiveSet::any_in`]; backends may override with an
    /// equivalent faster walk. Must agree with the default exactly.
    fn covering_mask(&self, addr: Addr) -> u8 {
        let mut mask = 32u8;
        while mask > 0 {
            let candidate = Prefix::containing(addr, mask - 1);
            if self.any_in(candidate) {
                break;
            }
            mask -= 1;
        }
        mask
    }

    /// Ascending iterator over members.
    fn iter(&self) -> Self::Iter<'_>;

    /// Inserts one address; returns whether it was newly added.
    fn insert(&mut self, addr: Addr) -> bool;

    /// Set union.
    fn union(&self, other: &Self) -> Self;

    /// Union of many sets in one pass.
    ///
    /// The default folds pairwise (correct for any backend, and what
    /// the reference oracle uses); chunked backends override it with a
    /// k-way merge so an n-day window union materializes no n−1
    /// intermediate sets. Must equal the pairwise fold exactly.
    fn union_many(sets: &[&Self]) -> Self {
        sets.iter().fold(Self::empty(), |acc, s| acc.union(s))
    }

    /// Set intersection.
    fn intersect(&self, other: &Self) -> Self;

    /// Set difference (`self \ other`).
    fn difference(&self, other: &Self) -> Self;

    /// Size of the intersection without materializing it.
    fn intersect_len(&self, other: &Self) -> usize;

    /// Calls `f` with every member of `self \ other`, ascending — the
    /// streaming form of [`ActiveSet::difference`] for consumers that
    /// size each element and drop it (event sizing walks one window
    /// pair per histogram merge and never needs the set). The default
    /// materializes the difference; chunked backends override with a
    /// merge walk that allocates nothing. Must visit exactly the
    /// members of [`ActiveSet::difference`], in iteration order.
    fn for_each_difference(&self, other: &Self, mut f: impl FnMut(Addr)) {
        for addr in self.difference(other).iter() {
            f(addr);
        }
    }

    /// Calls `f` with the covering mask of every event in `self \
    /// other`, sized against `other` as the exclusion population —
    /// the whole event-sizing inner loop of one window pair (up
    /// events: `cur.diff_event_masks(&prev, …)`; down events swap the
    /// operands). Events ascend, so chunked backends override this
    /// with a single merge walk whose cursor into `other` doubles as
    /// the covering-mask neighbor probe — no per-event binary search.
    /// Must equal [`ActiveSet::covering_mask`] over
    /// [`ActiveSet::for_each_difference`], in order.
    fn diff_event_masks(&self, other: &Self, mut f: impl FnMut(u8)) {
        self.for_each_difference(other, |addr| f(other.covering_mask(addr)));
    }

    /// Approximate resident heap + inline size of this set, in bytes.
    /// `BENCH_setops.json` compares backends with this.
    fn memory_bytes(&self) -> usize;

    /// The distinct `/24` blocks touched by this set, ascending.
    fn blocks24(&self) -> Vec<Block24> {
        let mut out: Vec<Block24> = Vec::new();
        for a in self.iter() {
            let b = Block24::of(a);
            if out.last() != Some(&b) {
                out.push(b);
            }
        }
        out
    }

    /// Per-`/24` member counts, ascending by block — the whole
    /// `count_in(block)` column in one pass. The default groups the
    /// ascending iterator; chunked backends return their chunk
    /// directory without touching members. Must equal the default
    /// exactly.
    fn block_counts(&self) -> Vec<(Block24, u32)> {
        let mut out: Vec<(Block24, u32)> = Vec::new();
        for a in self.iter() {
            let b = Block24::of(a);
            match out.last_mut() {
                Some((last, n)) if *last == b => *n += 1,
                _ => out.push((b, 1)),
            }
        }
        out
    }

    /// Per-`/24` counts of `self ∩ other`, ascending by block, blocks
    /// with an empty intersection omitted. The default materializes
    /// the intersection; chunked backends walk the two chunk lists
    /// and popcount, allocating no set. Must equal the default
    /// exactly.
    fn intersect_block_counts(&self, other: &Self) -> Vec<(Block24, u32)> {
        self.intersect(other).block_counts()
    }

    /// The minimal ordered list of CIDR prefixes covering *exactly*
    /// this set. Same contract (and algorithm) as
    /// [`crate::AddrSet::to_prefixes`], so backends agree byte-for-byte.
    fn to_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut iter = self.iter().peekable();
        while let Some(start) = iter.next() {
            // Extend the maximal consecutive run starting here.
            let mut len = 1u64;
            let mut prev = start;
            while let Some(&next) = iter.peek() {
                if next.bits() as u64 == prev.bits() as u64 + 1 {
                    prev = next;
                    iter.next();
                    len += 1;
                } else {
                    break;
                }
            }
            out.extend(Prefix::cover_range(start, len));
        }
        out
    }
}
