//! `/24` block identifiers.
//!
//! The paper's spatio-temporal metrics (filling degree, spatio-temporal
//! utilization) are defined over `/24` blocks — "the smallest distinct,
//! globally-routed entity" (Section 5.1). [`Block24`] is a compact
//! 24-bit identifier for such a block (the address' top three octets).

use crate::{Addr, Prefix};
use core::fmt;

/// Identifier of a `/24` CIDR block: the upper 24 bits of its addresses.
///
/// `Block24` is `Copy + Ord` and only 4 bytes, so it is used as the key
/// for all per-block aggregation maps. Blocks order numerically, i.e. in
/// address-space order.
///
/// ```
/// use ipactive_net::{Addr, Block24};
/// let b = Block24::of("203.0.113.77".parse().unwrap());
/// assert_eq!(b.network().to_string(), "203.0.113.0");
/// assert_eq!(b.addr(77).to_string(), "203.0.113.77");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Block24(u32);

impl Block24 {
    /// Number of addresses in a `/24` block.
    pub const SIZE: usize = 256;

    /// Creates a block id from the upper 24 bits (`addr >> 8`).
    /// Panics if `id` does not fit in 24 bits.
    #[inline]
    pub fn new(id: u32) -> Self {
        assert!(id < (1 << 24), "block id {id:#x} exceeds 24 bits");
        Block24(id)
    }

    /// The block containing `addr`.
    #[inline]
    pub const fn of(addr: Addr) -> Self {
        Block24(addr.bits() >> 8)
    }

    /// The raw 24-bit identifier.
    #[inline]
    pub const fn id(self) -> u32 {
        self.0
    }

    /// The block's network address (`x.y.z.0`).
    #[inline]
    pub const fn network(self) -> Addr {
        Addr::new(self.0 << 8)
    }

    /// The `i`-th address within the block (`x.y.z.i`).
    #[inline]
    pub const fn addr(self, i: u8) -> Addr {
        Addr::new((self.0 << 8) | i as u32)
    }

    /// The block as a [`Prefix`] of length 24.
    #[inline]
    pub fn prefix(self) -> Prefix {
        Prefix::new(self.network(), 24)
    }

    /// Iterator over the 256 addresses of the block, in order.
    pub fn addrs(self) -> impl Iterator<Item = Addr> {
        let base = self.0 << 8;
        (0u32..256).map(move |i| Addr::new(base | i))
    }

    /// The next block in address-space order, or `None` at the top.
    #[inline]
    pub fn next(self) -> Option<Self> {
        if self.0 + 1 < (1 << 24) {
            Some(Block24(self.0 + 1))
        } else {
            None
        }
    }
}

impl fmt::Display for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

impl fmt::Debug for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block24({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_and_network() {
        let b = Block24::of("10.20.30.40".parse().unwrap());
        assert_eq!(b.network().to_string(), "10.20.30.0");
        assert_eq!(b.id(), (10 << 16) | (20 << 8) | 30);
    }

    #[test]
    fn addr_indexing() {
        let b = Block24::of("192.0.2.0".parse().unwrap());
        assert_eq!(b.addr(0).to_string(), "192.0.2.0");
        assert_eq!(b.addr(255).to_string(), "192.0.2.255");
    }

    #[test]
    fn all_contained_addrs_map_back() {
        let b = Block24::new(0x00C000);
        for a in b.addrs() {
            assert_eq!(Block24::of(a), b);
        }
        assert_eq!(b.addrs().count(), Block24::SIZE);
    }

    #[test]
    fn prefix_conversion() {
        let b = Block24::of("172.16.5.99".parse().unwrap());
        let p = b.prefix();
        assert_eq!(p.to_string(), "172.16.5.0/24");
        assert!(p.contains(b.addr(0)));
        assert!(p.contains(b.addr(255)));
    }

    #[test]
    fn ordering_is_address_order() {
        let a = Block24::of("10.0.0.0".parse().unwrap());
        let b = Block24::of("10.0.1.0".parse().unwrap());
        let c = Block24::of("11.0.0.0".parse().unwrap());
        assert!(a < b && b < c);
    }

    #[test]
    fn next_wraps_to_none_at_top() {
        let top = Block24::new((1 << 24) - 1);
        assert!(top.next().is_none());
        assert_eq!(Block24::new(5).next(), Some(Block24::new(6)));
    }

    #[test]
    #[should_panic(expected = "exceeds 24 bits")]
    fn new_rejects_oversized_ids() {
        Block24::new(1 << 24);
    }

    #[test]
    fn display_format() {
        assert_eq!(Block24::of("198.51.100.9".parse().unwrap()).to_string(), "198.51.100.0/24");
    }
}
