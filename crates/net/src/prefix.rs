//! CIDR prefixes.

use crate::Addr;
use core::fmt;
use core::str::FromStr;

/// An IPv4 CIDR prefix: a network base address plus a mask length.
///
/// The base is always stored in canonical form (host bits zeroed), so two
/// `Prefix` values compare equal iff they denote the same address range.
///
/// ```
/// use ipactive_net::{Addr, Prefix};
/// let p: Prefix = "198.51.100.0/22".parse().unwrap();
/// assert_eq!(p.len(), 22);
/// assert_eq!(p.num_addrs(), 1024);
/// assert!(p.contains("198.51.103.255".parse().unwrap()));
/// assert!(!p.contains("198.51.104.0".parse().unwrap()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Prefix {
    base: u32,
    len: u8,
}

impl Prefix {
    /// The whole IPv4 space, `0.0.0.0/0`.
    pub const ALL: Prefix = Prefix { base: 0, len: 0 };

    /// Creates a prefix from a base address and mask length, canonicalizing
    /// the base (zeroing host bits). Panics if `len > 32`.
    #[inline]
    pub fn new(base: Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix { base: base.bits() & Self::mask_bits(len), len }
    }

    /// The netmask as a `u32` for a given prefix length.
    #[inline]
    pub const fn mask_bits(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network (base) address.
    #[inline]
    pub const fn network(self) -> Addr {
        Addr::new(self.base)
    }

    /// The mask length (0..=32).
    #[inline]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// `true` only for the degenerate `/0` prefix viewed as "no mask bits".
    /// Provided to satisfy the `len`/`is_empty` convention; a prefix always
    /// contains at least one address.
    #[inline]
    pub const fn is_empty(self) -> bool {
        false
    }

    /// The highest address inside the prefix.
    #[inline]
    pub const fn last(self) -> Addr {
        Addr::new(self.base | !Self::mask_bits(self.len))
    }

    /// Number of addresses covered (2^(32-len)); saturates at `u32::MAX`
    /// for `/0` (which covers 2^32, one more than `u32::MAX`).
    #[inline]
    pub const fn num_addrs(self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len)
        }
    }

    /// Whether `addr` falls inside this prefix.
    #[inline]
    pub const fn contains(self, addr: Addr) -> bool {
        addr.bits() & Self::mask_bits(self.len) == self.base
    }

    /// Whether `other` is fully contained in `self` (including equality).
    #[inline]
    pub const fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && (other.base & Self::mask_bits(self.len)) == self.base
    }

    /// The prefix one bit shorter that contains this one, or `None` for `/0`.
    #[inline]
    pub fn supernet(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(Addr::new(self.base), self.len - 1))
        }
    }

    /// The two halves of this prefix, or `None` for `/32`.
    #[inline]
    pub fn split(self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            return None;
        }
        let child_len = self.len + 1;
        let hi_base = self.base | (1u32 << (32 - child_len));
        Some((
            Prefix { base: self.base, len: child_len },
            Prefix { base: hi_base, len: child_len },
        ))
    }

    /// The containing prefix of `addr` at mask length `len`.
    #[inline]
    pub fn containing(addr: Addr, len: u8) -> Prefix {
        Prefix::new(addr, len)
    }

    /// Expands the half-open address range `[start, start+count)` into
    /// the minimal ordered list of CIDR prefixes covering it exactly.
    ///
    /// The classic allocation-file expansion: each step takes the
    /// largest power-of-two block that is aligned at the cursor and no
    /// larger than what remains.
    ///
    /// ```
    /// use ipactive_net::{Addr, Prefix};
    /// let ps = Prefix::cover_range("10.0.0.0".parse().unwrap(), 768);
    /// let strs: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
    /// assert_eq!(strs, vec!["10.0.0.0/23", "10.0.2.0/24"]);
    /// ```
    pub fn cover_range(start: Addr, count: u64) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut cur = start.bits() as u64;
        let mut remaining = count.min((1u64 << 32) - cur);
        while remaining > 0 {
            let align =
                if cur == 0 { 1u64 << 32 } else { 1u64 << cur.trailing_zeros().min(32) };
            let size = align.min(1u64 << (63 - remaining.leading_zeros()));
            let len = 32 - size.trailing_zeros() as u8;
            out.push(Prefix::new(Addr::new(cur as u32), len));
            cur += size;
            remaining -= size;
        }
        out
    }

    /// Iterator over all addresses in the prefix, in increasing order.
    ///
    /// Covers at most 2^32 addresses; intended for small prefixes.
    pub fn addrs(self) -> impl Iterator<Item = Addr> {
        let start = self.base as u64;
        let count = if self.len == 0 { 1u64 << 32 } else { 1u64 << (32 - self.len) };
        (start..start + count).map(|v| Addr::new(v as u32))
    }

    /// Iterator over the `/24` sub-blocks of this prefix. For prefixes
    /// longer than `/24`, yields the single containing `/24`.
    pub fn blocks24(self) -> impl Iterator<Item = crate::Block24> {
        let first = self.base >> 8;
        let last = if self.len >= 24 { first } else { (self.last().bits()) >> 8 };
        (first..=last).map(crate::Block24::new)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Prefixes order by base address first, then by mask length (shorter —
/// i.e. larger — prefixes first). This makes a sorted list of prefixes
/// place covering prefixes immediately before their subnets.
impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.base, self.len).cmp(&(other.base, other.len))
    }
}

/// Error returned when parsing a [`Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError {
    input: String,
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 prefix: {:?}", self.input)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError { input: s.to_owned() };
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let addr: Addr = addr.parse().map_err(|_| err())?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_base() {
        assert_eq!(p("10.1.2.3/16"), p("10.1.0.0/16"));
        assert_eq!(p("10.1.2.3/16").network().to_string(), "10.1.0.0");
    }

    #[test]
    fn contains_boundaries() {
        let pre = p("198.51.100.0/22");
        assert!(pre.contains("198.51.100.0".parse().unwrap()));
        assert!(pre.contains("198.51.103.255".parse().unwrap()));
        assert!(!pre.contains("198.51.99.255".parse().unwrap()));
        assert!(!pre.contains("198.51.104.0".parse().unwrap()));
    }

    #[test]
    fn covers_is_reflexive_and_hierarchical() {
        let a = p("10.0.0.0/8");
        let b = p("10.5.0.0/16");
        let c = p("11.0.0.0/8");
        assert!(a.covers(a));
        assert!(a.covers(b));
        assert!(!b.covers(a));
        assert!(!a.covers(c));
        assert!(Prefix::ALL.covers(a));
    }

    #[test]
    fn split_and_supernet_are_inverses() {
        let pre = p("192.0.2.0/24");
        let (lo, hi) = pre.split().unwrap();
        assert_eq!(lo, p("192.0.2.0/25"));
        assert_eq!(hi, p("192.0.2.128/25"));
        assert_eq!(lo.supernet().unwrap(), pre);
        assert_eq!(hi.supernet().unwrap(), pre);
        assert!(p("1.2.3.4/32").split().is_none());
        assert!(Prefix::ALL.supernet().is_none());
    }

    #[test]
    fn num_addrs_and_last() {
        assert_eq!(p("192.0.2.0/24").num_addrs(), 256);
        assert_eq!(p("192.0.2.0/31").num_addrs(), 2);
        assert_eq!(p("192.0.2.7/32").num_addrs(), 1);
        assert_eq!(p("192.0.2.0/24").last().to_string(), "192.0.2.255");
        assert_eq!(Prefix::ALL.last(), Addr::MAX);
    }

    #[test]
    fn addr_iteration() {
        let addrs: Vec<_> = p("203.0.113.252/30").addrs().collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0].to_string(), "203.0.113.252");
        assert_eq!(addrs[3].to_string(), "203.0.113.255");
    }

    #[test]
    fn blocks24_enumeration() {
        let blocks: Vec<_> = p("10.0.0.0/22").blocks24().collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].network().to_string(), "10.0.0.0");
        assert_eq!(blocks[3].network().to_string(), "10.0.3.0");
        // A /26 still reports its single containing /24.
        let blocks: Vec<_> = p("10.0.0.64/26").blocks24().collect();
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn ordering_groups_supernets_first() {
        let mut v = vec![p("10.0.0.0/16"), p("10.0.0.0/8"), p("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/16")]);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "/8", "10.0.0.0/8/9"] {
            assert!(s.parse::<Prefix>().is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn cover_range_exact() {
        let start: Addr = "192.0.2.128".parse().unwrap();
        let ps = Prefix::cover_range(start, 384);
        let mut cursor = start.bits() as u64;
        for p in &ps {
            assert_eq!(p.network().bits() as u64, cursor);
            cursor += p.num_addrs() as u64;
        }
        assert_eq!(cursor - start.bits() as u64, 384);
        // Degenerate cases.
        assert!(Prefix::cover_range(start, 0).is_empty());
        assert_eq!(Prefix::cover_range(Addr::MIN, 1 << 32), vec![Prefix::ALL]);
        assert_eq!(
            Prefix::cover_range("1.2.3.4".parse().unwrap(), 1),
            vec![p("1.2.3.4/32")]
        );
        // Counts past the top of the space are clamped.
        let ps = Prefix::cover_range(Addr::MAX, 100);
        assert_eq!(ps, vec![p("255.255.255.255/32")]);
    }

    #[test]
    fn display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.128/25", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }
}
