//! Compact bitsets used throughout the analysis pipeline.
//!
//! * [`DayBits`] — up to 128 observation days for a single address
//!   (the daily dataset in the paper spans 112 days).
//! * [`AddrBits256`] — the 256 addresses of one `/24` block.

use core::fmt;

/// Activity bitset over observation days (bit `d` = active on day `d`).
///
/// Backed by a single `u128`; the paper's daily dataset covers 112 days,
/// comfortably inside the 128-day capacity.
///
/// ```
/// use ipactive_net::DayBits;
/// let mut days = DayBits::new();
/// days.set(0);
/// days.set(111);
/// assert_eq!(days.count(), 2);
/// assert!(days.get(111));
/// assert_eq!(days.iter().collect::<Vec<_>>(), vec![0, 111]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DayBits(u128);

impl DayBits {
    /// Maximum representable day index + 1.
    pub const CAPACITY: usize = 128;

    /// An empty set (no active days).
    #[inline]
    pub const fn new() -> Self {
        DayBits(0)
    }

    /// Constructs from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u128) -> Self {
        DayBits(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Marks day `d` active. Panics if `d >= 128`.
    #[inline]
    pub fn set(&mut self, d: usize) {
        assert!(d < Self::CAPACITY, "day {d} out of range");
        self.0 |= 1u128 << d;
    }

    /// Clears day `d`. Panics if `d >= 128`.
    #[inline]
    pub fn clear(&mut self, d: usize) {
        assert!(d < Self::CAPACITY, "day {d} out of range");
        self.0 &= !(1u128 << d);
    }

    /// Whether day `d` is active. Panics if `d >= 128`.
    #[inline]
    pub fn get(self, d: usize) -> bool {
        assert!(d < Self::CAPACITY, "day {d} out of range");
        self.0 & (1u128 << d) != 0
    }

    /// Number of active days.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no day is active.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of active days within `[start, end)`.
    #[inline]
    pub fn count_range(self, start: usize, end: usize) -> u32 {
        assert!(start <= end && end <= Self::CAPACITY, "range {start}..{end} out of bounds");
        if start == end {
            return 0;
        }
        let width = end - start;
        let mask = if width == Self::CAPACITY { u128::MAX } else { ((1u128 << width) - 1) << start };
        (self.0 & mask).count_ones()
    }

    /// Whether any day within `[start, end)` is active.
    #[inline]
    pub fn any_in_range(self, start: usize, end: usize) -> bool {
        self.count_range(start, end) > 0
    }

    /// Iterator over active day indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        core::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let d = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(d)
            }
        })
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        DayBits(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersect(self, other: Self) -> Self {
        DayBits(self.0 & other.0)
    }
}

impl fmt::Debug for DayBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DayBits[{} days]", self.count())
    }
}

/// Bitset over the 256 addresses of a `/24` block (bit `i` = `x.y.z.i`).
///
/// ```
/// use ipactive_net::AddrBits256;
/// let mut b = AddrBits256::new();
/// b.set(0);
/// b.set(255);
/// assert_eq!(b.count(), 2);
/// assert!(b.get(255) && !b.get(128));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AddrBits256([u64; 4]);

impl AddrBits256 {
    /// An empty set.
    #[inline]
    pub const fn new() -> Self {
        AddrBits256([0; 4])
    }

    /// A set with all 256 addresses present.
    #[inline]
    pub const fn full() -> Self {
        AddrBits256([u64::MAX; 4])
    }

    /// Constructs from four backing words, least significant first
    /// (word `w` holds host indices `64w..64w+63`).
    #[inline]
    pub const fn from_words(words: [u64; 4]) -> Self {
        AddrBits256(words)
    }

    /// Marks host index `i` present.
    #[inline]
    pub fn set(&mut self, i: u8) {
        self.0[(i >> 6) as usize] |= 1u64 << (i & 63);
    }

    /// Clears host index `i`.
    #[inline]
    pub fn clear(&mut self, i: u8) {
        self.0[(i >> 6) as usize] &= !(1u64 << (i & 63));
    }

    /// Marks every host index in `lo..=hi` present, via word masks
    /// instead of a per-bit loop (a fully-lit block is 4 word ORs).
    pub fn set_range(&mut self, lo: u8, hi: u8) {
        debug_assert!(lo <= hi);
        for w in 0..4usize {
            let base = (w as u16) << 6;
            let wlo = (lo as u16).clamp(base, base + 64) - base;
            let whi = (hi as u16 + 1).clamp(base, base + 64) - base;
            if wlo < whi {
                let mask = if whi - wlo == 64 {
                    u64::MAX
                } else {
                    ((1u64 << (whi - wlo)) - 1) << wlo
                };
                self.0[w] |= mask;
            }
        }
    }

    /// Whether host index `i` is present.
    #[inline]
    pub fn get(&self, i: u8) -> bool {
        self.0[(i >> 6) as usize] & (1u64 << (i & 63)) != 0
    }

    /// Number of present addresses (0..=256).
    #[inline]
    pub fn count(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Set union.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        AddrBits256([
            self.0[0] | other.0[0],
            self.0[1] | other.0[1],
            self.0[2] | other.0[2],
            self.0[3] | other.0[3],
        ])
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(&self, other: &Self) -> Self {
        AddrBits256([
            self.0[0] & other.0[0],
            self.0[1] & other.0[1],
            self.0[2] & other.0[2],
            self.0[3] & other.0[3],
        ])
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        AddrBits256([
            self.0[0] & !other.0[0],
            self.0[1] & !other.0[1],
            self.0[2] & !other.0[2],
            self.0[3] & !other.0[3],
        ])
    }

    /// The backing 64-bit words, least significant first (word `w`
    /// holds host indices `64w..64w+63`).
    #[inline]
    pub const fn words(&self) -> &[u64; 4] {
        &self.0
    }

    /// Iterator over present host indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..4usize).flat_map(move |w| {
            let mut word = self.0[w];
            core::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as u8;
                    word &= word - 1;
                    Some(((w as u8) << 6) | bit)
                }
            })
        })
    }
}

impl fmt::Debug for AddrBits256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AddrBits256[{} addrs]", self.count())
    }
}

impl FromIterator<u8> for AddrBits256 {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        let mut s = AddrBits256::new();
        for i in iter {
            s.set(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daybits_set_get_clear() {
        let mut d = DayBits::new();
        assert!(d.is_empty());
        d.set(5);
        d.set(127);
        assert!(d.get(5) && d.get(127) && !d.get(6));
        d.clear(5);
        assert!(!d.get(5));
        assert_eq!(d.count(), 1);
    }

    #[test]
    fn daybits_count_range_edges() {
        let mut d = DayBits::new();
        for day in [0usize, 1, 63, 64, 100, 127] {
            d.set(day);
        }
        assert_eq!(d.count_range(0, 128), 6);
        assert_eq!(d.count_range(0, 0), 0);
        assert_eq!(d.count_range(0, 1), 1);
        assert_eq!(d.count_range(1, 64), 2);
        assert_eq!(d.count_range(64, 128), 3);
        assert_eq!(d.count_range(101, 127), 0);
        assert!(d.any_in_range(60, 70));
        assert!(!d.any_in_range(2, 63));
    }

    #[test]
    fn daybits_iter_ascending() {
        let mut d = DayBits::new();
        for day in [90usize, 3, 45] {
            d.set(day);
        }
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![3, 45, 90]);
    }

    #[test]
    fn daybits_union_intersect() {
        let mut a = DayBits::new();
        a.set(1);
        a.set(2);
        let mut b = DayBits::new();
        b.set(2);
        b.set(3);
        assert_eq!(a.union(b).count(), 3);
        assert_eq!(a.intersect(b).iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn daybits_rejects_day_128() {
        DayBits::new().set(128);
    }

    #[test]
    fn addrbits_basics() {
        let mut b = AddrBits256::new();
        assert!(b.is_empty());
        for i in [0u8, 63, 64, 128, 255] {
            b.set(i);
        }
        assert_eq!(b.count(), 5);
        assert!(b.get(64) && !b.get(65));
        b.clear(64);
        assert_eq!(b.count(), 4);
        assert_eq!(AddrBits256::full().count(), 256);
    }

    #[test]
    fn addrbits_set_range_matches_per_bit_loop() {
        for (lo, hi) in [(0u8, 255u8), (0, 0), (255, 255), (5, 70), (63, 64), (64, 127), (1, 200)] {
            let mut fast = AddrBits256::new();
            fast.set_range(lo, hi);
            let mut slow = AddrBits256::new();
            for i in lo..=hi {
                slow.set(i);
            }
            assert_eq!(fast, slow, "range {lo}..={hi}");
        }
        let mut b = AddrBits256::from_words([1, 0, 0, 0]);
        b.set_range(100, 101);
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn addrbits_set_algebra() {
        let a: AddrBits256 = [1u8, 2, 3].into_iter().collect();
        let b: AddrBits256 = [3u8, 4].into_iter().collect();
        assert_eq!(a.union(&b).count(), 4);
        assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn addrbits_iter_order_and_roundtrip() {
        let src = [200u8, 5, 100, 64, 63];
        let b: AddrBits256 = src.into_iter().collect();
        let got: Vec<u8> = b.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 100, 200]);
    }
}
