//! Differential property suite: [`TieredSet`] vs the sorted-`Vec`
//! reference oracle ([`RefSet`]).
//!
//! Arbitrary operation sequences (insert / union / intersect /
//! difference) are applied to both backends simultaneously; after
//! every step the suite asserts *bit-identical* observable state —
//! length, ascending iteration, membership, prefix range counts, the
//! O(1) density index — plus the tiered set's structural invariant
//! (every chunk canonical for its contents).
//!
//! CI runs this with `PROPTEST_SEED=20160316 PROPTEST_CASES=10000`
//! (the `setops-differential` job); the in-file default keeps debug
//! `cargo test` fast.

use ipactive_net::{
    ActiveSet, Addr, Prefix, PrefixDensity, RefSet, TieredSet, RUNS_MAX, SPARSE_MAX,
};
use proptest::prelude::*;

/// Block bases the clustered generator draws from: several /24s that
/// share /16s and /8s (so aggregate levels get multi-chunk sums), plus
/// the extremes of the address space.
const BLOCK_BASES: [u32; 12] = [
    0x0000_0000,
    0x0A00_0000,
    0x0A00_0100,
    0x0A00_0200,
    0x0A01_0000,
    0x0A01_0100,
    0xC0A8_0000,
    0xC0A8_0100,
    0xC633_6400,
    0xDFFF_FE00,
    0xFFFF_FE00,
    0xFFFF_FF00,
];

/// Addresses biased into a small set of /24 blocks so operations
/// actually collide on chunks (uniform u32s almost never would), with
/// a uniform tail mixed in for coverage of the whole space.
fn arb_addr() -> impl Strategy<Value = Addr> {
    (any::<u32>(), any::<u8>(), 0usize..16).prop_map(|(raw, host, pick)| {
        match BLOCK_BASES.get(pick) {
            Some(&base) => Addr::new(base | host as u32),
            None => Addr::new(raw),
        }
    })
}

fn arb_addr_vec(max: usize) -> impl Strategy<Value = Vec<Addr>> {
    prop::collection::vec(arb_addr(), 0..max)
}

/// One step of an operation sequence. Encoded numerically so the
/// vendored proptest shim needs no one-of combinator.
#[derive(Debug, Clone)]
enum Op {
    Insert(Addr),
    Union(Vec<Addr>),
    Intersect(Vec<Addr>),
    Difference(Vec<Addr>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..4, arb_addr(), arb_addr_vec(160)).prop_map(|(kind, addr, vec)| match kind {
        0 => Op::Insert(addr),
        1 => Op::Union(vec),
        2 => Op::Intersect(vec),
        _ => Op::Difference(vec),
    })
}

fn apply(op: &Op, tiered: &mut TieredSet, oracle: &mut RefSet) {
    match op {
        Op::Insert(a) => {
            let added_t = tiered.insert(*a);
            let added_r = ActiveSet::insert(oracle, *a);
            assert_eq!(added_t, added_r, "insert({a}) disagreed on novelty");
        }
        Op::Union(v) => {
            let rhs_t: TieredSet = v.iter().copied().collect();
            let rhs_r: RefSet = v.iter().copied().collect();
            *tiered = tiered.union(&rhs_t);
            *oracle = oracle.union(&rhs_r);
        }
        Op::Intersect(v) => {
            let rhs_t: TieredSet = v.iter().copied().collect();
            let rhs_r: RefSet = v.iter().copied().collect();
            *tiered = tiered.intersect(&rhs_t);
            *oracle = oracle.intersect(&rhs_r);
        }
        Op::Difference(v) => {
            let rhs_t: TieredSet = v.iter().copied().collect();
            let rhs_r: RefSet = v.iter().copied().collect();
            *tiered = tiered.difference(&rhs_t);
            *oracle = oracle.difference(&rhs_r);
        }
    }
}

/// Prefixes to probe range queries with: aggregates around each
/// member, host-granular slices, and fixed wide nets.
fn probe_prefixes(members: &[Addr]) -> Vec<Prefix> {
    let mut out = vec![
        "0.0.0.0/0".parse().unwrap(),
        "10.0.0.0/8".parse().unwrap(),
        "10.0.0.0/15".parse().unwrap(),
        "192.168.0.0/16".parse().unwrap(),
        "11.0.0.0/8".parse().unwrap(),
    ];
    for &a in members.iter().take(6) {
        for len in [32u8, 28, 25, 24, 23, 20, 12] {
            out.push(Prefix::containing(a, len));
        }
    }
    out
}

/// The full observable-equivalence check between the two backends.
fn assert_equiv(tiered: &TieredSet, oracle: &RefSet) {
    assert!(tiered.is_canonical(), "structural invariant broken: {tiered:?}");
    assert_eq!(tiered.len(), oracle.len(), "len diverged");
    assert_eq!(tiered.is_empty(), oracle.is_empty());
    let t_members: Vec<Addr> = tiered.iter().collect();
    let r_members: Vec<Addr> = oracle.iter().collect();
    assert_eq!(t_members, r_members, "iteration diverged");
    for p in probe_prefixes(&r_members) {
        assert_eq!(tiered.count_in(p), oracle.count_in(p), "count_in({p}) diverged");
        assert_eq!(tiered.any_in(p), oracle.any_in(p), "any_in({p}) diverged");
    }
    for &a in r_members.iter().take(8) {
        assert!(tiered.contains(a), "member {a} missing");
        // A near-miss probe one past the member.
        if let Some(next) = a.next() {
            assert_eq!(tiered.contains(next), oracle.contains(next), "contains({next})");
        }
    }
    assert_eq!(ActiveSet::blocks24(tiered), ActiveSet::blocks24(oracle));
}

/// The representation the canonical rule must pick for a single-chunk
/// set with the given sorted host octets — recomputed independently of
/// the implementation.
fn expected_repr(hosts: &[u8]) -> &'static str {
    let runs = hosts
        .windows(2)
        .filter(|w| w[1] as u16 != w[0] as u16 + 1)
        .count()
        + usize::from(!hosts.is_empty());
    if hosts.len() <= SPARSE_MAX {
        "sparse"
    } else if runs <= RUNS_MAX {
        "runs"
    } else {
        "dense"
    }
}

fn census_label(t: &TieredSet) -> &'static str {
    let c = t.repr_census();
    assert_eq!(c.total(), 1, "expected a single chunk, got {c:?}");
    if c.sparse == 1 {
        "sparse"
    } else if c.runs == 1 {
        "runs"
    } else {
        "dense"
    }
}

proptest! {
    /// The tentpole: arbitrary op sequences, bit-identical at every step.
    #[test]
    fn differential_op_sequences(
        seed in arb_addr_vec(300),
        ops in prop::collection::vec(arb_op(), 0..10),
    ) {
        let mut tiered: TieredSet = seed.iter().copied().collect();
        let mut oracle: RefSet = seed.iter().copied().collect();
        assert_equiv(&tiered, &oracle);
        for op in &ops {
            apply(op, &mut tiered, &mut oracle);
            assert_equiv(&tiered, &oracle);
        }
    }

    /// Set algebra over two generated operands matches the oracle and
    /// obeys inclusion–exclusion on both backends.
    #[test]
    fn algebra_matches_oracle(xs in arb_addr_vec(400), ys in arb_addr_vec(400)) {
        let tx: TieredSet = xs.iter().copied().collect();
        let ty: TieredSet = ys.iter().copied().collect();
        let rx: RefSet = xs.iter().copied().collect();
        let ry: RefSet = ys.iter().copied().collect();
        for (t, r) in [
            (tx.union(&ty), rx.union(&ry)),
            (tx.intersect(&ty), rx.intersect(&ry)),
            (tx.difference(&ty), rx.difference(&ry)),
            (ty.difference(&tx), ry.difference(&rx)),
        ] {
            assert_equiv(&t, &r);
        }
        prop_assert_eq!(tx.intersect_len(&ty), rx.intersect_len(&ry));
        prop_assert_eq!(
            tx.union(&ty).len() + tx.intersect(&ty).len(),
            tx.len() + ty.len()
        );
    }

    /// Satellite: dense↔sparse threshold crossings in both directions
    /// keep every intermediate state canonical, and the representation
    /// is exactly the one the canonical rule dictates.
    #[test]
    fn chunk_transitions_are_canonical(hosts in prop::collection::vec(any::<u8>(), 1..256)) {
        let block = 0x0A000000u32;
        let mut model: Vec<u8> = Vec::new();
        let mut tiered = TieredSet::new();
        // Upward: insert one host at a time, crossing sparse→runs/dense.
        for &h in &hosts {
            tiered.insert(Addr::new(block | h as u32));
            if let Err(i) = model.binary_search(&h) {
                model.insert(i, h);
            }
            prop_assert!(tiered.is_canonical());
            prop_assert_eq!(census_label(&tiered), expected_repr(&model));
        }
        // Downward: difference hosts away one at a time, crossing back.
        for &h in hosts.iter().rev() {
            let single: TieredSet = [Addr::new(block | h as u32)].into_iter().collect();
            tiered = tiered.difference(&single);
            if let Ok(i) = model.binary_search(&h) {
                model.remove(i);
            }
            prop_assert!(tiered.is_canonical());
            prop_assert_eq!(tiered.len(), model.len());
            if !model.is_empty() {
                prop_assert_eq!(census_label(&tiered), expected_repr(&model));
            } else {
                prop_assert_eq!(tiered.num_chunks(), 0);
            }
        }
        prop_assert!(tiered.is_empty());
    }

    /// Satellite: equal sets are structurally identical no matter how
    /// they were constructed — the canonical-form guarantee behind
    /// equality and snapshot determinism.
    #[test]
    fn construction_route_does_not_leak_into_representation(addrs in arb_addr_vec(500)) {
        let collected: TieredSet = addrs.iter().copied().collect();
        let mut inserted = TieredSet::new();
        for &a in addrs.iter().rev() {
            inserted.insert(a);
        }
        let mid = addrs.len() / 2;
        let lo: TieredSet = addrs[..mid].iter().copied().collect();
        let hi: TieredSet = addrs[mid..].iter().copied().collect();
        let unioned = lo.union(&hi);
        prop_assert_eq!(&collected, &inserted);
        prop_assert_eq!(&collected, &unioned);
        prop_assert_eq!(collected.repr_census(), inserted.repr_census());
        prop_assert_eq!(collected.repr_census(), unioned.repr_census());
    }

    /// The O(1) density index agrees with direct range counts on both
    /// backends at every aggregation level.
    #[test]
    fn prefix_density_matches_range_counts(addrs in arb_addr_vec(500)) {
        let tiered: TieredSet = addrs.iter().copied().collect();
        let oracle: RefSet = addrs.iter().copied().collect();
        let density = tiered.prefix_density();
        prop_assert_eq!(PrefixDensity::from_set(&oracle), density.clone());
        prop_assert_eq!(density.total(), oracle.len() as u64);
        let members: Vec<Addr> = oracle.iter().collect();
        for &a in members.iter().take(8) {
            for len in [24u8, 20, 16, 12, 8, 4, 0] {
                let p = Prefix::containing(a, len);
                prop_assert_eq!(density.count(p), oracle.count_in(p) as u64);
            }
        }
        // Absent prefixes count zero.
        prop_assert_eq!(density.count("1.2.3.0/24".parse().unwrap()),
                        oracle.count_in("1.2.3.0/24".parse().unwrap()) as u64);
    }

    /// `to_prefixes` — the CIDR compression behind Table 2 — agrees
    /// between backends exactly.
    #[test]
    fn to_prefixes_matches_oracle(addrs in arb_addr_vec(400)) {
        let tiered: TieredSet = addrs.iter().copied().collect();
        let oracle: RefSet = addrs.iter().copied().collect();
        prop_assert_eq!(ActiveSet::to_prefixes(&tiered), oracle.to_prefixes());
    }

    /// The covering-mask primitive (event sizing, Section 4.2) is
    /// backend-independent.
    #[test]
    fn covering_mask_matches_oracle(addr in arb_addr(), excl in arb_addr_vec(200)) {
        use ipactive_net::covering_mask;
        let tiered: TieredSet = excl.iter().copied().filter(|&a| a != addr).collect();
        let oracle: RefSet = excl.iter().copied().filter(|&a| a != addr).collect();
        prop_assert_eq!(covering_mask(addr, &tiered), covering_mask(addr, &oracle));
    }
}
