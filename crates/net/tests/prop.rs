//! Property-based tests for the ipactive-net primitives.

use ipactive_net::{covering_mask, Addr, AddrSet, Block24, DayBits, Prefix, PrefixTrie};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u32>().prop_map(Addr::new)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(base, len)| Prefix::new(Addr::new(base), len))
}

proptest! {
    #[test]
    fn addr_display_parse_roundtrip(bits in any::<u32>()) {
        let a = Addr::new(bits);
        let parsed: Addr = a.to_string().parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let parsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn prefix_contains_network_and_last(p in arb_prefix()) {
        prop_assert!(p.contains(p.network()));
        prop_assert!(p.contains(p.last()));
    }

    #[test]
    fn prefix_split_partitions(p in arb_prefix(), probe in any::<u32>()) {
        if let Some((lo, hi)) = p.split() {
            let a = Addr::new(probe);
            let in_parent = p.contains(a);
            let in_children = lo.contains(a) || hi.contains(a);
            prop_assert_eq!(in_parent, in_children);
            // Children are disjoint.
            prop_assert!(!(lo.contains(a) && hi.contains(a)));
        }
    }

    #[test]
    fn supernet_covers_child(p in arb_prefix()) {
        if let Some(sup) = p.supernet() {
            prop_assert!(sup.covers(p));
            prop_assert_eq!(sup.len() + 1, p.len());
        }
    }

    #[test]
    fn block24_contains_its_addrs(bits in any::<u32>()) {
        let a = Addr::new(bits);
        let b = Block24::of(a);
        prop_assert!(b.prefix().contains(a));
        prop_assert_eq!(b.addr(a.host_index()), a);
    }

    #[test]
    fn set_algebra_laws(xs in prop::collection::vec(any::<u32>(), 0..200),
                        ys in prop::collection::vec(any::<u32>(), 0..200)) {
        let x: AddrSet = xs.iter().map(|&v| Addr::new(v)).collect();
        let y: AddrSet = ys.iter().map(|&v| Addr::new(v)).collect();
        let union = x.union(&y);
        let inter = x.intersect(&y);
        let dx = x.difference(&y);
        let dy = y.difference(&x);
        // |A ∪ B| = |A| + |B| − |A ∩ B|
        prop_assert_eq!(union.len(), x.len() + y.len() - inter.len());
        prop_assert_eq!(inter.len(), x.intersect_len(&y));
        // Difference + intersection partitions each set.
        prop_assert_eq!(dx.len() + inter.len(), x.len());
        prop_assert_eq!(dy.len() + inter.len(), y.len());
        // Every member of the difference is in x but not y.
        for a in dx.iter() {
            prop_assert!(x.contains(a) && !y.contains(a));
        }
    }

    #[test]
    fn set_count_in_matches_filter(xs in prop::collection::vec(any::<u32>(), 0..200),
                                   p in arb_prefix()) {
        let set: AddrSet = xs.iter().map(|&v| Addr::new(v)).collect();
        let expect = set.iter().filter(|&a| p.contains(a)).count();
        prop_assert_eq!(set.count_in(p), expect);
        prop_assert_eq!(set.any_in(p), expect > 0);
    }

    #[test]
    fn covering_mask_prefix_excludes_all(addr in arb_addr(),
                                         xs in prop::collection::vec(any::<u32>(), 0..100)) {
        let exclusion: AddrSet = xs
            .iter()
            .map(|&v| Addr::new(v))
            .filter(|&a| a != addr)
            .collect();
        let m = covering_mask(addr, &exclusion);
        let covered = Prefix::containing(addr, m);
        // The covering prefix contains no excluded address...
        prop_assert!(!exclusion.any_in(covered));
        // ...and is maximal: one bit shorter would contain one (unless /0).
        if m > 0 {
            let bigger = Prefix::containing(addr, m - 1);
            prop_assert!(exclusion.any_in(bigger));
        }
    }

    #[test]
    fn to_prefixes_covers_exactly(xs in prop::collection::vec(any::<u32>(), 0..150)) {
        let set: AddrSet = xs.iter().map(|&v| Addr::new(v)).collect();
        let prefixes = set.to_prefixes();
        // Total coverage equals the set size (prefixes are disjoint and
        // contain only members).
        let total: u64 = prefixes.iter().map(|p| p.num_addrs() as u64).sum();
        prop_assert_eq!(total, set.len() as u64);
        // Every member is inside some prefix.
        for a in set.iter() {
            prop_assert!(prefixes.iter().any(|p| p.contains(a)));
        }
        // Prefixes are ordered and non-overlapping.
        for w in prefixes.windows(2) {
            prop_assert!(w[0].last() < w[1].network());
        }
    }

    #[test]
    fn cover_range_is_exact(start in any::<u32>(), count in 1u64..10_000) {
        let count = count.min((1u64 << 32) - start as u64);
        let ps = Prefix::cover_range(Addr::new(start), count);
        let mut cursor = start as u64;
        for p in &ps {
            prop_assert_eq!(p.network().bits() as u64, cursor);
            cursor += p.num_addrs() as u64;
        }
        prop_assert_eq!(cursor - start as u64, count);
    }

    #[test]
    fn daybits_count_range_matches_iter(days in prop::collection::vec(0usize..128, 0..64),
                                        start in 0usize..=128, width in 0usize..=128) {
        let mut b = DayBits::new();
        for &d in &days {
            b.set(d);
        }
        let end = (start + width).min(128);
        let start = start.min(end);
        let expect = b.iter().filter(|&d| d >= start && d < end).count() as u32;
        prop_assert_eq!(b.count_range(start, end), expect);
    }

    #[test]
    fn trie_longest_match_is_most_specific(entries in prop::collection::vec(
            (any::<u32>(), 0u8..=32), 1..60), probe in any::<u32>()) {
        let mut trie = PrefixTrie::new();
        let mut list: Vec<Prefix> = Vec::new();
        for (base, len) in entries {
            let p = Prefix::new(Addr::new(base), len);
            trie.insert(p, p.len());
            list.push(p);
        }
        let probe = Addr::new(probe);
        let expect = list
            .iter()
            .filter(|p| p.contains(probe))
            .map(|p| p.len())
            .max();
        match (trie.longest_match(probe), expect) {
            (Some((matched, &len)), Some(best)) => {
                prop_assert_eq!(len, best);
                prop_assert_eq!(matched.len(), best);
                prop_assert!(matched.contains(probe));
            }
            (None, None) => {}
            (got, want) => prop_assert!(false, "mismatch: got {:?}, want {:?}", got.map(|g| g.0), want),
        }
    }
}
