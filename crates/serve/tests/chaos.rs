//! The pinned-seed chaos soak: stalled compositions, ingest bursts
//! mid-query, injected worker panics, and an overload flood — under
//! all of which the server must uphold its contract:
//!
//! * no deadlocks (the test completes),
//! * every request gets exactly one response from the allowed set,
//! * every `Degraded` answer carries provenance (`coverage_ppm <
//!   1_000_000` or `from_density`),
//! * panics and sheds are journaled, epochs are journaled,
//! * and after the chaos clears, the same server still answers
//!   exactly.

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ipactive_net::ActiveSet;
use ipactive_obs::{EventKind, Registry, SnapshotMode};
use ipactive_serve::{
    duplex, loadgen, synthetic_day_log, wire, ChaosPlan, LoadgenConfig, Observatory, QueryKind,
    Request, Response, ServeConfig, Server, Status,
};

const SOAK_SEED: u64 = 0xC4A05;
const BASE_DAYS: usize = 10;

#[test]
fn pinned_seed_chaos_soak_answers_every_request_honestly() {
    let registry = Registry::new();
    let obs: Arc<Observatory> = Arc::new(Observatory::new(&registry));
    obs.ingest_days((0..BASE_DAYS).map(|d| synthetic_day_log(SOAK_SEED, d)).collect());
    let exact_base_window = obs.pin().engine().day_window(0..BASE_DAYS).len() as u64;

    // Injected slot-build delays: every uncached unit on the budgeted
    // path costs ~200us extra, so small budgets die mid-composition.
    obs.set_compose_stall(Duration::from_micros(200));
    let chaos = ChaosPlan {
        seed: SOAK_SEED,
        panic_period: 17, // at least one panic per 17 executed queries
        stall_period: 5,  // every 5th executed query stalls 3ms
        stall_us: 3_000,
    };
    let server = Server::start(
        obs.clone(),
        ServeConfig { workers: 2, queue_depth: 8, chaos, slo: None },
    );

    // Ingest bursts racing the query load: six more epochs publish
    // while clients are mid-flight.
    let burst_obs = obs.clone();
    let ingester = thread::spawn(move || {
        for d in BASE_DAYS..BASE_DAYS + 6 {
            burst_obs.ingest_day(synthetic_day_log(SOAK_SEED, d));
            thread::sleep(Duration::from_millis(2));
        }
    });

    // Phase A: paced open-loop load, one run that tolerates
    // degradation and one that demands strict deadlines.
    let soft = loadgen::run(
        &server,
        &LoadgenConfig {
            requests: 150,
            rate: 2_000.0,
            budget_ms: 2,
            allow_degraded: true,
            seed: SOAK_SEED,
        },
    );
    let strict = loadgen::run(
        &server,
        &LoadgenConfig {
            requests: 150,
            rate: 2_000.0,
            budget_ms: 1,
            allow_degraded: false,
            seed: SOAK_SEED + 1,
        },
    );
    ingester.join().expect("ingester panicked");

    // Every issued request answered, no silent drops, only allowed
    // classes (loadgen already buckets by status; the sums must close).
    assert_eq!(soft.answered(), 150, "soft run dropped answers: {soft:?}");
    assert_eq!(strict.answered(), 150, "strict run dropped answers: {strict:?}");
    assert_eq!(soft.bad_request, 0);
    assert_eq!(strict.bad_request, 0);

    // Phase B: an unpaced flood over one connection against the
    // 8-deep queue must shed — explicitly, never by dropping.
    let (client, server_end) = duplex();
    let (srx, stx) = server_end.split();
    server.attach(srx, stx);
    let (mut rx, mut tx) = client.split();
    let flood = 200u64;
    for i in 0..flood {
        wire::write_request(
            &mut tx,
            &Request {
                id: i,
                kind: QueryKind::DayWindow { start: 0, end: BASE_DAYS as u64 },
                budget_ms: 0,
                allow_degraded: true,
                trace: ipactive_serve::TraceContext::NONE,
            },
        )
        .unwrap();
    }
    tx.flush().unwrap();
    drop(tx);
    let mut responses: Vec<Response> = Vec::new();
    while responses.len() < flood as usize {
        match wire::read_response(&mut rx).unwrap() {
            Some(r) => responses.push(r),
            None => break,
        }
    }
    assert_eq!(responses.len(), flood as usize, "flood dropped answers");
    let shed = responses.iter().filter(|r| r.status == Status::Overloaded).count();
    assert!(shed > 0, "an unpaced flood against an 8-deep queue must shed");
    for r in &responses {
        match r.status {
            Status::Ok => assert_eq!(
                r.value, exact_base_window,
                "an Ok answer under chaos must equal the batch answer"
            ),
            Status::Degraded => assert!(
                r.coverage_ppm < Response::FULL_COVERAGE || r.from_density,
                "degraded without provenance: {r:?}"
            ),
            Status::DeadlineExceeded => {
                assert!(r.units_total >= 1);
                assert!(r.units_done <= r.units_total);
            }
            Status::Overloaded => {}
            Status::BadRequest => panic!("well-formed flood request got BadRequest"),
        }
    }

    // The chaos plan guarantees panics among executed queries.
    let executed = server.executed();
    assert!(executed >= 2 * 17, "soak too small to pin panic injection ({executed} executed)");
    server.shutdown();

    // After the storm: a fresh server over the same observatory, no
    // chaos, answers the original window exactly — degradation was a
    // mode, not a state.
    obs.set_compose_stall(Duration::ZERO);
    let calm = Server::start(obs.clone(), ServeConfig::default());
    let (client, server_end) = duplex();
    let (srx, stx) = server_end.split();
    calm.attach(srx, stx);
    let (mut rx, mut tx) = client.split();
    wire::write_request(
        &mut tx,
        &Request {
            id: 9_999,
            kind: QueryKind::DayWindow { start: 0, end: BASE_DAYS as u64 },
            budget_ms: 0,
            allow_degraded: false,
            trace: ipactive_serve::TraceContext::NONE,
        },
    )
    .unwrap();
    drop(tx);
    let resp = wire::read_response(&mut rx).unwrap().unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.value, exact_base_window);
    assert_eq!(resp.epoch, 1 + 6, "bulk epoch plus six burst epochs");
    calm.shutdown();

    // Metrics snapshot schema: the counter plane must close exactly
    // and the latency histograms must exist.
    let snap = registry.snapshot(SnapshotMode::Deterministic);
    let sent_total = 150 + 150 + flood + 1;
    assert_eq!(snap.counter("serve.requests"), sent_total);
    let worker_answers = snap.counter("serve.ok")
        + snap.counter("serve.degraded")
        + snap.counter("serve.deadline")
        + snap.counter("serve.bad_request")
        + snap.counter("serve.overloaded");
    assert_eq!(worker_answers, executed + 1, "every executed query answered once");
    assert_eq!(snap.counter("serve.shed") as usize, shed + soft.overloaded as usize + strict.overloaded as usize);
    assert!(snap.counter("serve.panics") >= 1, "panic injection must have fired");
    let json = snap.to_json();
    for key in ["serve.latency_us", "serve.client.latency_us", "serve.epoch", "serve.days"] {
        assert!(json.contains(key), "metrics snapshot missing {key}");
    }

    // Journal: epochs, panics, and sheds all leave records.
    let (events, _) = registry.journal().drain_sorted();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    assert_eq!(count(EventKind::EpochPublish), 1 + 6, "bulk ingest + six bursts");
    assert!(count(EventKind::QueryPanic) >= 1);
    assert!(count(EventKind::LoadShed) >= shed);
}

/// One closed-loop request/response over a fresh connection.
fn fetch(server: &Server, req: &Request) -> Response {
    let (client, server_end) = duplex();
    let (srx, stx) = server_end.split();
    server.attach(srx, stx);
    let (mut rx, mut tx) = client.split();
    wire::write_request(&mut tx, req).unwrap();
    tx.flush().unwrap();
    drop(tx);
    wire::read_response(&mut rx).unwrap().expect("one response per request")
}

fn meta_req(id: u64, kind: QueryKind) -> Request {
    Request {
        id,
        kind,
        budget_ms: 0,
        allow_degraded: false,
        trace: ipactive_serve::TraceContext::NONE,
    }
}

/// One traced serving run under a pinned chaos plan: telemetry first
/// (fresh server, all-zero latency buckets → reproducible bytes),
/// then a closed-loop traced pass, then every trace fetched back over
/// the wire. Returns the full observable transcript.
fn traced_run(workers: usize) -> String {
    let registry = Registry::new();
    let obs: Arc<Observatory> = Arc::new(Observatory::new(&registry));
    obs.ingest_days((0..8).map(|d| synthetic_day_log(SOAK_SEED, d)).collect());
    let chaos = ChaosPlan { seed: SOAK_SEED, panic_period: 3, stall_period: 2, stall_us: 100 };
    let server = Server::start(obs, ServeConfig { workers, queue_depth: 64, chaos, slo: None });
    let mut transcript = String::new();
    let telemetry = fetch(&server, &meta_req(1, QueryKind::Telemetry));
    transcript.push_str(telemetry.body.as_deref().unwrap_or("<no body>"));
    let linked = loadgen::traced_pass(&server, SOAK_SEED, 24);
    assert_eq!(linked, 24, "closed-loop responses echo their trace ids");
    for i in 0..24 {
        let tid = loadgen::traced_pass_id(SOAK_SEED, i);
        let resp = fetch(&server, &meta_req(2, QueryKind::Trace { trace_id: tid.0 }));
        transcript.push_str(resp.body.as_deref().unwrap_or("<absent>"));
        transcript.push('\n');
    }
    server.shutdown();
    transcript
}

#[test]
fn traces_and_telemetry_are_byte_identical_across_worker_counts_and_reruns() {
    // Spans are structural (names and request-derived details, never
    // wall time), the traced pass is closed-loop (executed-sequence
    // order pinned), and telemetry is fetched before any latency
    // lands — so the whole transcript must be reproducible even with
    // chaos injecting panics and stalls.
    let one = traced_run(1);
    let four = traced_run(4);
    let rerun = traced_run(1);
    assert_eq!(one, rerun, "same worker count must reproduce exactly");
    assert_eq!(one, four, "worker count must not leak into traces or telemetry");
    assert!(one.contains("serve.answer"), "traces cover the server side");
}

#[test]
fn one_trace_id_recovers_the_whole_request_tree_with_an_exemplar() {
    let registry = Registry::new();
    let obs: Arc<Observatory> = Arc::new(Observatory::new(&registry));
    obs.ingest_days((0..6).map(|d| synthetic_day_log(SOAK_SEED, d)).collect());
    let server = Server::start(obs, ServeConfig::default());

    // The client mints the trace and opens the root span; everything
    // downstream hangs off the propagated context.
    let tid = ipactive_serve::TraceId::mint(SOAK_SEED, 42);
    let root = registry.trace_span(
        ipactive_serve::TraceContext::root(tid),
        "client.request",
        "day_window",
    );
    let resp = fetch(
        &server,
        &Request {
            id: 7,
            kind: QueryKind::DayWindow { start: 0, end: 6 },
            budget_ms: 0,
            allow_degraded: false,
            trace: root,
        },
    );
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.trace_id, tid.0, "the response echoes the trace id");

    // The stitched tree is served live over the wire.
    let trace = fetch(&server, &meta_req(8, QueryKind::Trace { trace_id: tid.0 }));
    let body = trace.body.expect("trace body");
    for name in ["client.request", "serve.admission", "serve.answer", "engine.compose"] {
        assert!(body.contains(name), "trace body missing {name}: {body}");
    }

    // And the latency histogram's exemplars link back to it.
    let snap = registry
        .histogram("serve.latency_us", ipactive_obs::metrics::DECADE_BOUNDS)
        .snapshot();
    assert!(
        snap.exemplars.iter().flatten().any(|&id| id == tid.0),
        "serve.latency_us must hold the trace as an exemplar"
    );
    server.shutdown();
}

#[test]
fn the_same_chaos_seed_injects_the_same_faults() {
    // The soak above relies on replayability; pin it directly.
    let plan = ChaosPlan { seed: SOAK_SEED, panic_period: 17, stall_period: 5, stall_us: 3_000 };
    let trace: Vec<_> = (0..200).map(|s| plan.action(s)).collect();
    let replay: Vec<_> = (0..200).map(|s| plan.action(s)).collect();
    assert_eq!(trace, replay);
    assert!(trace.iter().any(|a| *a == ipactive_serve::ChaosAction::Panic));
    assert!(trace.iter().any(|a| *a == ipactive_serve::ChaosAction::Stall));
}
