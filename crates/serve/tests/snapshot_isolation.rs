//! Snapshot-isolation differential suite: concurrent readers over a
//! live ingest storm must see answers *byte-identical* to engines
//! batch-built over the same logs — at every epoch they pin, at any
//! reader parallelism, on every rerun.
//!
//! This is the serving-layer analogue of the repo's builder
//! differential tests: `Observatory` rebuilds datasets by replay and
//! carries caches forward across epochs, and nothing about epoch
//! timing, reader count, or cache carry-forward may change a single
//! answered byte.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ipactive_core::AnalysisCtx;
use ipactive_core::{DailyDatasetBuilder, WeeklyDatasetBuilder};
use ipactive_net::ActiveSet;
use ipactive_obs::Registry;
use ipactive_serve::{synthetic_day_log, DayLog, Observatory};

const STORM_DAYS: usize = 12;
const LOG_SEED: u64 = 77;

/// Batch-builds a reference engine over the first `count` logs — the
/// ground truth every pinned epoch must agree with byte-for-byte.
fn batch_reference(logs: &[DayLog], count: usize) -> AnalysisCtx {
    let mut db = DailyDatasetBuilder::new(count);
    for (d, log) in logs[..count].iter().enumerate() {
        for &(a, h) in &log.hits {
            db.record_hits(d, a, h);
        }
    }
    let weeks = count / 7;
    let mut wb = WeeklyDatasetBuilder::new(weeks);
    for w in 0..weeks {
        for d in w * 7..w * 7 + 7 {
            for &(a, h) in &logs[d].hits {
                wb.record_week(w, a, h);
            }
        }
    }
    AnalysisCtx::new(Arc::new(db.finish()), Arc::new(wb.finish()))
}

/// Canonical bytes of a window answer: the sorted-iteration address
/// stream every `ActiveSet` backend promises.
fn window_bytes(engine: &AnalysisCtx, s: usize, e: usize) -> Vec<u32> {
    engine.day_window(s..e).iter().map(|a| a.bits()).collect()
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs one full storm with `readers` concurrent reader threads:
/// ingest publishes the twelve days one epoch at a time while readers
/// pin epochs and check windows against the batch references the
/// whole time. Returns the final epoch's full-window bytes (the
/// cross-jobs / cross-rerun determinism anchor) plus how many window
/// checks the readers performed.
fn storm(readers: usize) -> (Vec<u32>, usize) {
    let logs: Vec<DayLog> = (0..STORM_DAYS).map(|d| synthetic_day_log(LOG_SEED, d)).collect();
    let refs: Arc<Vec<AnalysisCtx>> =
        Arc::new((0..=STORM_DAYS).map(|c| batch_reference(&logs, c)).collect());

    let registry = Registry::new();
    let obs: Arc<Observatory> = Arc::new(Observatory::new(&registry));
    let done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for r in 0..readers {
        let obs = obs.clone();
        let refs = refs.clone();
        let done = done.clone();
        handles.push(thread::spawn(move || {
            let mut checked = 0usize;
            let mut state = splitmix(0xC0FFEE ^ r as u64);
            while !done.load(Ordering::SeqCst) || checked == 0 {
                let snap = obs.pin();
                let days = snap.days();
                if days == 0 {
                    thread::yield_now();
                    continue;
                }
                // A deterministic-per-reader window inside the pinned
                // horizon; the *reference* for it depends only on the
                // pinned epoch's day count, never on later ingests.
                state = splitmix(state);
                let s = (state % days as u64) as usize;
                state = splitmix(state);
                let e = s + 1 + (state % (days - s) as u64) as usize;
                let live: Vec<u32> =
                    snap.engine().day_window(s..e).iter().map(|a| a.bits()).collect();
                let reference = window_bytes(&refs[days], s, e);
                assert_eq!(
                    live, reference,
                    "reader {r} saw a non-batch answer for {s}..{e} at {days} days"
                );
                // Weekly answers obey the complete-weeks rule at every
                // epoch too.
                let weeks = snap.weeks();
                if weeks > 0 {
                    let lw: Vec<u32> =
                        snap.engine().week_window(0..weeks).iter().map(|a| a.bits()).collect();
                    let rw: Vec<u32> =
                        refs[days].week_window(0..weeks).iter().map(|a| a.bits()).collect();
                    assert_eq!(lw, rw, "weekly answer diverged at {days} days");
                }
                checked += 1;
            }
            checked
        }));
    }

    // The ingest storm: one epoch per day, racing the readers.
    for log in &logs {
        obs.ingest_day(log.clone());
        thread::sleep(Duration::from_millis(1));
    }
    done.store(true, Ordering::SeqCst);
    let checked = handles.into_iter().map(|h| h.join().expect("reader panicked")).sum();

    let snap = obs.pin();
    assert_eq!(snap.days(), STORM_DAYS);
    let final_bytes: Vec<u32> =
        snap.engine().day_window(0..STORM_DAYS).iter().map(|a| a.bits()).collect();
    (final_bytes, checked)
}

#[test]
fn live_readers_match_batch_builds_across_jobs_and_reruns() {
    // jobs=1 and jobs=4, plus a rerun of jobs=4: every pinned answer
    // is checked against the batch reference *inside* storm(); here we
    // additionally pin that the final dataset bytes are identical
    // across parallelism and across reruns.
    let (serial, checked_serial) = storm(1);
    let (par, checked_par) = storm(4);
    let (rerun, _) = storm(4);
    assert!(checked_serial > 0 && checked_par > 0);
    assert!(!serial.is_empty());
    assert_eq!(serial, par, "reader parallelism changed the final bytes");
    assert_eq!(par, rerun, "a rerun changed the final bytes");
    // And against a from-scratch batch build, closing the loop.
    let logs: Vec<DayLog> = (0..STORM_DAYS).map(|d| synthetic_day_log(LOG_SEED, d)).collect();
    let reference = window_bytes(&batch_reference(&logs, STORM_DAYS), 0, STORM_DAYS);
    assert_eq!(serial, reference);
}

#[test]
fn a_single_epoch_bulk_ingest_equals_the_day_by_day_storm() {
    let logs: Vec<DayLog> = (0..STORM_DAYS).map(|d| synthetic_day_log(LOG_SEED, d)).collect();
    let reg_a = Registry::new();
    let one_shot: Observatory = Observatory::new(&reg_a);
    one_shot.ingest_days(logs.clone());
    let reg_b = Registry::new();
    let day_by_day: Observatory = Observatory::new(&reg_b);
    for log in &logs {
        day_by_day.ingest_day(log.clone());
    }
    let a = one_shot.pin();
    let b = day_by_day.pin();
    assert_eq!(a.epoch(), 1, "bulk ingest publishes one epoch");
    assert_eq!(b.epoch(), STORM_DAYS as u64);
    assert_eq!(**a.daily(), **b.daily());
    assert_eq!(**a.weekly(), **b.weekly());
    let wa: Vec<u32> = a.engine().day_window(0..STORM_DAYS).iter().map(|x| x.bits()).collect();
    let wb: Vec<u32> = b.engine().day_window(0..STORM_DAYS).iter().map(|x| x.bits()).collect();
    assert_eq!(wa, wb);
}
