//! Open-loop load generator for the observatory server.
//!
//! *Open-loop* is the property that matters: the sender issues request
//! `i` at `start + i/rate` whether or not earlier responses have come
//! back, so a slow server faces a growing backlog instead of a
//! politely self-throttling client — the regime where load shedding
//! and deadline budgets actually earn their keep (and where
//! closed-loop generators famously under-report tail latency).
//!
//! Latency is measured client-side (send to response, queue time
//! included) and recorded into the obs histogram plane; quantiles come
//! from [`Histogram::quantile`](ipactive_obs::Histogram::quantile).
//! Successful answers and admission sheds land in *separate*
//! histograms — an `Overloaded` turnaround measures queue-rejection
//! speed, not service time, and mixing the two made both quantiles
//! lie. Every request also carries a minted trace id, so the p99
//! bucket's exemplars link a tail latency straight to the trace that
//! explains it.
//!
//! [`traced_pass`] is the closed-loop complement: one request in
//! flight at a time, so the executed-sequence order (and therefore the
//! span trees, even under a pinned [`ChaosPlan`](crate::ChaosPlan)) is
//! deterministic. `repro serve-bench` runs it before the open-loop
//! storm to produce reproducible trace snapshots.

use std::io::Write as _;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use ipactive_net::ActiveSet;
use ipactive_obs::metrics::DECADE_BOUNDS;
use ipactive_obs::{TraceContext, TraceId};

use crate::pipe::duplex;
use crate::server::Server;
use crate::wire::{self, QueryKind, Request, Status};

/// Salt folded into the seed for open-loop client trace ids, so the
/// open-loop storm and [`traced_pass`] never collide on a trace.
const LOADGEN_TRACE_SALT: u64 = 0x10AD_6E4E;

/// Salt for [`traced_pass`] trace ids.
const TRACED_PASS_SALT: u64 = 0x72ACE;

/// Shape of one load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Total requests to issue.
    pub requests: u64,
    /// Target offered rate in requests per second.
    pub rate: f64,
    /// Deadline budget per request in milliseconds (0 = unlimited).
    pub budget_ms: u64,
    /// Whether deadline overruns may be answered degraded.
    pub allow_degraded: bool,
    /// Seed for the deterministic query mix.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 200,
            rate: 2_000.0,
            budget_ms: 0,
            allow_degraded: true,
            seed: 1,
        }
    }
}

/// What one load run observed. Every issued request is accounted for
/// in exactly one status bucket — the server's "no silent drops"
/// contract, re-checked from the outside.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: u64,
    /// Exact answers.
    pub ok: u64,
    /// Degraded answers (partial coverage or density-approximated).
    pub degraded: u64,
    /// Deadline overruns that were not degradable.
    pub deadline_exceeded: u64,
    /// Load-shed at admission.
    pub overloaded: u64,
    /// Malformed requests.
    pub bad_request: u64,
    /// `overloaded / sent`.
    pub shed_rate: f64,
    /// Median client-observed latency over *answered* (non-shed)
    /// requests, microseconds.
    pub p50_us: f64,
    /// 90th percentile latency, microseconds.
    pub p90_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Median shed-turnaround latency, microseconds (0 if no sheds).
    pub shed_p50_us: f64,
    /// 99th percentile shed turnaround, microseconds.
    pub shed_p99_us: f64,
    /// Trace ids sampled from the p99 latency bucket — the traces
    /// that explain the tail.
    pub p99_exemplars: Vec<u64>,
    /// Wall-clock for the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Offered rate actually achieved, requests per second.
    pub achieved_rate: f64,
}

impl LoadReport {
    /// Responses received, all classes.
    pub fn answered(&self) -> u64 {
        self.ok + self.degraded + self.deadline_exceeded + self.overloaded + self.bad_request
    }

    /// The report as a single JSON object (hand-rolled; the repo
    /// carries no JSON dependency). New keys append after the
    /// original ones so existing readers keep working.
    pub fn to_json(&self) -> String {
        let exemplars: Vec<String> =
            self.p99_exemplars.iter().map(|id| format!("\"{}\"", TraceId(*id).to_hex())).collect();
        format!(
            concat!(
                "{{\"sent\":{},\"ok\":{},\"degraded\":{},\"deadline_exceeded\":{},",
                "\"overloaded\":{},\"bad_request\":{},\"shed_rate\":{:.6},",
                "\"p50_us\":{:.1},\"p90_us\":{:.1},\"p99_us\":{:.1},",
                "\"elapsed_ms\":{},\"achieved_rate\":{:.1},",
                "\"shed_p50_us\":{:.1},\"shed_p99_us\":{:.1},\"p99_exemplars\":[{}]}}"
            ),
            self.sent,
            self.ok,
            self.degraded,
            self.deadline_exceeded,
            self.overloaded,
            self.bad_request,
            self.shed_rate,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.elapsed_ms,
            self.achieved_rate,
            self.shed_p50_us,
            self.shed_p99_us,
            exemplars.join(","),
        )
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic query mix: mostly day windows of varied width,
/// some week windows when weeks exist, an occasional prefix count and
/// status probe.
pub fn query_mix(i: u64, seed: u64, days: u64, weeks: u64) -> QueryKind {
    let r = splitmix(seed ^ i.wrapping_mul(0x517c_c1b7_2722_0a95));
    match r % 10 {
        0 => QueryKind::Status,
        1 => QueryKind::PrefixCount {
            base: 0x0a00_0000 | (((r >> 8) % 24) as u32) << 8,
            len: 24,
        },
        2 | 3 if weeks > 0 => {
            let s = (r >> 16) % weeks;
            let e = s + 1 + (r >> 32) % (weeks - s);
            QueryKind::WeekWindow { start: s, end: e }
        }
        _ => {
            if days == 0 {
                return QueryKind::Status;
            }
            let s = (r >> 16) % days;
            let e = s + 1 + (r >> 32) % (days - s);
            QueryKind::DayWindow { start: s, end: e }
        }
    }
}

/// Runs one open-loop load against `server` over an in-process duplex
/// connection and collects every response.
pub fn run<S: ActiveSet>(server: &Server<S>, config: &LoadgenConfig) -> LoadReport {
    let (client, server_end) = duplex();
    let (srv_rx, srv_tx) = server_end.split();
    server.attach(srv_rx, srv_tx);
    let (mut rx, mut tx) = client.split();

    let snap = server.observatory().pin();
    let (days, weeks) = (snap.days() as u64, snap.weeks() as u64);
    let registry = server.observatory().registry().clone();
    let latency = registry.histogram("serve.client.latency_us", DECADE_BOUNDS);
    let shed_latency = registry.histogram("serve.client.shed_latency_us", DECADE_BOUNDS);

    let sent_at: Arc<Vec<OnceLock<Instant>>> =
        Arc::new((0..config.requests).map(|_| OnceLock::new()).collect());
    let cfg = *config;
    let slab = sent_at.clone();
    let reg = registry.clone();
    let start = Instant::now();
    let sender = thread::spawn(move || {
        for i in 0..cfg.requests {
            // Open loop: request i fires at start + i/rate, no matter
            // how the server is doing. Sleep only when ahead.
            let target = start + Duration::from_secs_f64(i as f64 / cfg.rate.max(1e-9));
            let now = Instant::now();
            if target > now {
                thread::sleep(target - now);
            }
            let kind = query_mix(i, cfg.seed, days, weeks);
            let root = TraceContext::root(TraceId::mint(cfg.seed ^ LOADGEN_TRACE_SALT, i));
            let trace = reg.trace_span(root, "client.request", kind.label());
            let req = Request {
                id: i,
                kind,
                budget_ms: cfg.budget_ms,
                allow_degraded: cfg.allow_degraded,
                trace,
            };
            let _ = slab[i as usize].set(Instant::now());
            if wire::write_request(&mut tx, &req).is_err() {
                return; // server gone; receiver will see EOF
            }
            let _ = tx.flush();
        }
        // tx drops here: half-close tells the server this client is
        // done sending; responses keep flowing the other way.
    });

    let mut report = LoadReport {
        sent: config.requests,
        ok: 0,
        degraded: 0,
        deadline_exceeded: 0,
        overloaded: 0,
        bad_request: 0,
        shed_rate: 0.0,
        p50_us: 0.0,
        p90_us: 0.0,
        p99_us: 0.0,
        shed_p50_us: 0.0,
        shed_p99_us: 0.0,
        p99_exemplars: Vec::new(),
        elapsed_ms: 0,
        achieved_rate: 0.0,
    };
    let mut answered = 0u64;
    while answered < config.requests {
        match wire::read_response(&mut rx) {
            Ok(Some(resp)) => {
                answered += 1;
                let at = sent_at.get(resp.id as usize).and_then(|s| s.get()).copied();
                match resp.status {
                    Status::Ok => report.ok += 1,
                    Status::Degraded => report.degraded += 1,
                    Status::DeadlineExceeded => report.deadline_exceeded += 1,
                    Status::Overloaded => report.overloaded += 1,
                    Status::BadRequest => report.bad_request += 1,
                }
                if let Some(at) = at {
                    let us = at.elapsed().as_micros() as u64;
                    if resp.status == Status::Overloaded {
                        // Shed turnaround is admission-queue speed,
                        // not service time: its own series.
                        shed_latency.observe(us);
                    } else {
                        latency.observe_traced(us, TraceId(resp.trace_id));
                    }
                }
            }
            Ok(None) => break, // server closed before answering all
            Err(_) => break,
        }
    }
    let _ = sender.join();
    let elapsed = start.elapsed();
    report.shed_rate = if report.sent == 0 {
        0.0
    } else {
        report.overloaded as f64 / report.sent as f64
    };
    report.p50_us = latency.quantile(0.50);
    report.p90_us = latency.quantile(0.90);
    report.p99_us = latency.quantile(0.99);
    report.shed_p50_us = shed_latency.quantile(0.50);
    report.shed_p99_us = shed_latency.quantile(0.99);
    let snap = latency.snapshot();
    if let Some(bucket) = snap.quantile_bucket(0.99) {
        report.p99_exemplars = snap.exemplars.get(bucket).cloned().unwrap_or_default();
    }
    report.elapsed_ms = elapsed.as_millis() as u64;
    report.achieved_rate = if elapsed.as_secs_f64() > 0.0 {
        report.sent as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    report
}

/// Mints the trace id [`traced_pass`] uses for its `i`-th request —
/// exposed so reproduction tooling can ask the server for exactly
/// those traces afterwards.
pub fn traced_pass_id(seed: u64, i: u64) -> TraceId {
    TraceId::mint(seed ^ TRACED_PASS_SALT, i)
}

/// Runs `requests` closed-loop traced requests against `server`: one
/// in flight at a time, each carrying a freshly minted trace id and a
/// `client.request` root span. Closed-loop means the server's
/// executed-sequence order is pinned, so the resulting span trees are
/// deterministic even under a seeded chaos plan. Returns the number
/// of responses whose echoed trace id matched the minted one.
pub fn traced_pass<S: ActiveSet>(server: &Server<S>, seed: u64, requests: u64) -> u64 {
    let (client, server_end) = duplex();
    let (srv_rx, srv_tx) = server_end.split();
    server.attach(srv_rx, srv_tx);
    let (mut rx, mut tx) = client.split();

    let snap = server.observatory().pin();
    let (days, weeks) = (snap.days() as u64, snap.weeks() as u64);
    let registry = server.observatory().registry().clone();

    let mut linked = 0u64;
    for i in 0..requests {
        let kind = query_mix(i, seed, days, weeks);
        let tid = traced_pass_id(seed, i);
        let trace = registry.trace_span(TraceContext::root(tid), "client.request", kind.label());
        let req = Request {
            // Offset well past the open-loop id range so the two
            // request streams never alias in reports.
            id: 1_000_000 + i,
            kind,
            budget_ms: 0,
            allow_degraded: false,
            trace,
        };
        if wire::write_request(&mut tx, &req).is_err() {
            break;
        }
        let _ = tx.flush();
        match wire::read_response(&mut rx) {
            Ok(Some(resp)) if resp.trace_id == tid.0 => linked += 1,
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => break,
        }
    }
    linked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observatory::{synthetic_day_log, Observatory};
    use crate::server::ServeConfig;
    use ipactive_obs::Registry;

    #[test]
    fn every_request_is_answered_exactly_once() {
        let reg = Registry::new();
        let obs: Arc<Observatory> = Arc::new(Observatory::new(&reg));
        obs.ingest_days((0..8).map(|d| synthetic_day_log(5, d)).collect());
        let server = Server::start(obs, ServeConfig::default());
        let report = run(
            &server,
            &LoadgenConfig { requests: 120, rate: 50_000.0, ..LoadgenConfig::default() },
        );
        assert_eq!(report.sent, 120);
        assert_eq!(report.answered(), 120, "no silent drops: {report:?}");
        assert!(report.ok + report.degraded > 0);
        server.shutdown();
    }

    #[test]
    fn sheds_land_in_their_own_latency_series() {
        let reg = Registry::new();
        let obs: Arc<Observatory> = Arc::new(Observatory::new(&reg));
        obs.ingest_days((0..6).map(|d| synthetic_day_log(5, d)).collect());
        let server = Server::start(
            obs,
            ServeConfig {
                workers: 1,
                queue_depth: 1,
                chaos: crate::ChaosPlan {
                    seed: 1,
                    panic_period: 0,
                    stall_period: 1,
                    stall_us: 20_000,
                },
                slo: None,
            },
        );
        let report = run(
            &server,
            &LoadgenConfig { requests: 40, rate: 100_000.0, ..LoadgenConfig::default() },
        );
        assert!(report.overloaded > 0, "a jammed queue must shed: {report:?}");
        server.shutdown();
        // The success series only saw the non-shed answers; the shed
        // series only saw the sheds. Counts, not timings, are the
        // deterministic part.
        let snap = reg.snapshot(ipactive_obs::SnapshotMode::Timed);
        let hist = |name: &str| snap.histograms.get(name).map(|h| h.count).unwrap_or(0);
        assert_eq!(hist("serve.client.shed_latency_us"), report.overloaded);
        assert_eq!(hist("serve.client.latency_us"), report.answered() - report.overloaded);
    }

    #[test]
    fn traced_pass_links_every_response_to_its_minted_trace() {
        let reg = Registry::new();
        let obs: Arc<Observatory> = Arc::new(Observatory::new(&reg));
        obs.ingest_days((0..8).map(|d| synthetic_day_log(5, d)).collect());
        let server = Server::start(obs, ServeConfig::default());
        let linked = traced_pass(&server, 7, 12);
        assert_eq!(linked, 12, "every closed-loop response echoes its trace id");
        server.shutdown();
        // Each trace holds the client root plus server-side spans.
        for i in 0..12 {
            let tid = traced_pass_id(7, i);
            let spans = reg.trace_spans(tid.0).expect("trace recorded");
            assert!(spans.iter().any(|s| s.name == "client.request"));
            assert!(spans.iter().any(|s| s.name == "serve.admission"));
            assert!(spans.iter().any(|s| s.name == "serve.answer"));
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let report = LoadReport {
            sent: 10,
            ok: 7,
            degraded: 1,
            deadline_exceeded: 1,
            overloaded: 1,
            bad_request: 0,
            shed_rate: 0.1,
            p50_us: 120.0,
            p90_us: 900.0,
            p99_us: 4000.0,
            shed_p50_us: 15.0,
            shed_p99_us: 40.0,
            p99_exemplars: vec![0xDEAD_BEEF],
            elapsed_ms: 5,
            achieved_rate: 2000.0,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"sent\":10"));
        assert!(json.contains("\"shed_rate\":0.100000"));
        assert!(json.contains("\"p99_us\":4000.0"));
        assert!(json.contains("\"shed_p99_us\":40.0"));
        assert!(json.contains("\"p99_exemplars\":[\"00000000deadbeef\"]"));
    }

    #[test]
    fn query_mix_is_deterministic_and_in_range() {
        for i in 0..500u64 {
            let q = query_mix(i, 9, 14, 2);
            assert_eq!(q, query_mix(i, 9, 14, 2));
            match q {
                QueryKind::DayWindow { start, end } => {
                    assert!(start < end && end <= 14);
                }
                QueryKind::WeekWindow { start, end } => {
                    assert!(start < end && end <= 2);
                }
                QueryKind::PrefixCount { len, .. } => assert!(len <= 24),
                QueryKind::Status => {}
                QueryKind::Telemetry | QueryKind::Trace { .. } => {
                    panic!("the mix never emits meta queries")
                }
            }
        }
    }
}
