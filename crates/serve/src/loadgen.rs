//! Open-loop load generator for the observatory server.
//!
//! *Open-loop* is the property that matters: the sender issues request
//! `i` at `start + i/rate` whether or not earlier responses have come
//! back, so a slow server faces a growing backlog instead of a
//! politely self-throttling client — the regime where load shedding
//! and deadline budgets actually earn their keep (and where
//! closed-loop generators famously under-report tail latency).
//!
//! Latency is measured client-side (send to response, queue time
//! included) and recorded into the obs histogram plane; quantiles come
//! from [`Histogram::quantile`](ipactive_obs::Histogram::quantile).

use std::io::Write as _;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use ipactive_net::ActiveSet;
use ipactive_obs::metrics::DECADE_BOUNDS;

use crate::pipe::duplex;
use crate::server::Server;
use crate::wire::{self, QueryKind, Request, Status};

/// Shape of one load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Total requests to issue.
    pub requests: u64,
    /// Target offered rate in requests per second.
    pub rate: f64,
    /// Deadline budget per request in milliseconds (0 = unlimited).
    pub budget_ms: u64,
    /// Whether deadline overruns may be answered degraded.
    pub allow_degraded: bool,
    /// Seed for the deterministic query mix.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 200,
            rate: 2_000.0,
            budget_ms: 0,
            allow_degraded: true,
            seed: 1,
        }
    }
}

/// What one load run observed. Every issued request is accounted for
/// in exactly one status bucket — the server's "no silent drops"
/// contract, re-checked from the outside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: u64,
    /// Exact answers.
    pub ok: u64,
    /// Degraded answers (partial coverage or density-approximated).
    pub degraded: u64,
    /// Deadline overruns that were not degradable.
    pub deadline_exceeded: u64,
    /// Load-shed at admission.
    pub overloaded: u64,
    /// Malformed requests.
    pub bad_request: u64,
    /// `overloaded / sent`.
    pub shed_rate: f64,
    /// Median client-observed latency, microseconds.
    pub p50_us: f64,
    /// 90th percentile latency, microseconds.
    pub p90_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Wall-clock for the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Offered rate actually achieved, requests per second.
    pub achieved_rate: f64,
}

impl LoadReport {
    /// Responses received, all classes.
    pub fn answered(&self) -> u64 {
        self.ok + self.degraded + self.deadline_exceeded + self.overloaded + self.bad_request
    }

    /// The report as a single JSON object (hand-rolled; the repo
    /// carries no JSON dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sent\":{},\"ok\":{},\"degraded\":{},\"deadline_exceeded\":{},",
                "\"overloaded\":{},\"bad_request\":{},\"shed_rate\":{:.6},",
                "\"p50_us\":{:.1},\"p90_us\":{:.1},\"p99_us\":{:.1},",
                "\"elapsed_ms\":{},\"achieved_rate\":{:.1}}}"
            ),
            self.sent,
            self.ok,
            self.degraded,
            self.deadline_exceeded,
            self.overloaded,
            self.bad_request,
            self.shed_rate,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.elapsed_ms,
            self.achieved_rate,
        )
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic query mix: mostly day windows of varied width,
/// some week windows when weeks exist, an occasional prefix count and
/// status probe.
fn query_for(i: u64, seed: u64, days: u64, weeks: u64) -> QueryKind {
    let r = splitmix(seed ^ i.wrapping_mul(0x517c_c1b7_2722_0a95));
    match r % 10 {
        0 => QueryKind::Status,
        1 => QueryKind::PrefixCount {
            base: 0x0a00_0000 | (((r >> 8) % 24) as u32) << 8,
            len: 24,
        },
        2 | 3 if weeks > 0 => {
            let s = (r >> 16) % weeks;
            let e = s + 1 + (r >> 32) % (weeks - s);
            QueryKind::WeekWindow { start: s, end: e }
        }
        _ => {
            if days == 0 {
                return QueryKind::Status;
            }
            let s = (r >> 16) % days;
            let e = s + 1 + (r >> 32) % (days - s);
            QueryKind::DayWindow { start: s, end: e }
        }
    }
}

/// Runs one open-loop load against `server` over an in-process duplex
/// connection and collects every response.
pub fn run<S: ActiveSet>(server: &Server<S>, config: &LoadgenConfig) -> LoadReport {
    let (client, server_end) = duplex();
    let (srv_rx, srv_tx) = server_end.split();
    server.attach(srv_rx, srv_tx);
    let (mut rx, mut tx) = client.split();

    let snap = server.observatory().pin();
    let (days, weeks) = (snap.days() as u64, snap.weeks() as u64);
    let latency = server
        .observatory()
        .registry()
        .histogram("serve.client.latency_us", DECADE_BOUNDS);

    let sent_at: Arc<Vec<OnceLock<Instant>>> =
        Arc::new((0..config.requests).map(|_| OnceLock::new()).collect());
    let cfg = *config;
    let slab = sent_at.clone();
    let start = Instant::now();
    let sender = thread::spawn(move || {
        for i in 0..cfg.requests {
            // Open loop: request i fires at start + i/rate, no matter
            // how the server is doing. Sleep only when ahead.
            let target = start + Duration::from_secs_f64(i as f64 / cfg.rate.max(1e-9));
            let now = Instant::now();
            if target > now {
                thread::sleep(target - now);
            }
            let req = Request {
                id: i,
                kind: query_for(i, cfg.seed, days, weeks),
                budget_ms: cfg.budget_ms,
                allow_degraded: cfg.allow_degraded,
            };
            let _ = slab[i as usize].set(Instant::now());
            if wire::write_request(&mut tx, &req).is_err() {
                return; // server gone; receiver will see EOF
            }
            let _ = tx.flush();
        }
        // tx drops here: half-close tells the server this client is
        // done sending; responses keep flowing the other way.
    });

    let mut report = LoadReport {
        sent: config.requests,
        ok: 0,
        degraded: 0,
        deadline_exceeded: 0,
        overloaded: 0,
        bad_request: 0,
        shed_rate: 0.0,
        p50_us: 0.0,
        p90_us: 0.0,
        p99_us: 0.0,
        elapsed_ms: 0,
        achieved_rate: 0.0,
    };
    let mut answered = 0u64;
    while answered < config.requests {
        match wire::read_response(&mut rx) {
            Ok(Some(resp)) => {
                answered += 1;
                if let Some(&at) = sent_at.get(resp.id as usize).and_then(|s| s.get()) {
                    latency.observe(at.elapsed().as_micros() as u64);
                }
                match resp.status {
                    Status::Ok => report.ok += 1,
                    Status::Degraded => report.degraded += 1,
                    Status::DeadlineExceeded => report.deadline_exceeded += 1,
                    Status::Overloaded => report.overloaded += 1,
                    Status::BadRequest => report.bad_request += 1,
                }
            }
            Ok(None) => break, // server closed before answering all
            Err(_) => break,
        }
    }
    let _ = sender.join();
    let elapsed = start.elapsed();
    report.shed_rate = if report.sent == 0 {
        0.0
    } else {
        report.overloaded as f64 / report.sent as f64
    };
    report.p50_us = latency.quantile(0.50);
    report.p90_us = latency.quantile(0.90);
    report.p99_us = latency.quantile(0.99);
    report.elapsed_ms = elapsed.as_millis() as u64;
    report.achieved_rate = if elapsed.as_secs_f64() > 0.0 {
        report.sent as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observatory::{synthetic_day_log, Observatory};
    use crate::server::ServeConfig;
    use ipactive_obs::Registry;

    #[test]
    fn every_request_is_answered_exactly_once() {
        let reg = Registry::new();
        let obs: Arc<Observatory> = Arc::new(Observatory::new(&reg));
        obs.ingest_days((0..8).map(|d| synthetic_day_log(5, d)).collect());
        let server = Server::start(obs, ServeConfig::default());
        let report = run(
            &server,
            &LoadgenConfig { requests: 120, rate: 50_000.0, ..LoadgenConfig::default() },
        );
        assert_eq!(report.sent, 120);
        assert_eq!(report.answered(), 120, "no silent drops: {report:?}");
        assert!(report.ok + report.degraded > 0);
        server.shutdown();
    }

    #[test]
    fn report_serializes_to_json() {
        let report = LoadReport {
            sent: 10,
            ok: 7,
            degraded: 1,
            deadline_exceeded: 1,
            overloaded: 1,
            bad_request: 0,
            shed_rate: 0.1,
            p50_us: 120.0,
            p90_us: 900.0,
            p99_us: 4000.0,
            elapsed_ms: 5,
            achieved_rate: 2000.0,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"sent\":10"));
        assert!(json.contains("\"shed_rate\":0.100000"));
        assert!(json.contains("\"p99_us\":4000.0"));
    }

    #[test]
    fn query_mix_is_deterministic_and_in_range() {
        for i in 0..500u64 {
            let q = query_for(i, 9, 14, 2);
            assert_eq!(q, query_for(i, 9, 14, 2));
            match q {
                QueryKind::DayWindow { start, end } => {
                    assert!(start < end && end <= 14);
                }
                QueryKind::WeekWindow { start, end } => {
                    assert!(start < end && end <= 2);
                }
                QueryKind::PrefixCount { len, .. } => assert!(len <= 24),
                QueryKind::Status => {}
            }
        }
    }
}
