//! The threaded query front-end: bounded admission, deadline budgets,
//! panic isolation, and honest degradation.
//!
//! Every request that reaches the server gets exactly one response,
//! and the response class is always truthful about what happened:
//!
//! * admission queue full → [`Status::Overloaded`], written
//!   immediately by the connection thread (the query never executes);
//! * deadline expired mid-composition → [`Status::DeadlineExceeded`]
//!   with `units_done / units_total` partial-progress provenance, or —
//!   when the client set `allow_degraded` — a [`Status::Degraded`]
//!   answer from the [`ipactive_net::PrefixDensity`]
//!   approximation, flagged `from_density`;
//! * window touching a partial feed or reaching past the ingested
//!   horizon → exact value over what exists, [`Status::Degraded`] with
//!   `coverage_ppm < 1_000_000`;
//! * worker panic → caught per query, journaled as `query_panic`, and
//!   the request is still answered (degraded, from density).
//!
//! Nothing here returns a silently wrong answer: `Status::Ok` means
//! "exact over fully ingested, fully covered data", full stop.

use std::io::{Read, Write};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, Once};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ipactive_core::QueryBudget;
use ipactive_net::{ActiveSet, Addr, Prefix, PrefixDensity, TieredSet};
use ipactive_obs::metrics::DECADE_BOUNDS;
use ipactive_obs::{Event, EventKind, Registry, SnapshotMode};

use crate::chaos::{ChaosAction, ChaosPlan};
use crate::observatory::{EpochSnapshot, Observatory};
use crate::slo::{SloMonitor, SloPolicy};
use crate::wire::{self, QueryKind, Request, Response, Status};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Query worker threads.
    pub workers: usize,
    /// Bounded admission queue depth; a full queue sheds load with
    /// explicit `Overloaded` responses instead of building backlog.
    pub queue_depth: usize,
    /// Deterministic fault-injection schedule.
    pub chaos: ChaosPlan,
    /// Declared SLO targets; `None` disables the windowed monitor.
    pub slo: Option<SloPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 2, queue_depth: 64, chaos: ChaosPlan::none(), slo: None }
    }
}

/// Panic payload for chaos-injected worker panics. Module-private so
/// only the chaos path can construct it; the quiet hook silences
/// exactly this payload and forwards every real panic.
struct InjectedQueryPanic;

/// Silences the default stderr backtrace for chaos-injected query
/// panics (they are expected and journaled); every other panic still
/// reaches the previous hook. Idempotent.
pub fn quiet_injected_query_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedQueryPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// One admitted query: the request plus the (frame-atomic) response
/// sink of the connection it arrived on.
struct Job {
    req: Request,
    out: Arc<Mutex<dyn Write + Send>>,
}

/// The always-on query front-end over one [`Observatory`].
pub struct Server<S: ActiveSet = TieredSet> {
    obs: Arc<Observatory<S>>,
    tx: SyncSender<Job>,
    workers: Vec<JoinHandle<()>>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    executed: Arc<AtomicU64>,
    slo: Option<Arc<SloMonitor>>,
    config: ServeConfig,
}

impl<S: ActiveSet> Server<S> {
    /// Starts `config.workers` query workers over `obs`.
    pub fn start(obs: Arc<Observatory<S>>, config: ServeConfig) -> Server<S> {
        if config.chaos.panic_period != 0 {
            quiet_injected_query_panics();
        }
        let slo = config.slo.map(|policy| Arc::new(SloMonitor::new(policy, obs.registry())));
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let executed = Arc::new(AtomicU64::new(0));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let obs = obs.clone();
                let executed = executed.clone();
                let chaos = config.chaos;
                let slo = slo.clone();
                thread::spawn(move || worker_loop(rx, obs, executed, chaos, slo))
            })
            .collect();
        Server { obs, tx, workers, conns: Mutex::new(Vec::new()), executed, slo, config }
    }

    /// The observatory this server answers from.
    pub fn observatory(&self) -> &Arc<Observatory<S>> {
        &self.obs
    }

    /// Queries executed so far (admitted and dequeued; shed requests
    /// never count).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::SeqCst)
    }

    /// Attaches one client connection: `reader` carries request
    /// frames in, `writer` carries response frames out. Returns after
    /// spawning the connection thread; the thread exits when the
    /// client closes its write half.
    pub fn attach<R, W>(&self, reader: R, writer: W)
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        let tx = self.tx.clone();
        let obs = self.obs.clone();
        let slo = self.slo.clone();
        let out: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(writer));
        let handle = thread::spawn(move || connection_loop(reader, out, tx, obs, slo));
        self.conns.lock().expect("conn list poisoned").push(handle);
    }

    /// Shuts the server down: waits for attached connections to drain
    /// (they exit when their clients close), then stops and joins the
    /// workers. Call after client write halves are dropped.
    pub fn shutdown(self) {
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn list poisoned"));
        for c in conns {
            let _ = c.join();
        }
        drop(self.tx); // workers see the channel close and exit
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.config;
    }
}

/// Reads request frames off one connection, admitting each into the
/// bounded queue or shedding it with an immediate `Overloaded`.
fn connection_loop<S: ActiveSet>(
    mut reader: impl Read,
    out: Arc<Mutex<dyn Write + Send>>,
    tx: SyncSender<Job>,
    obs: Arc<Observatory<S>>,
    slo: Option<Arc<SloMonitor>>,
) {
    let registry = obs.registry().clone();
    loop {
        let mut req = match wire::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF
            Err(err) => {
                // The stream is unsynchronized after a corrupt frame:
                // answer what we can attribute (id 0) and hang up.
                registry.counter("serve.bad_frames").inc();
                let resp = Response {
                    id: 0,
                    epoch: obs.pin().epoch(),
                    status: Status::BadRequest,
                    value: 0,
                    coverage_ppm: 0,
                    units_done: 0,
                    units_total: 0,
                    from_density: false,
                    trace_id: 0,
                    body: None,
                };
                write_locked(&out, &resp);
                let _ = err;
                return;
            }
        };
        registry.counter("serve.requests").inc();
        // Admission is the first server-side span of a traced request;
        // downstream spans (answer, engine) hang off it.
        req.trace = registry.trace_span(req.trace, "serve.admission", req.kind.label());
        match tx.try_send(Job { req, out: out.clone() }) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                // Load-shed (or server shutting down): explicit
                // Overloaded, never a dropped request.
                registry.counter("serve.shed").inc();
                registry.emit(
                    Event::new(EventKind::LoadShed)
                        .offset(job.req.id)
                        .detail("admission queue full"),
                );
                registry.trace_span(job.req.trace, "serve.shed", "admission queue full");
                if let Some(slo) = &slo {
                    slo.record(Status::Overloaded, 0);
                }
                let resp = Response {
                    id: job.req.id,
                    epoch: obs.pin().epoch(),
                    status: Status::Overloaded,
                    value: 0,
                    coverage_ppm: 0,
                    units_done: 0,
                    units_total: 0,
                    from_density: false,
                    trace_id: job.req.trace.trace.0,
                    body: None,
                };
                write_locked(&job.out, &resp);
            }
        }
    }
}

fn write_locked(out: &Arc<Mutex<dyn Write + Send>>, resp: &Response) {
    let mut w = out.lock().expect("response sink poisoned");
    // A client that hung up mid-flight is not an error worth dying
    // over; the response is simply undeliverable.
    let _ = wire::write_response(&mut *w, resp);
    let _ = w.flush();
}

fn worker_loop<S: ActiveSet>(
    rx: Arc<Mutex<Receiver<Job>>>,
    obs: Arc<Observatory<S>>,
    executed: Arc<AtomicU64>,
    chaos: ChaosPlan,
    slo: Option<Arc<SloMonitor>>,
) {
    let registry = obs.registry().clone();
    let latency = registry.histogram("serve.latency_us", DECADE_BOUNDS);
    loop {
        let job = match rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: shutdown
        };
        let seq = executed.fetch_add(1, Ordering::SeqCst);
        let action = chaos.action(seq);
        let start = Instant::now();
        let snap = obs.pin();
        let mut req = job.req;
        req.trace = registry.trace_span(req.trace, "serve.answer", format!("id {}", req.id));

        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            match action {
                ChaosAction::Panic => panic::panic_any(InjectedQueryPanic),
                ChaosAction::Stall => {
                    thread::sleep(Duration::from_micros(chaos.stall_us))
                }
                ChaosAction::None => {}
            }
            answer(&snap, &req, &registry)
        }));

        let resp = match outcome {
            Ok(resp) => resp,
            Err(_payload) => {
                // The worker survived a panic: journal it and still
                // answer — degraded, from the density approximation.
                registry.counter("serve.panics").inc();
                registry.emit(
                    Event::new(EventKind::QueryPanic)
                        .offset(req.id)
                        .detail("query worker panicked; answered degraded"),
                );
                registry.trace_span(req.trace, "serve.panic", "answered degraded");
                degraded_from_density(&snap, &req)
            }
        };
        match resp.status {
            Status::Ok => registry.counter("serve.ok").inc(),
            Status::Degraded => registry.counter("serve.degraded").inc(),
            Status::DeadlineExceeded => registry.counter("serve.deadline").inc(),
            Status::Overloaded => registry.counter("serve.overloaded").inc(),
            Status::BadRequest => registry.counter("serve.bad_request").inc(),
        }
        let us = start.elapsed().as_micros() as u64;
        latency.observe_traced(us, req.trace.trace);
        if let Some(slo) = &slo {
            slo.record(resp.status, us);
        }
        write_locked(&job.out, &resp);
    }
}

fn ppm(fraction: f64) -> u64 {
    (fraction.clamp(0.0, 1.0) * Response::FULL_COVERAGE as f64).round() as u64
}

/// Computes the honest answer for one request against one pinned
/// epoch. Never panics on any decodable request: ranges are validated
/// and clamped *before* the engine sees them.
fn answer<S: ActiveSet>(
    snap: &EpochSnapshot<S>,
    req: &Request,
    registry: &Registry,
) -> Response {
    let budget = if req.budget_ms == 0 {
        QueryBudget::unlimited()
    } else {
        QueryBudget::within(Duration::from_millis(req.budget_ms))
    };
    let bad = |snap: &EpochSnapshot<S>| Response {
        id: req.id,
        epoch: snap.epoch(),
        status: Status::BadRequest,
        value: 0,
        coverage_ppm: 0,
        units_done: 0,
        units_total: 0,
        from_density: false,
        trace_id: req.trace.trace.0,
        body: None,
    };
    match req.kind {
        QueryKind::Status => Response {
            id: req.id,
            epoch: snap.epoch(),
            status: Status::Ok,
            value: snap.days() as u64,
            coverage_ppm: ppm(snap.window_coverage(0..snap.days())),
            units_done: 0,
            units_total: 0,
            from_density: false,
            trace_id: req.trace.trace.0,
            body: None,
        },
        QueryKind::Telemetry => {
            // The live metrics plane: a deterministic sorted-JSON
            // snapshot of the registry, taken before this response's
            // own status counter lands so a fresh server answers with
            // reproducible bytes.
            let body = registry.snapshot(SnapshotMode::Deterministic).to_json();
            Response {
                id: req.id,
                epoch: snap.epoch(),
                status: Status::Ok,
                value: snap.days() as u64,
                coverage_ppm: Response::FULL_COVERAGE,
                units_done: 0,
                units_total: 0,
                from_density: false,
                trace_id: req.trace.trace.0,
                body: Some(body),
            }
        }
        QueryKind::Trace { trace_id } => match registry.trace_json(trace_id) {
            Some(body) => Response {
                id: req.id,
                epoch: snap.epoch(),
                status: Status::Ok,
                value: trace_id,
                coverage_ppm: Response::FULL_COVERAGE,
                units_done: 0,
                units_total: 0,
                from_density: false,
                trace_id: req.trace.trace.0,
                body: Some(body),
            },
            None => bad(snap),
        },
        QueryKind::PrefixCount { base, len } => {
            if len > PrefixDensity::MAX_LEN {
                return bad(snap);
            }
            registry.trace_span(req.trace, "engine.density", format!("len {len}"));
            // The density index answers prefix counts exactly in O(1);
            // `from_density` records the provenance all the same.
            let count = snap.density().count(Prefix::new(Addr::new(base), len));
            let cov = snap.window_coverage(0..snap.days());
            Response {
                id: req.id,
                epoch: snap.epoch(),
                status: if cov >= 1.0 { Status::Ok } else { Status::Degraded },
                value: count,
                coverage_ppm: ppm(cov),
                units_done: 0,
                units_total: 0,
                from_density: true,
                trace_id: req.trace.trace.0,
                body: None,
            }
        }
        QueryKind::DayWindow { start, end } => {
            if start > end {
                return bad(snap);
            }
            let (s, e) = (start as usize, end as usize);
            // Clamp to the ingested horizon; the requested window's
            // coverage already dilutes for the days we do not have.
            let ce = e.min(snap.days());
            let cs = s.min(ce);
            registry.trace_span(req.trace, "engine.compose", format!("days {cs}..{ce}"));
            let cov = snap.window_coverage(s..e);
            let result = snap
                .engine()
                .day_window_within(cs..ce, &budget)
                .map(|set| set.len() as u64);
            shape_window(req, snap, cov, result)
        }
        QueryKind::WeekWindow { start, end } => {
            if start > end {
                return bad(snap);
            }
            let (s, e) = (start as usize, end as usize);
            let ce = e.min(snap.weeks());
            let cs = s.min(ce);
            registry.trace_span(req.trace, "engine.compose", format!("weeks {cs}..{ce}"));
            let cov = snap.week_window_coverage(s..e);
            let result = snap
                .engine()
                .week_window_within(cs..ce, &budget)
                .map(|set| set.len() as u64);
            shape_window(req, snap, cov, result)
        }
    }
}

/// Shared Ok/Degraded/DeadlineExceeded shaping for the two window
/// query kinds. `result` is the budgeted engine answer over the
/// *clamped* range; `cov` is coverage of the *requested* range, so a
/// horizon clamp already shows up as `cov < 1.0`.
fn shape_window<S: ActiveSet>(
    req: &Request,
    snap: &EpochSnapshot<S>,
    cov: f64,
    result: Result<u64, ipactive_core::DeadlineExceeded>,
) -> Response {
    match result {
        Ok(value) => Response {
            id: req.id,
            epoch: snap.epoch(),
            status: if cov >= 1.0 { Status::Ok } else { Status::Degraded },
            value,
            coverage_ppm: ppm(cov),
            units_done: 0,
            units_total: 0,
            from_density: false,
            trace_id: req.trace.trace.0,
            body: None,
        },
        Err(partial) if req.allow_degraded => Response {
            id: req.id,
            epoch: snap.epoch(),
            status: Status::Degraded,
            // The density index covers the union of *all* days, an
            // O(1) upper bound for any window — honest because it is
            // flagged `from_density` with the partial progress.
            value: snap.density().total(),
            coverage_ppm: ppm(cov),
            units_done: partial.units_done as u64,
            units_total: partial.units_total as u64,
            from_density: true,
            trace_id: req.trace.trace.0,
            body: None,
        },
        Err(partial) => Response {
            id: req.id,
            epoch: snap.epoch(),
            status: Status::DeadlineExceeded,
            value: 0,
            coverage_ppm: ppm(cov),
            units_done: partial.units_done as u64,
            units_total: partial.units_total as u64,
            from_density: false,
            trace_id: req.trace.trace.0,
            body: None,
        },
    }
}

/// Degraded answer built entirely from the density approximation —
/// the fallback after a worker panic, when no exact machinery can be
/// trusted for this request.
fn degraded_from_density<S: ActiveSet>(snap: &EpochSnapshot<S>, req: &Request) -> Response {
    let density = snap.density();
    let (value, cov) = match req.kind {
        QueryKind::PrefixCount { base, len } if len <= PrefixDensity::MAX_LEN => (
            density.count(Prefix::new(Addr::new(base), len)),
            snap.window_coverage(0..snap.days()),
        ),
        QueryKind::DayWindow { start, end } if start <= end => (
            density.total(),
            snap.window_coverage(start as usize..end as usize),
        ),
        QueryKind::WeekWindow { start, end } if start <= end => (
            density.total(),
            snap.week_window_coverage(start as usize..end as usize),
        ),
        QueryKind::Status => (snap.days() as u64, 1.0),
        // A telemetry/trace fetch that died mid-query has no density
        // fallback worth inventing; a degraded empty answer is honest.
        QueryKind::Telemetry | QueryKind::Trace { .. } => (0, 1.0),
        _ => {
            return Response {
                id: req.id,
                epoch: snap.epoch(),
                status: Status::BadRequest,
                value: 0,
                coverage_ppm: 0,
                units_done: 0,
                units_total: 0,
                from_density: false,
                trace_id: req.trace.trace.0,
                body: None,
            }
        }
    };
    Response {
        id: req.id,
        epoch: snap.epoch(),
        status: Status::Degraded,
        value,
        coverage_ppm: ppm(cov),
        units_done: 0,
        units_total: 0,
        from_density: true,
        trace_id: req.trace.trace.0,
        body: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observatory::synthetic_day_log;
    use crate::pipe::duplex;
    use ipactive_obs::{Registry, SnapshotMode};
    use std::collections::HashMap;

    fn served_observatory(days: usize) -> (Registry, Arc<Observatory>) {
        let reg = Registry::new();
        let obs: Arc<Observatory> = Arc::new(Observatory::new(&reg));
        obs.ingest_days((0..days).map(|d| synthetic_day_log(11, d)).collect());
        (reg, obs)
    }

    /// Sends `reqs` over one connection and returns responses by id.
    fn exchange(server: &Server, reqs: &[Request]) -> HashMap<u64, Response> {
        let (client, server_end) = duplex();
        let (srx, stx) = server_end.split();
        server.attach(srx, stx);
        let (mut rx, mut tx) = client.split();
        for r in reqs {
            wire::write_request(&mut tx, r).unwrap();
        }
        drop(tx);
        let mut got = HashMap::new();
        while got.len() < reqs.len() {
            match wire::read_response(&mut rx).unwrap() {
                Some(resp) => {
                    got.insert(resp.id, resp);
                }
                None => break,
            }
        }
        got
    }

    fn req(id: u64, kind: QueryKind) -> Request {
        Request {
            id,
            kind,
            budget_ms: 0,
            allow_degraded: false,
            trace: ipactive_obs::TraceContext::NONE,
        }
    }

    #[test]
    fn exact_answers_match_the_engine_directly() {
        let (_reg, obs) = served_observatory(9);
        let want_window = obs.pin().engine().day_window(2..7).len() as u64;
        let server = Server::start(obs, ServeConfig::default());
        let got = exchange(
            &server,
            &[
                req(0, QueryKind::Status),
                req(1, QueryKind::DayWindow { start: 2, end: 7 }),
                req(2, QueryKind::WeekWindow { start: 0, end: 1 }),
                req(3, QueryKind::PrefixCount { base: 0x0a00_0000, len: 24 }),
            ],
        );
        assert_eq!(got.len(), 4);
        assert_eq!(got[&0].status, Status::Ok);
        assert_eq!(got[&0].value, 9, "status reports ingested days");
        assert_eq!(got[&1].status, Status::Ok);
        assert_eq!(got[&1].value, want_window);
        assert!(!got[&1].from_density);
        assert_eq!(got[&2].status, Status::Ok);
        assert_eq!(got[&3].status, Status::Ok);
        assert!(got[&3].from_density, "prefix counts carry index provenance");
        assert!(got[&3].value > 0);
        server.shutdown();
    }

    #[test]
    fn horizon_overruns_and_partial_feeds_answer_degraded_not_wrong() {
        let reg = Registry::new();
        let obs: Arc<Observatory> = Arc::new(Observatory::new(&reg));
        obs.ingest_day(synthetic_day_log(2, 0));
        obs.ingest_day_with_coverage(synthetic_day_log(2, 1), 0.5);
        let exact = obs.pin().engine().day_window(0..2).len() as u64;
        let server = Server::start(obs, ServeConfig::default());
        let got = exchange(
            &server,
            &[
                // Past the horizon: clamped, degraded, diluted coverage.
                req(0, QueryKind::DayWindow { start: 0, end: 4 }),
                // Inside the horizon but over a half-covered day.
                req(1, QueryKind::DayWindow { start: 0, end: 2 }),
                // Fully covered day: exact.
                req(2, QueryKind::DayWindow { start: 0, end: 1 }),
            ],
        );
        assert_eq!(got[&0].status, Status::Degraded);
        assert_eq!(got[&0].value, exact, "clamped value is exact over what exists");
        assert!(got[&0].coverage_ppm < Response::FULL_COVERAGE);
        assert_eq!(got[&1].status, Status::Degraded);
        assert_eq!(got[&1].coverage_ppm, 750_000);
        assert_eq!(got[&2].status, Status::Ok);
        assert_eq!(got[&2].coverage_ppm, Response::FULL_COVERAGE);
        server.shutdown();
    }

    #[test]
    fn malformed_windows_get_bad_request_not_a_panic() {
        let (_reg, obs) = served_observatory(3);
        let server = Server::start(obs, ServeConfig::default());
        let got = exchange(
            &server,
            &[
                req(0, QueryKind::DayWindow { start: 5, end: 2 }),
                req(1, QueryKind::PrefixCount { base: 0, len: 30 }),
                req(2, QueryKind::Status),
            ],
        );
        assert_eq!(got[&0].status, Status::BadRequest);
        assert_eq!(got[&1].status, Status::BadRequest);
        assert_eq!(got[&2].status, Status::Ok, "server survives bad requests");
        server.shutdown();
    }

    #[test]
    fn expired_budgets_return_partial_progress_or_a_degraded_answer() {
        let (_reg, obs) = served_observatory(10);
        // Make every uncached unit build cost ~4ms so a 1ms budget
        // reliably dies mid-composition.
        obs.set_compose_stall(Duration::from_millis(4));
        let server = Server::start(obs, ServeConfig::default());
        let strict = Request {
            id: 0,
            kind: QueryKind::DayWindow { start: 0, end: 10 },
            budget_ms: 1,
            allow_degraded: false,
            trace: ipactive_obs::TraceContext::NONE,
        };
        let soft = Request { id: 1, allow_degraded: true, ..strict };
        let got = exchange(&server, &[strict, soft]);
        match got[&0].status {
            Status::DeadlineExceeded => {
                assert!(got[&0].units_total >= 1);
                assert!(got[&0].units_done < 10);
            }
            // A cached window (filled by the other request racing
            // ahead) legitimately answers exactly; tolerate it.
            Status::Ok => {}
            other => panic!("unexpected status {other:?}"),
        }
        match got[&1].status {
            Status::Degraded => assert!(got[&1].from_density),
            Status::Ok => {}
            other => panic!("unexpected status {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn injected_panics_are_caught_journaled_and_still_answered() {
        let (reg, obs) = served_observatory(6);
        let server = Server::start(
            obs,
            ServeConfig {
                workers: 1,
                queue_depth: 16,
                // Every executed query panics.
                chaos: ChaosPlan { seed: 3, panic_period: 1, stall_period: 0, stall_us: 0 },
                slo: None,
            },
        );
        let got = exchange(
            &server,
            &[
                req(0, QueryKind::DayWindow { start: 0, end: 6 }),
                req(1, QueryKind::Status),
            ],
        );
        assert_eq!(got.len(), 2, "panicked queries still answer");
        for resp in got.values() {
            assert_eq!(resp.status, Status::Degraded);
            assert!(resp.from_density);
        }
        server.shutdown();
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("serve.panics"), 2);
        let (events, _) = reg.journal().drain_sorted();
        assert!(
            events.iter().any(|e| e.kind == EventKind::QueryPanic),
            "panic must be journaled"
        );
    }

    #[test]
    fn a_full_admission_queue_sheds_with_explicit_overloaded() {
        let (reg, obs) = served_observatory(6);
        let server = Server::start(
            obs,
            ServeConfig {
                workers: 1,
                queue_depth: 1,
                // Stall every query 20ms so the queue jams instantly.
                chaos: ChaosPlan { seed: 1, panic_period: 0, stall_period: 1, stall_us: 20_000 },
                slo: None,
            },
        );
        let reqs: Vec<Request> =
            (0..30).map(|i| req(i, QueryKind::DayWindow { start: 0, end: 3 })).collect();
        let got = exchange(&server, &reqs);
        assert_eq!(got.len(), 30, "every request answered, shed or not");
        let shed = got.values().filter(|r| r.status == Status::Overloaded).count();
        assert!(shed > 0, "a 1-deep queue against 20ms queries must shed");
        assert!(
            got.values().all(|r| matches!(r.status, Status::Ok | Status::Overloaded)),
            "unexpected status in {got:?}"
        );
        server.shutdown();
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("serve.shed"), shed as u64);
        let (events, _) = reg.journal().drain_sorted();
        assert!(events.iter().any(|e| e.kind == EventKind::LoadShed));
    }

    #[test]
    fn corrupt_frames_hang_up_honestly() {
        let (_reg, obs) = served_observatory(2);
        let server = Server::start(obs, ServeConfig::default());
        let (client, server_end) = duplex();
        let (srx, stx) = server_end.split();
        server.attach(srx, stx);
        let (mut rx, mut tx) = client.split();
        tx.write_all(&[0x03, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0]).unwrap();
        drop(tx);
        let resp = wire::read_response(&mut rx).unwrap().unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        assert!(wire::read_response(&mut rx).unwrap().is_none(), "then EOF");
        server.shutdown();
    }
}
