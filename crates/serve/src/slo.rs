//! Windowed SLO monitoring for the serve plane: shed-rate and p99
//! burn against declared targets.
//!
//! The monitor sees every answered request (including sheds, which
//! never reach a worker) and evaluates fixed-size windows of them.
//! When a window's shed rate or p99 latency breaches the declared
//! [`SloPolicy`] targets, it bumps the `slo.burn` counter and emits an
//! [`EventKind::SloBurn`] journal event whose `offset` is the window
//! index and whose detail carries the measured-vs-target numbers —
//! enough for an operator (or the CI SLO gate) to see *which* stretch
//! of the run burned, not just that one did.
//!
//! Latencies are wall time, so SLO gauges and burn events are
//! timing-dependent by nature; they live alongside the deterministic
//! plane, not inside it. Tests pin behaviour with synthetic
//! [`record`](SloMonitor::record) calls, never with real clocks.

use std::sync::Mutex;

use ipactive_obs::{Event, EventKind, Registry};

use crate::wire::Status;

/// Declared serve-plane targets, evaluated per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// Answers per evaluation window.
    pub window: u64,
    /// Maximum tolerated shed rate, parts-per-million of the window.
    pub max_shed_ppm: u64,
    /// p99 latency target over the window's non-shed answers,
    /// microseconds.
    pub p99_target_us: u64,
}

impl Default for SloPolicy {
    /// 256-answer windows, ≤5% shed, p99 ≤100ms — loose enough for CI
    /// machines, tight enough to catch a wedged server.
    fn default() -> SloPolicy {
        SloPolicy { window: 256, max_shed_ppm: 50_000, p99_target_us: 100_000 }
    }
}

struct Window {
    shed: u64,
    latencies_us: Vec<u64>,
    index: u64,
}

/// Evaluates [`SloPolicy`] over consecutive fixed-size windows of
/// answered requests. Cheap to record into (one mutex push); the sort
/// happens once per window close.
pub struct SloMonitor {
    policy: SloPolicy,
    registry: Registry,
    window: Mutex<Window>,
}

impl SloMonitor {
    /// A monitor enforcing `policy`, reporting into `registry`.
    pub fn new(policy: SloPolicy, registry: &Registry) -> SloMonitor {
        SloMonitor {
            policy: SloPolicy { window: policy.window.max(1), ..policy },
            registry: registry.clone(),
            window: Mutex::new(Window { shed: 0, latencies_us: Vec::new(), index: 0 }),
        }
    }

    /// The declared targets.
    pub fn policy(&self) -> SloPolicy {
        self.policy
    }

    /// Accounts one answered request. `Overloaded` answers count as
    /// sheds (their latency is admission-queue noise, not service
    /// time); everything else contributes `latency_us` to the
    /// window's distribution.
    pub fn record(&self, status: Status, latency_us: u64) {
        let mut w = self.window.lock().expect("slo window poisoned");
        if status == Status::Overloaded {
            w.shed += 1;
        } else {
            w.latencies_us.push(latency_us);
        }
        let n = w.shed + w.latencies_us.len() as u64;
        if n < self.policy.window {
            return;
        }
        let shed_ppm = w.shed * 1_000_000 / n;
        let p99_us = match w.latencies_us.len() {
            0 => 0,
            len => {
                w.latencies_us.sort_unstable();
                let rank = ((0.99 * len as f64).ceil() as usize).clamp(1, len);
                w.latencies_us[rank - 1]
            }
        };
        self.registry.gauge("slo.window.shed_ppm").set(shed_ppm as i64);
        self.registry.gauge("slo.window.p99_us").set(p99_us as i64);
        let shed_burn = shed_ppm > self.policy.max_shed_ppm;
        let p99_burn = p99_us > self.policy.p99_target_us;
        if shed_burn || p99_burn {
            self.registry.counter("slo.burn").inc();
            self.registry.emit(Event::new(EventKind::SloBurn).offset(w.index).detail(format!(
                "shed_ppm {shed_ppm} (target {}), p99_us {p99_us} (target {})",
                self.policy.max_shed_ppm, self.policy.p99_target_us
            )));
        }
        w.index += 1;
        w.shed = 0;
        w.latencies_us.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_obs::SnapshotMode;

    #[test]
    fn a_healthy_window_sets_gauges_without_burning() {
        let reg = Registry::new();
        let slo = SloMonitor::new(
            SloPolicy { window: 10, max_shed_ppm: 200_000, p99_target_us: 1_000 },
            &reg,
        );
        for _ in 0..9 {
            slo.record(Status::Ok, 100);
        }
        slo.record(Status::Overloaded, 0); // 10% shed, under the 20% target
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("slo.burn"), 0);
        assert_eq!(snap.gauge("slo.window.shed_ppm"), 100_000);
        assert_eq!(snap.gauge("slo.window.p99_us"), 100);
        assert!(snap.events_of(EventKind::SloBurn).next().is_none());
    }

    #[test]
    fn shed_and_p99_breaches_burn_with_window_provenance() {
        let reg = Registry::new();
        let slo = SloMonitor::new(
            SloPolicy { window: 4, max_shed_ppm: 100_000, p99_target_us: 500 },
            &reg,
        );
        // Window 0: half the answers shed — a shed burn.
        slo.record(Status::Ok, 10);
        slo.record(Status::Overloaded, 0);
        slo.record(Status::Overloaded, 0);
        slo.record(Status::Ok, 10);
        // Window 1: healthy.
        for _ in 0..4 {
            slo.record(Status::Ok, 10);
        }
        // Window 2: one slow answer blows the p99 target.
        slo.record(Status::Ok, 10);
        slo.record(Status::Ok, 10);
        slo.record(Status::Ok, 10);
        slo.record(Status::Degraded, 9_999);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("slo.burn"), 2);
        let offsets: Vec<Option<u64>> =
            snap.events_of(EventKind::SloBurn).map(|e| e.offset).collect();
        assert_eq!(offsets, vec![Some(0), Some(2)], "burns name their windows");
        assert!(snap.events_of(EventKind::SloBurn).all(|e| e.detail.contains("target")));
    }

    #[test]
    fn an_all_shed_window_reports_zero_p99_not_a_panic() {
        let reg = Registry::new();
        let slo =
            SloMonitor::new(SloPolicy { window: 2, max_shed_ppm: 0, p99_target_us: 1 }, &reg);
        slo.record(Status::Overloaded, 0);
        slo.record(Status::Overloaded, 0);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.gauge("slo.window.shed_ppm"), 1_000_000);
        assert_eq!(snap.gauge("slo.window.p99_us"), 0);
        assert_eq!(snap.counter("slo.burn"), 1);
    }
}
