//! Length-prefixed binary protocol for observatory queries.
//!
//! Frames reuse the `logfmt` lease idiom: a varint length prefix, the
//! payload, then a little-endian CRC-32 of the payload. A torn or
//! bit-flipped frame is *detected*, never half-parsed. Integers inside
//! payloads are LEB128 varints; the layout is append-only so older
//! clients keep working when trailing fields grow.
//!
//! ```text
//! frame    := varint(payload_len) payload crc32(payload) as 4 LE bytes
//! request  := 0x51 varint(id) kind:u8 varint(a) varint(b)
//!             varint(budget_ms) flags:u8          ; flags bit0 = allow_degraded
//!             [varint(trace_id) varint(parent_span)]   ; absent = untraced
//! response := 0x52 varint(id) varint(epoch) status:u8 varint(value)
//!             varint(coverage_ppm) varint(units_done) varint(units_total)
//!             flags:u8                            ; flags bit0 = from_density
//!             [varint(trace_id) varint(body_len) body] ; absent = untraced, no body
//! ```
//!
//! The bracketed trailers are the trace-context propagation added for
//! the distributed tracing plane: requests carry the client's
//! `(trace_id, parent_span)` so server-side spans hang off the
//! client's root, responses echo the trace id and may carry a JSON
//! body (the `Telemetry` / `Trace` kinds). Decoders treat a missing
//! trailer as "untraced / no body", so pre-trace peers interoperate.

use std::fmt;
use std::io::{self, Read, Write};

use ipactive_logfmt::{crc32, decode_u64, encode_u64, VarintError};
use ipactive_obs::{TraceContext, TraceId};

/// First payload byte of every request frame.
const REQUEST_MAGIC: u8 = 0x51;
/// First payload byte of every response frame.
const RESPONSE_MAGIC: u8 = 0x52;
/// Upper bound on a sane frame; anything larger is a corrupt length.
const MAX_FRAME: u64 = 1 << 20;

/// Error reading or decoding a wire frame.
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport error.
    Io(io::Error),
    /// The stream ended inside a frame (a clean EOF *between* frames is
    /// reported as `Ok(None)` by `read_frame`, not as an error).
    Truncated,
    /// A varint field was malformed.
    Varint(VarintError),
    /// The payload CRC did not match: the frame was damaged in flight.
    CrcMismatch,
    /// The length prefix exceeded the sanity cap.
    Oversized(u64),
    /// The payload did not start with the expected magic byte.
    BadMagic(u8),
    /// Unknown query kind or status discriminant.
    BadDiscriminant(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Truncated => write!(f, "frame truncated mid-stream"),
            WireError::Varint(e) => write!(f, "bad varint field: {e}"),
            WireError::CrcMismatch => write!(f, "frame CRC mismatch"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds cap {MAX_FRAME}"),
            WireError::BadMagic(b) => write!(f, "unexpected frame magic {b:#04x}"),
            WireError::BadDiscriminant(b) => write!(f, "unknown discriminant {b}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl From<VarintError> for WireError {
    fn from(e: VarintError) -> Self {
        WireError::Varint(e)
    }
}

/// What a request asks the observatory to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Distinct active addresses over the half-open day window `start..end`.
    DayWindow {
        /// First day (inclusive).
        start: u64,
        /// One past the last day.
        end: u64,
    },
    /// Distinct active addresses over the half-open week window `start..end`.
    WeekWindow {
        /// First week (inclusive).
        start: u64,
        /// One past the last week.
        end: u64,
    },
    /// Active-address count inside one prefix, answered from the
    /// density index (`len` ≤ 24).
    PrefixCount {
        /// Prefix base address.
        base: u32,
        /// Prefix length in bits.
        len: u8,
    },
    /// Server status probe: answers with the current epoch and ingested
    /// day count (in `value`), never touches the engine.
    Status,
    /// Live telemetry probe: answers with the server registry's
    /// deterministic metrics snapshot as the response JSON body.
    Telemetry,
    /// Trace lookup: answers with the stitched span tree of
    /// `trace_id` as the response JSON body (`BadRequest` when the
    /// trace is unknown).
    Trace {
        /// The trace id to look up.
        trace_id: u64,
    },
}

impl QueryKind {
    /// Stable lowercase label, used as span detail and in CLI output.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::DayWindow { .. } => "day_window",
            QueryKind::WeekWindow { .. } => "week_window",
            QueryKind::PrefixCount { .. } => "prefix_count",
            QueryKind::Status => "status",
            QueryKind::Telemetry => "telemetry",
            QueryKind::Trace { .. } => "trace",
        }
    }

    fn discriminant(self) -> u8 {
        match self {
            QueryKind::DayWindow { .. } => 1,
            QueryKind::WeekWindow { .. } => 2,
            QueryKind::PrefixCount { .. } => 3,
            QueryKind::Status => 4,
            QueryKind::Telemetry => 5,
            QueryKind::Trace { .. } => 6,
        }
    }

    fn operands(self) -> (u64, u64) {
        match self {
            QueryKind::DayWindow { start, end } | QueryKind::WeekWindow { start, end } => {
                (start, end)
            }
            QueryKind::PrefixCount { base, len } => (u64::from(base), u64::from(len)),
            QueryKind::Status | QueryKind::Telemetry => (0, 0),
            QueryKind::Trace { trace_id } => (trace_id, 0),
        }
    }
}

/// One query addressed to the observatory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// The computation being requested.
    pub kind: QueryKind,
    /// Deadline budget in milliseconds; `0` means unlimited.
    pub budget_ms: u64,
    /// Whether a deadline overrun may be answered from the density
    /// approximation instead of failing with `DeadlineExceeded`.
    pub allow_degraded: bool,
    /// Trace context propagated from the client
    /// ([`TraceContext::NONE`] for untraced requests): server-side
    /// spans hang off `trace.span` so the client's root and the
    /// server's tree stitch into one trace.
    pub trace: TraceContext,
}

/// Outcome class of a response; every admitted request gets exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Exact answer from fully ingested data.
    Ok,
    /// An answer was produced but is *not* the exact batch answer —
    /// either the window coverage is partial or the value came from the
    /// density approximation. Inspect `coverage_ppm` / `from_density`.
    Degraded,
    /// The deadline budget expired and degraded answering was not
    /// allowed; `units_done`/`units_total` carry partial progress.
    DeadlineExceeded,
    /// The admission queue was full; the request was never executed.
    Overloaded,
    /// The request was malformed or out of range.
    BadRequest,
}

impl Status {
    fn discriminant(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Degraded => 1,
            Status::DeadlineExceeded => 2,
            Status::Overloaded => 3,
            Status::BadRequest => 4,
        }
    }

    fn from_discriminant(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::Degraded,
            2 => Status::DeadlineExceeded,
            3 => Status::Overloaded,
            4 => Status::BadRequest,
            other => return Err(WireError::BadDiscriminant(other)),
        })
    }
}

/// The observatory's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Epoch of the snapshot the answer was computed against.
    pub epoch: u64,
    /// Outcome class.
    pub status: Status,
    /// The count (or, for `Status` probes, the ingested day count).
    pub value: u64,
    /// Window coverage in parts-per-million: `1_000_000` means every
    /// day in the window was fully fed; less annotates partial feeds or
    /// a clamped horizon.
    pub coverage_ppm: u64,
    /// Composition units materialized before the answer (or deadline).
    pub units_done: u64,
    /// Composition units the full answer needed.
    pub units_total: u64,
    /// True when `value` came from the [`PrefixDensity`]
    /// approximation rather than exact set composition.
    ///
    /// [`PrefixDensity`]: ipactive_net::PrefixDensity
    pub from_density: bool,
    /// Echo of the request's trace id (`0` for untraced requests), so
    /// the client can link this answer's latency observation back to
    /// its trace.
    pub trace_id: u64,
    /// JSON document body for `Telemetry` / `Trace` answers; `None`
    /// for every scalar answer.
    pub body: Option<String>,
}

impl Response {
    /// Coverage denominator: one million, i.e. a fully-fed window.
    pub const FULL_COVERAGE: u64 = 1_000_000;
}

fn encode_request(req: &Request) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    p.push(REQUEST_MAGIC);
    encode_u64(&mut p, req.id);
    p.push(req.kind.discriminant());
    let (a, b) = req.kind.operands();
    encode_u64(&mut p, a);
    encode_u64(&mut p, b);
    encode_u64(&mut p, req.budget_ms);
    p.push(u8::from(req.allow_degraded));
    encode_u64(&mut p, req.trace.trace.0);
    encode_u64(&mut p, req.trace.span);
    p
}

fn encode_response(resp: &Response) -> Vec<u8> {
    let mut p = Vec::with_capacity(48);
    p.push(RESPONSE_MAGIC);
    encode_u64(&mut p, resp.id);
    encode_u64(&mut p, resp.epoch);
    p.push(resp.status.discriminant());
    encode_u64(&mut p, resp.value);
    encode_u64(&mut p, resp.coverage_ppm);
    encode_u64(&mut p, resp.units_done);
    encode_u64(&mut p, resp.units_total);
    p.push(u8::from(resp.from_density));
    encode_u64(&mut p, resp.trace_id);
    match &resp.body {
        None => encode_u64(&mut p, 0),
        Some(body) => {
            encode_u64(&mut p, body.len() as u64);
            p.extend_from_slice(body.as_bytes());
        }
    }
    p
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    let (&b, rest) = buf.split_first().ok_or(WireError::Truncated)?;
    *buf = rest;
    Ok(b)
}

/// Decodes an append-only trailing varint: an exhausted payload means
/// the peer predates the field and the default (0) applies.
fn decode_u64_tail(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.is_empty() {
        Ok(0)
    } else {
        Ok(decode_u64(buf)?)
    }
}

fn decode_request(mut p: &[u8]) -> Result<Request, WireError> {
    let magic = take_u8(&mut p)?;
    if magic != REQUEST_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let id = decode_u64(&mut p)?;
    let kind_b = take_u8(&mut p)?;
    let a = decode_u64(&mut p)?;
    let b = decode_u64(&mut p)?;
    let kind = match kind_b {
        1 => QueryKind::DayWindow { start: a, end: b },
        2 => QueryKind::WeekWindow { start: a, end: b },
        3 => QueryKind::PrefixCount {
            base: u32::try_from(a).map_err(|_| WireError::BadDiscriminant(kind_b))?,
            len: u8::try_from(b).map_err(|_| WireError::BadDiscriminant(kind_b))?,
        },
        4 => QueryKind::Status,
        5 => QueryKind::Telemetry,
        6 => QueryKind::Trace { trace_id: a },
        other => return Err(WireError::BadDiscriminant(other)),
    };
    let budget_ms = decode_u64(&mut p)?;
    let flags = take_u8(&mut p)?;
    let trace = TraceId(decode_u64_tail(&mut p)?);
    let span = decode_u64_tail(&mut p)?;
    Ok(Request {
        id,
        kind,
        budget_ms,
        allow_degraded: flags & 1 != 0,
        trace: TraceContext { trace, span },
    })
}

fn decode_response(mut p: &[u8]) -> Result<Response, WireError> {
    let magic = take_u8(&mut p)?;
    if magic != RESPONSE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let id = decode_u64(&mut p)?;
    let epoch = decode_u64(&mut p)?;
    let status = Status::from_discriminant(take_u8(&mut p)?)?;
    let value = decode_u64(&mut p)?;
    let coverage_ppm = decode_u64(&mut p)?;
    let units_done = decode_u64(&mut p)?;
    let units_total = decode_u64(&mut p)?;
    let flags = take_u8(&mut p)?;
    let trace_id = decode_u64_tail(&mut p)?;
    let body = match decode_u64_tail(&mut p)? {
        0 => None,
        len => {
            let len = usize::try_from(len).map_err(|_| WireError::Truncated)?;
            if len > p.len() {
                return Err(WireError::Truncated);
            }
            let (bytes, _rest) = p.split_at(len);
            Some(String::from_utf8_lossy(bytes).into_owned())
        }
    };
    Ok(Response {
        id,
        epoch,
        status,
        value,
        coverage_ppm,
        units_done,
        units_total,
        from_density: flags & 1 != 0,
        trace_id,
        body,
    })
}

fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(payload.len() + 16);
    encode_u64(&mut frame, payload.len() as u64);
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&frame)
}

/// Reads one framed payload. `Ok(None)` means the peer closed the
/// stream cleanly *between* frames; EOF inside a frame is
/// [`WireError::Truncated`].
fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    // Read the varint length byte-by-byte so a clean EOF before the
    // first byte is distinguishable from a torn frame.
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if shift == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
        len |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift >= 64 {
            return Err(WireError::Varint(VarintError::Overflow));
        }
    }
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc = [0u8; 4];
    r.read_exact(&mut crc)?;
    if u32::from_le_bytes(crc) != crc32(&payload) {
        return Err(WireError::CrcMismatch);
    }
    Ok(Some(payload))
}

/// Writes one request frame.
pub fn write_request<W: Write + ?Sized>(w: &mut W, req: &Request) -> io::Result<()> {
    write_frame(w, &encode_request(req))
}

/// Reads one request frame; `Ok(None)` on clean EOF.
pub fn read_request<R: Read + ?Sized>(r: &mut R) -> Result<Option<Request>, WireError> {
    match read_frame(r)? {
        Some(p) => Ok(Some(decode_request(&p)?)),
        None => Ok(None),
    }
}

/// Writes one response frame.
pub fn write_response<W: Write + ?Sized>(w: &mut W, resp: &Response) -> io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Reads one response frame; `Ok(None)` on clean EOF.
pub fn read_response<R: Read + ?Sized>(r: &mut R) -> Result<Option<Response>, WireError> {
    match read_frame(r)? {
        Some(p) => Ok(Some(decode_response(&p)?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request {
                id: 0,
                kind: QueryKind::DayWindow { start: 0, end: 7 },
                budget_ms: 0,
                allow_degraded: false,
                trace: TraceContext::NONE,
            },
            Request {
                id: u64::MAX,
                kind: QueryKind::WeekWindow { start: 3, end: 52 },
                budget_ms: 25,
                allow_degraded: true,
                trace: TraceContext { trace: TraceId(0xDEAD_BEEF), span: 3 },
            },
            Request {
                id: 17,
                kind: QueryKind::PrefixCount {
                    base: 0x0a00_0000,
                    len: 24,
                },
                budget_ms: 1,
                allow_degraded: false,
                trace: TraceContext::NONE,
            },
            Request {
                id: 1,
                kind: QueryKind::Status,
                budget_ms: 0,
                allow_degraded: true,
                trace: TraceContext::NONE,
            },
            Request {
                id: 2,
                kind: QueryKind::Telemetry,
                budget_ms: 0,
                allow_degraded: true,
                trace: TraceContext::NONE,
            },
            Request {
                id: 3,
                kind: QueryKind::Trace { trace_id: 0xABCD },
                budget_ms: 0,
                allow_degraded: true,
                trace: TraceContext::NONE,
            },
        ]
    }

    #[test]
    fn requests_round_trip_through_one_stream() {
        let mut buf = Vec::new();
        let reqs = sample_requests();
        for r in &reqs {
            write_request(&mut buf, r).unwrap();
        }
        let mut cursor = &buf[..];
        for want in &reqs {
            let got = read_request(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, want);
        }
        assert!(read_request(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response {
            id: 42,
            epoch: 9,
            status: Status::Degraded,
            value: 123_456,
            coverage_ppm: 750_000,
            units_done: 3,
            units_total: 8,
            from_density: true,
            trace_id: 0xDEAD_BEEF,
            body: None,
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn response_bodies_round_trip() {
        let resp = Response {
            id: 7,
            epoch: 1,
            status: Status::Ok,
            value: 0,
            coverage_ppm: Response::FULL_COVERAGE,
            units_done: 0,
            units_total: 0,
            from_density: false,
            trace_id: 5,
            body: Some("{\n  \"traces\": []\n}\n".to_string()),
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn pre_trace_frames_decode_as_untraced() {
        // A request frame exactly as a pre-trace client would encode
        // it: no trailing (trace_id, parent_span) varints.
        let mut p = Vec::new();
        p.push(REQUEST_MAGIC);
        encode_u64(&mut p, 11); // id
        p.push(4); // Status
        encode_u64(&mut p, 0);
        encode_u64(&mut p, 0);
        encode_u64(&mut p, 0); // budget
        p.push(1); // allow_degraded
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        let req = read_request(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(req.id, 11);
        assert_eq!(req.trace, TraceContext::NONE, "missing trailer means untraced");

        // And a pre-trace response: no trace_id, no body.
        let mut p = Vec::new();
        p.push(RESPONSE_MAGIC);
        encode_u64(&mut p, 11);
        encode_u64(&mut p, 2); // epoch
        p.push(0); // Ok
        encode_u64(&mut p, 99); // value
        encode_u64(&mut p, Response::FULL_COVERAGE);
        encode_u64(&mut p, 1);
        encode_u64(&mut p, 1);
        p.push(0);
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        let resp = read_response(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(resp.trace_id, 0);
        assert_eq!(resp.body, None);
        assert_eq!(resp.value, 99);
    }

    #[test]
    fn body_length_beyond_payload_is_truncation() {
        let resp = Response {
            id: 1,
            epoch: 1,
            status: Status::Ok,
            value: 0,
            coverage_ppm: 0,
            units_done: 0,
            units_total: 0,
            from_density: false,
            trace_id: 0,
            body: Some("abcdef".to_string()),
        };
        let payload = encode_response(&resp);
        // Chop the body bytes off but keep the length varint intact.
        let torn = &payload[..payload.len() - 3];
        let err = decode_response(torn).unwrap_err();
        assert!(matches!(err, WireError::Truncated), "got {err}");
    }

    #[test]
    fn corrupt_crc_is_detected_not_parsed() {
        let mut buf = Vec::new();
        write_request(&mut buf, &sample_requests()[0]).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = read_request(&mut &buf[..]).unwrap_err();
        assert!(
            matches!(err, WireError::CrcMismatch | WireError::BadMagic(_)),
            "flipped bit must surface as corruption, got {err}"
        );
    }

    #[test]
    fn truncation_mid_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_request(&mut buf, &sample_requests()[1]).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_request(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, WireError::Truncated), "got {err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, MAX_FRAME + 1);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, WireError::Oversized(_)), "got {err}");
    }

    #[test]
    fn unknown_kind_discriminant_is_rejected() {
        let mut p = Vec::new();
        p.push(REQUEST_MAGIC);
        encode_u64(&mut p, 5); // id
        p.push(9); // bogus kind
        encode_u64(&mut p, 0);
        encode_u64(&mut p, 0);
        encode_u64(&mut p, 0);
        p.push(0);
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        let err = read_request(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, WireError::BadDiscriminant(9)), "got {err}");
    }
}
