//! Snapshot-isolated ingest: epoch-versioned immutable views of the
//! analysis engine.
//!
//! The observatory owns an append-only list of per-day activity logs.
//! Ingesting a day rebuilds the fixed-width datasets from the full
//! replay (the dataset builders are order-insensitive, so the rebuilt
//! dataset is *equal* to what a batch build over the same records
//! produces — the property the snapshot-isolation differential tests
//! pin) and publishes a new [`EpochSnapshot`] whose
//! [`AnalysisCtx`] is seeded from the previous epoch's cache via
//! [`AnalysisCtx::extended_from`]. Readers pin an epoch with
//! [`Observatory::pin`] — a cheap `Arc` clone — and keep querying it
//! unperturbed no matter how many epochs publish behind them.
//!
//! Weekly data follows the *complete weeks only* rule: week `w` covers
//! days `7w..7w+7` and exists once its seventh day lands. Earlier
//! weeks never change when a day appends, so weekly cache slots carry
//! forward under the same reasoning as daily ones.

use ipactive_core::{
    AnalysisCtx, Coverage, DailyDataset, DailyDatasetBuilder, WeeklyDataset, WeeklyDatasetBuilder,
};
use ipactive_net::{ActiveSet, Addr, PrefixDensity, TieredSet};
use ipactive_obs::{Event, EventKind, Registry};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// One day of observed activity: `(address, successful requests)`
/// records, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct DayLog {
    /// Per-address successful request counts for the day.
    pub hits: Vec<(Addr, u64)>,
}

impl DayLog {
    /// An empty log.
    pub fn new() -> DayLog {
        DayLog::default()
    }

    /// Records `hits` successful requests from `addr`.
    pub fn record(&mut self, addr: Addr, hits: u64) {
        self.hits.push((addr, hits));
    }
}

/// A deterministic synthetic day of activity — the data source for
/// the load generator and the chaos/differential harnesses. Pure in
/// `(seed, day)`: some addresses are diurnal stable hosts, some churn
/// in and out by day parity, a few are one-day visitors.
pub fn synthetic_day_log(seed: u64, day: usize) -> DayLog {
    let mut log = DayLog::new();
    let mut state = splitmix(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(day as u64 + 1));
    let blocks = 24usize;
    for b in 0..blocks {
        let base = 0x0a00_0000u32 + ((b as u32) << 8);
        // Stable hosts: always active, traffic varies by day.
        for h in 1..=6u32 {
            log.record(Addr::new(base | h), 10 + ((day as u64 + h as u64) % 7));
        }
        // Churners: half the block's middle range flips by day parity.
        for h in 32..40u32 {
            if (h as usize + day + b) % 2 == 0 {
                log.record(Addr::new(base | h), 1 + (h as u64 % 3));
            }
        }
        // Visitors: a few seeded one-day addresses.
        for _ in 0..3 {
            state = splitmix(state);
            let h = 64 + (state % 128) as u32;
            log.record(Addr::new(base | h), 1 + state % 5);
        }
    }
    log
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One published epoch: an immutable view of the datasets, the shared
/// analysis cache, per-day coverage provenance, and a lazily built
/// density approximation for degraded answers.
pub struct EpochSnapshot<S: ActiveSet = TieredSet> {
    epoch: u64,
    engine: Arc<AnalysisCtx<S>>,
    /// Per-ingested-day collection completeness (1.0 = full feed).
    day_fractions: Arc<Vec<f64>>,
    density: OnceLock<Arc<PrefixDensity>>,
}

impl<S: ActiveSet> EpochSnapshot<S> {
    /// The epoch number (0 = the empty pre-ingest epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Days ingested as of this epoch.
    pub fn days(&self) -> usize {
        self.engine.daily().num_days
    }

    /// Complete weeks as of this epoch (`days / 7`).
    pub fn weeks(&self) -> usize {
        self.engine.weekly().num_weeks
    }

    /// The epoch's memoized query engine.
    pub fn engine(&self) -> &AnalysisCtx<S> {
        &self.engine
    }

    /// The epoch's daily dataset.
    pub fn daily(&self) -> &Arc<DailyDataset> {
        self.engine.daily()
    }

    /// The epoch's weekly dataset.
    pub fn weekly(&self) -> &Arc<WeeklyDataset> {
        self.engine.weekly()
    }

    /// Collection-completeness fraction of the *requested* day window:
    /// the mean per-day feed fraction over `days`, where days beyond
    /// the ingested horizon count as 0.0. Exactly 1.0 only when every
    /// requested day is ingested and was collected from a full feed —
    /// the condition for a non-degraded answer.
    pub fn window_coverage(&self, days: Range<usize>) -> f64 {
        if days.is_empty() {
            return 1.0;
        }
        let ingested = self.days();
        let mut sum = 0.0;
        for d in days.clone() {
            if d < ingested {
                sum += self.day_fractions[d];
            }
        }
        sum / days.len() as f64
    }

    /// [`EpochSnapshot::window_coverage`] for a week window (weeks map
    /// to their seven days).
    pub fn week_window_coverage(&self, weeks: Range<usize>) -> f64 {
        self.window_coverage(weeks.start * 7..weeks.end * 7)
    }

    /// The coverage grid for the whole epoch (one shard, one slot per
    /// ingested day) — the provenance surface degraded answers quote.
    pub fn coverage(&self) -> Coverage {
        Coverage::from_slot_fractions(&self.day_fractions)
    }

    /// The all-days prefix-density index, built on first use from the
    /// (cached) union of every ingested day. Degraded answers quote
    /// counts from this O(1) approximation instead of composing sets
    /// they have no budget for.
    pub fn density(&self) -> Arc<PrefixDensity> {
        self.density
            .get_or_init(|| Arc::new(PrefixDensity::from_set(&*self.engine.all_active())))
            .clone()
    }
}

/// What the ingest half of the observatory owns, behind one mutex:
/// the authoritative replay log and its coverage annotations.
struct IngestState {
    days: Vec<DayLog>,
    fractions: Vec<f64>,
}

/// The always-on observatory: snapshot-isolated ingest over an
/// epoch-versioned immutable analysis engine. See the module docs.
pub struct Observatory<S: ActiveSet = TieredSet> {
    ingest: Mutex<IngestState>,
    current: RwLock<Arc<EpochSnapshot<S>>>,
    registry: Registry,
    /// Chaos stall (µs) applied to every published engine's budgeted
    /// composition path; see [`AnalysisCtx::set_compose_stall`].
    compose_stall_us: AtomicU64,
}

impl<S: ActiveSet> Observatory<S> {
    /// An empty observatory (epoch 0, zero days) metering into
    /// `registry`.
    pub fn new(registry: &Registry) -> Observatory<S> {
        let daily = Arc::new(DailyDatasetBuilder::new(0).finish());
        let weekly = Arc::new(WeeklyDatasetBuilder::new(0).finish());
        let engine = AnalysisCtx::new_with_obs(daily, weekly, registry);
        Observatory {
            ingest: Mutex::new(IngestState { days: Vec::new(), fractions: Vec::new() }),
            current: RwLock::new(Arc::new(EpochSnapshot {
                epoch: 0,
                engine: Arc::new(engine),
                day_fractions: Arc::new(Vec::new()),
                density: OnceLock::new(),
            })),
            registry: registry.clone(),
            compose_stall_us: AtomicU64::new(0),
        }
    }

    /// The registry every epoch's engine meters into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Pins the current epoch: a cheap `Arc` clone that later ingests
    /// can never invalidate or mutate.
    pub fn pin(&self) -> Arc<EpochSnapshot<S>> {
        self.current.read().expect("epoch lock poisoned").clone()
    }

    /// Ingests one fully-collected day and publishes a new epoch.
    pub fn ingest_day(&self, log: DayLog) -> Arc<EpochSnapshot<S>> {
        self.ingest_day_with_coverage(log, 1.0)
    }

    /// Ingests one day whose feed was only `fraction` complete (the
    /// "Lost in Space" case: a partial feed must be served honestly,
    /// not silently shrunk). The fraction travels with every epoch and
    /// annotates degraded answers over windows touching this day.
    pub fn ingest_day_with_coverage(
        &self,
        log: DayLog,
        fraction: f64,
    ) -> Arc<EpochSnapshot<S>> {
        self.ingest_batch(vec![(log, fraction)])
    }

    /// Ingests several days and publishes a *single* new epoch.
    pub fn ingest_days(&self, logs: Vec<DayLog>) -> Arc<EpochSnapshot<S>> {
        self.ingest_batch(logs.into_iter().map(|l| (l, 1.0)).collect())
    }

    fn ingest_batch(&self, batch: Vec<(DayLog, f64)>) -> Arc<EpochSnapshot<S>> {
        // The ingest lock serializes writers for the whole rebuild;
        // readers never take it.
        let mut state = self.ingest.lock().expect("ingest lock poisoned");
        for (log, fraction) in batch {
            state.days.push(log);
            state.fractions.push(fraction.clamp(0.0, 1.0));
        }
        let count = state.days.len();

        // Replay into fresh fixed-width datasets. Builders are
        // order-insensitive and commutative, so this is *equal* to a
        // batch build over the same records — the byte-identity
        // anchor. Cost is O(total records); the expensive state (every
        // materialized activity set) carries forward below instead of
        // being recomputed.
        let mut db = DailyDatasetBuilder::new(count);
        for (d, log) in state.days.iter().enumerate() {
            for &(addr, hits) in &log.hits {
                db.record_hits(d, addr, hits);
            }
        }
        let daily = Arc::new(db.finish());
        let weeks = count / 7;
        let mut wb = WeeklyDatasetBuilder::new(weeks);
        for w in 0..weeks {
            for d in w * 7..w * 7 + 7 {
                for &(addr, hits) in &state.days[d].hits {
                    wb.record_week(w, addr, hits);
                }
            }
        }
        let weekly = Arc::new(wb.finish());

        let prev = self.pin();
        let engine = AnalysisCtx::extended_from(&prev.engine, daily, weekly, &self.registry);
        let stall = self.compose_stall_us.load(Ordering::SeqCst);
        engine.set_compose_stall(Duration::from_micros(stall));
        let snapshot = Arc::new(EpochSnapshot {
            epoch: prev.epoch + 1,
            engine: Arc::new(engine),
            day_fractions: Arc::new(state.fractions.clone()),
            density: OnceLock::new(),
        });

        // The atomic swap: one short write-lock to replace the Arc.
        *self.current.write().expect("epoch lock poisoned") = snapshot.clone();
        self.registry.gauge("serve.epoch").set(snapshot.epoch as i64);
        self.registry.gauge("serve.days").set(count as i64);
        self.registry.emit(
            Event::new(EventKind::EpochPublish)
                .day(count as u16)
                .offset(snapshot.epoch)
                .detail(format!("published epoch {} with {count} days", snapshot.epoch)),
        );
        snapshot
    }

    /// Chaos injection: every epoch published from now on stalls its
    /// *budgeted* composition path by `stall` per uncached unit build
    /// (and the current epoch is updated in place). Zero disables.
    pub fn set_compose_stall(&self, stall: Duration) {
        self.compose_stall_us.store(stall.as_micros() as u64, Ordering::SeqCst);
        self.pin().engine.set_compose_stall(stall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_engine(logs: &[DayLog]) -> AnalysisCtx {
        let mut db = DailyDatasetBuilder::new(logs.len());
        for (d, log) in logs.iter().enumerate() {
            for &(a, h) in &log.hits {
                db.record_hits(d, a, h);
            }
        }
        let weeks = logs.len() / 7;
        let mut wb = WeeklyDatasetBuilder::new(weeks);
        for w in 0..weeks {
            for d in w * 7..w * 7 + 7 {
                for &(a, h) in &logs[d].hits {
                    wb.record_week(w, a, h);
                }
            }
        }
        AnalysisCtx::new(Arc::new(db.finish()), Arc::new(wb.finish()))
    }

    #[test]
    fn incremental_ingest_equals_batch_build() {
        let logs: Vec<DayLog> = (0..10).map(|d| synthetic_day_log(7, d)).collect();
        let reg = Registry::new();
        let obs: Observatory = Observatory::new(&reg);
        for log in &logs {
            obs.ingest_day(log.clone());
        }
        let snap = obs.pin();
        assert_eq!(snap.epoch(), 10);
        assert_eq!(snap.days(), 10);
        assert_eq!(snap.weeks(), 1);
        let reference = reference_engine(&logs);
        assert_eq!(**snap.daily(), **reference.daily(), "daily dataset differs from batch");
        assert_eq!(**snap.weekly(), **reference.weekly(), "weekly dataset differs from batch");
        assert_eq!(*snap.engine().day_window(2..9), *reference.day_window(2..9));
        assert_eq!(*snap.engine().week_window(0..1), *reference.week_window(0..1));
    }

    #[test]
    fn readers_pinned_to_an_epoch_are_never_invalidated() {
        let reg = Registry::new();
        let obs: Observatory = Observatory::new(&reg);
        obs.ingest_days((0..6).map(|d| synthetic_day_log(3, d)).collect());
        let pinned = obs.pin();
        let before = pinned.engine().day_window(1..5);
        // Ingest storms past the pinned reader.
        for d in 6..12 {
            obs.ingest_day(synthetic_day_log(3, d));
        }
        // The pinned epoch still answers, identically, and the grown
        // epoch shares the very same Arc for the old window.
        let after = pinned.engine().day_window(1..5);
        assert!(Arc::ptr_eq(&before, &after));
        assert_eq!(pinned.days(), 6);
        let fresh = obs.pin();
        assert_eq!(fresh.days(), 12);
        assert!(
            Arc::ptr_eq(&before, &fresh.engine().day_window(1..5)),
            "carry-forward must share the pinned epoch's sets"
        );
    }

    #[test]
    fn window_coverage_annotates_partial_feeds_and_horizons() {
        let reg = Registry::new();
        let obs: Observatory = Observatory::new(&reg);
        obs.ingest_day(synthetic_day_log(1, 0));
        obs.ingest_day_with_coverage(synthetic_day_log(1, 1), 0.5);
        let snap = obs.pin();
        assert_eq!(snap.window_coverage(0..1), 1.0);
        assert!((snap.window_coverage(0..2) - 0.75).abs() < 1e-12);
        // A window reaching past the ingested horizon dilutes to zero
        // for the unknown days.
        assert!((snap.window_coverage(0..4) - 1.5 / 4.0).abs() < 1e-12);
        assert_eq!(snap.coverage().num_slots(), 2);
        assert!(!snap.coverage().is_complete());
    }

    #[test]
    fn density_is_lazy_shared_and_counts_the_union() {
        let reg = Registry::new();
        let obs: Observatory = Observatory::new(&reg);
        obs.ingest_days((0..4).map(|d| synthetic_day_log(9, d)).collect());
        let snap = obs.pin();
        let density = snap.density();
        assert!(Arc::ptr_eq(&density, &snap.density()), "density memoizes");
        assert_eq!(density.total(), snap.engine().all_active().len() as u64);
    }

    #[test]
    fn synthetic_logs_are_pure_in_seed_and_day() {
        let a = synthetic_day_log(42, 3);
        let b = synthetic_day_log(42, 3);
        assert_eq!(a.hits, b.hits);
        assert_ne!(synthetic_day_log(42, 4).hits, a.hits);
        assert_ne!(synthetic_day_log(43, 3).hits, a.hits);
    }
}
