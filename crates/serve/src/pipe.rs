//! In-process byte pipes for driving the server without sockets.
//!
//! Tests and the load generator need a transport that behaves like a
//! stream socket — blocking reads, EOF on writer drop, `BrokenPipe`
//! when the reader went away — but stays deterministic and in-process.
//! [`pipe`] gives one unidirectional channel; [`duplex`] pairs two into
//! a connection.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

struct Shared {
    buf: VecDeque<u8>,
    write_closed: bool,
    read_closed: bool,
}

struct Channel {
    state: Mutex<Shared>,
    ready: Condvar,
}

/// Write half of a [`pipe`]; dropping it delivers EOF to the reader.
pub struct PipeWriter {
    ch: Arc<Channel>,
}

/// Read half of a [`pipe`]; blocks until bytes arrive or the writer
/// hangs up.
pub struct PipeReader {
    ch: Arc<Channel>,
}

/// Creates an unbounded in-memory byte pipe.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let ch = Arc::new(Channel {
        state: Mutex::new(Shared {
            buf: VecDeque::new(),
            write_closed: false,
            read_closed: false,
        }),
        ready: Condvar::new(),
    });
    (PipeWriter { ch: ch.clone() }, PipeReader { ch })
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.ch.state.lock().unwrap();
        if st.read_closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "pipe reader closed",
            ));
        }
        st.buf.extend(data);
        self.ch.ready.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut st = self.ch.state.lock().unwrap();
        st.write_closed = true;
        self.ch.ready.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.ch.state.lock().unwrap();
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if st.write_closed {
                return Ok(0); // EOF
            }
            st = self.ch.ready.wait(st).unwrap();
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut st = self.ch.state.lock().unwrap();
        st.read_closed = true;
        self.ch.ready.notify_all();
    }
}

/// One endpoint of a [`duplex`] connection: `Read` pulls from the peer,
/// `Write` pushes to it. Split into halves with [`DuplexConn::split`]
/// to hand the read side and write side to different threads.
pub struct DuplexConn {
    /// Bytes arriving from the peer.
    pub rx: PipeReader,
    /// Bytes heading to the peer.
    pub tx: PipeWriter,
}

impl DuplexConn {
    /// Splits the connection into independently-owned halves.
    pub fn split(self) -> (PipeReader, PipeWriter) {
        (self.rx, self.tx)
    }
}

impl Read for DuplexConn {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.rx.read(out)
    }
}

impl Write for DuplexConn {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.tx.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.tx.flush()
    }
}

/// Creates a connected pair of bidirectional in-process streams.
pub fn duplex() -> (DuplexConn, DuplexConn) {
    let (a_tx, b_rx) = pipe();
    let (b_tx, a_rx) = pipe();
    (
        DuplexConn { rx: a_rx, tx: a_tx },
        DuplexConn { rx: b_rx, tx: b_tx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bytes_cross_the_pipe_in_order() {
        let (mut w, mut r) = pipe();
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        drop(w);
        let mut got = String::new();
        r.read_to_string(&mut got).unwrap();
        assert_eq!(got, "hello world");
    }

    #[test]
    fn reader_blocks_until_writer_delivers() {
        let (mut w, mut r) = pipe();
        let handle = thread::spawn(move || {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf).unwrap();
            buf
        });
        thread::sleep(std::time::Duration::from_millis(10));
        w.write_all(b"ping").unwrap();
        assert_eq!(&handle.join().unwrap(), b"ping");
    }

    #[test]
    fn writer_sees_broken_pipe_after_reader_drops() {
        let (mut w, r) = pipe();
        drop(r);
        let err = w.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn duplex_carries_traffic_both_ways() {
        let (mut a, mut b) = duplex();
        a.write_all(b"req").unwrap();
        let mut buf = [0u8; 3];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"req");
        b.write_all(b"resp").unwrap();
        let mut buf = [0u8; 4];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"resp");
    }

    #[test]
    fn dropping_one_duplex_end_eofs_the_peer() {
        let (a, mut b) = duplex();
        drop(a);
        let mut buf = Vec::new();
        assert_eq!(b.read_to_end(&mut buf).unwrap(), 0);
    }
}
