//! # ipactive-serve
//!
//! The always-on observatory: Richter et al. frame address-space
//! activity as something to *observe continuously*, and this crate is
//! the serving layer that makes the repo's batch analyses long-lived —
//! days append incrementally while concurrent readers query activity,
//! churn, and density over arbitrary windows.
//!
//! ## Architecture
//!
//! * [`Observatory`] — snapshot-isolated ingest. Each
//!   [`Observatory::ingest_day`] publishes a new immutable
//!   [`EpochSnapshot`] by an atomic `Arc` swap; the new epoch's
//!   [`AnalysisCtx`](ipactive_core::AnalysisCtx) carries forward every
//!   cache slot the previous epoch materialized (appending a day adds
//!   keys, it never invalidates a window), so readers pinned to an
//!   older epoch are never disturbed and concurrent-ingest answers are
//!   byte-identical to a batch build.
//! * [`wire`] — the length-prefixed binary protocol (varint frames
//!   with a trailing CRC, the same idiom as `logfmt::lease`).
//! * [`Server`] — the threaded query front-end: a *bounded* admission
//!   queue that load-sheds with an explicit `Overloaded` response,
//!   per-request deadline budgets checked at slot-composition
//!   boundaries inside the engine, `catch_unwind` isolation per query
//!   worker (panics journal a `query_panic` event and the request is
//!   answered degraded, never dropped), and a degraded mode that
//!   answers from the [`PrefixDensity`](ipactive_net::PrefixDensity)
//!   approximation with a first-class coverage annotation.
//! * [`ChaosPlan`] — seeded, deterministic fault injection (worker
//!   panics, stalls) for the soak tests.
//! * [`loadgen`] — the open-loop load generator behind
//!   `repro serve-bench`, reporting latency quantiles from the obs
//!   histogram plane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod loadgen;
pub mod observatory;
pub mod pipe;
pub mod server;
pub mod slo;
pub mod wire;

pub use chaos::{ChaosAction, ChaosPlan};
pub use ipactive_obs::{TraceContext, TraceId};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use observatory::{synthetic_day_log, DayLog, EpochSnapshot, Observatory};
pub use pipe::{duplex, DuplexConn, PipeReader, PipeWriter};
pub use server::{ServeConfig, Server};
pub use slo::{SloMonitor, SloPolicy};
pub use wire::{QueryKind, Request, Response, Status, WireError};
