//! Seeded, deterministic fault injection for the serving layer.
//!
//! A [`ChaosPlan`] is pure data: given the executed-query sequence
//! number it answers "what goes wrong here?". The same `(seed,
//! periods)` always injects the same faults at the same points, so a
//! chaos soak that fails can be replayed exactly by pinning the seed.
//! Faults are keyed on *executed* sequence numbers (assigned by the
//! worker that dequeues a query), not request ids, so load-shed
//! requests never consume an injection slot and a plan with
//! `panic_period = n` is guaranteed one panic in every `n` executed
//! queries.

/// What the plan injects for one executed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Execute normally.
    None,
    /// Panic inside the query worker (exercises `catch_unwind` +
    /// journaled `query_panic` + degraded answering).
    Panic,
    /// Stall slot composition (exercises deadline budgets).
    Stall,
}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed that picks *which* residue inside each period faults.
    pub seed: u64,
    /// Panic every `panic_period` executed queries; `0` disables.
    pub panic_period: u64,
    /// Stall every `stall_period` executed queries; `0` disables.
    pub stall_period: u64,
    /// Stall duration in microseconds applied per uncached
    /// composition unit when a `Stall` fires.
    pub stall_us: u64,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            panic_period: 0,
            stall_period: 0,
            stall_us: 0,
        }
    }

    /// True when the plan can inject at least one fault kind.
    pub fn is_active(&self) -> bool {
        self.panic_period != 0 || self.stall_period != 0
    }

    /// The fault (if any) for executed query number `seq`.
    ///
    /// Panics win over stalls when both periods land on the same
    /// residue — a panicking worker never reaches the stall point.
    pub fn action(&self, seq: u64) -> ChaosAction {
        if self.panic_period != 0
            && seq % self.panic_period == splitmix(self.seed) % self.panic_period
        {
            return ChaosAction::Panic;
        }
        if self.stall_period != 0
            && seq % self.stall_period == splitmix(self.seed ^ 0x5741_4c4c) % self.stall_period
        {
            return ChaosAction::Stall;
        }
        ChaosAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_none_plan_never_fires() {
        let plan = ChaosPlan::none();
        assert!(!plan.is_active());
        for seq in 0..1000 {
            assert_eq!(plan.action(seq), ChaosAction::None);
        }
    }

    #[test]
    fn same_seed_gives_an_identical_schedule() {
        let plan = ChaosPlan {
            seed: 42,
            panic_period: 13,
            stall_period: 7,
            stall_us: 500,
        };
        let a: Vec<ChaosAction> = (0..500).map(|s| plan.action(s)).collect();
        let b: Vec<ChaosAction> = (0..500).map(|s| plan.action(s)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn every_period_window_contains_exactly_one_panic() {
        let plan = ChaosPlan {
            seed: 7,
            panic_period: 11,
            stall_period: 0,
            stall_us: 0,
        };
        for window in 0..20u64 {
            let panics = (window * 11..(window + 1) * 11)
                .filter(|&s| plan.action(s) == ChaosAction::Panic)
                .count();
            assert_eq!(panics, 1, "window {window}");
        }
    }

    #[test]
    fn different_seeds_move_the_fault_residue() {
        let hit = |seed: u64| {
            let plan = ChaosPlan {
                seed,
                panic_period: 101,
                stall_period: 0,
                stall_us: 0,
            };
            (0..101).find(|&s| plan.action(s) == ChaosAction::Panic).unwrap()
        };
        let residues: std::collections::HashSet<u64> = (0..16).map(hit).collect();
        assert!(residues.len() > 1, "seed must influence placement");
    }

    #[test]
    fn stalls_fire_when_enabled_and_panics_take_precedence() {
        let plan = ChaosPlan {
            seed: 3,
            panic_period: 5,
            stall_period: 5,
            stall_us: 100,
        };
        let mut saw_stall = false;
        for seq in 0..25 {
            match plan.action(seq) {
                ChaosAction::Stall => saw_stall = true,
                ChaosAction::Panic => {
                    // Precedence: a seq matching both must report Panic,
                    // which action() guarantees structurally.
                }
                ChaosAction::None => {}
            }
        }
        // With equal periods the stall residue may collide with the
        // panic residue; only assert stalls fire for a plan where the
        // residues differ.
        if splitmix(3) % 5 != splitmix(3 ^ 0x5741_4c4c) % 5 {
            assert!(saw_stall);
        }
    }
}
