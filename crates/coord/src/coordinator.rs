//! The healing coordinator: grants shard leases, watches worker
//! health, and repairs or abandons what dead workers leave behind.
//!
//! Two drivers share one resolution path:
//!
//! * [`run_sim`] runs every grant in-process on a [`SimFs`], modeling
//!   `kill -9` with [`SimFs::exit_process`] — the page cache survives,
//!   faults and op numbering reset. Kills can strike at protocol
//!   points (a [`KillPlan`]) or at *any single filesystem operation*
//!   (an [`OpKill`]), which is what makes exhaustive kill grids cheap.
//! * [`run_processes`] spawns each grant as a real OS process and
//!   `kill -9`s the scheduled victims: a [`KillMode::Kill`] victim
//!   freezes at its point and announces itself with a marker file; a
//!   [`KillMode::Stall`] victim freezes silently and must be caught by
//!   heartbeat stagnation (`wedge_polls` consecutive polls with no
//!   beat movement).
//!
//! Either way a dead grant is resolved identically: read the corpse's
//! last heartbeat, journal the steal, `fsck --repair` both of its
//! stores, and regrant with the supervisor's [`RetryPolicy`] — or,
//! once retries are exhausted, record the loss as first-class
//! [`Coverage`] degradation (zeroed rows in the merged grid plus a
//! `quarantine/lost.why` sidecar), never as a silently smaller
//! dataset.

use crate::plan::{KillMode, KillPlan};
use crate::worker::{
    clean_beats, daily_dir, holder_id, marker_path, run_worker, shard_dir, trace_path, weekly_dir,
    PauseStyle, WorkerConfig, WorkerExit,
};
use ipactive_cdnsim::{
    collect_from_store_checked, collect_weekly_from_store, RetryPolicy, UniverseConfig,
};
use ipactive_core::{Coverage, DailyDataset, DailyDatasetBuilder, WeeklyDataset, WeeklyDatasetBuilder};
use ipactive_logfmt::{
    fsck, read_lease, Fs, FsFile, FsckReport, Inject, Lease, LeaseError, LeaseRead, LogStore,
    RealFs, SimFs, StoreError,
};
use ipactive_obs::trace::parse_trace_doc;
use ipactive_obs::{Event, EventKind, Registry, TraceContext, TraceId};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// One distributed run's shape: the universe to replay, where shard
/// directories live, and how patient the coordinator is.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Universe every worker replays (workers regenerate it from the
    /// same config, so no bytes cross the coordinator boundary).
    pub universe: UniverseConfig,
    /// Run root; `shard-SSSS/` directories live directly under it.
    pub root: PathBuf,
    /// Number of shards (= collector processes).
    pub shards: usize,
    /// Edge emitters per shard.
    pub emitters: usize,
    /// Regrant budget and backoff shape, shared with the in-process
    /// supervisor so both layers retry on the same terms.
    pub retry: RetryPolicy,
    /// Max concurrently running worker processes
    /// ([`run_processes`] only; the sim driver is sequential).
    pub jobs: usize,
    /// How often the process driver polls children
    /// ([`run_processes`] only).
    pub poll_interval: Duration,
    /// Consecutive polls with a stagnant heartbeat before a worker is
    /// declared wedged and killed. The product
    /// `wedge_polls * poll_interval` must exceed any honest
    /// inter-beat gap, so the default is generous.
    pub wedge_polls: u32,
}

impl CoordConfig {
    /// A config with default patience: sequential sim, one process
    /// job, 25ms polls, 5s wedge deadline.
    pub fn new(universe: UniverseConfig, root: PathBuf, shards: usize, emitters: usize) -> Self {
        CoordConfig {
            universe,
            root,
            shards,
            emitters,
            retry: RetryPolicy::default(),
            jobs: 1,
            poll_interval: Duration::from_millis(25),
            wedge_polls: 200,
        }
    }
}

/// A kill scheduled at an exact filesystem operation (sim driver
/// only): grant `(shard, attempt)` dies the moment it issues its
/// `at_op`-th operation. Sweeping `at_op` over a clean run's op count
/// kills a worker at *every* reachable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpKill {
    /// Victim shard.
    pub shard: u32,
    /// Which grant of that shard dies.
    pub attempt: u32,
    /// Operation number (counted from the grant's start) that kills
    /// it.
    pub at_op: u64,
}

/// Per-shard account of how collection went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard.
    pub shard: u32,
    /// Grants issued (1 = finished on the first try).
    pub grants: u32,
    /// Whether retries were exhausted and the shard abandoned.
    pub lost: bool,
    /// Last heartbeat observed from the final grant.
    pub final_beat: u64,
}

/// The coordinator's result: the merged datasets (coverage-honest
/// about any abandoned shards) plus the per-shard ledger.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Merged daily dataset across all shards.
    pub daily: DailyDataset,
    /// Merged weekly dataset across all shards.
    pub weekly: WeeklyDataset,
    /// One entry per shard, ascending.
    pub shard_reports: Vec<ShardReport>,
    /// Shards abandoned after retry exhaustion, ascending.
    pub lost_shards: Vec<u32>,
}

impl DistributedOutcome {
    /// Deterministic text summary (no paths, pids, or timings).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "distributed run: {} shards, {} lost\n",
            self.shard_reports.len(),
            self.lost_shards.len()
        ));
        for r in &self.shard_reports {
            out.push_str(&format!(
                "  shard {:04}: grants={} beat={}{}\n",
                r.shard,
                r.grants,
                r.final_beat,
                if r.lost { " LOST" } else { "" }
            ));
        }
        if let Some(cov) = &self.daily.coverage {
            out.push_str(&format!("  daily {}\n", cov.summary()));
        }
        if let Some(cov) = &self.weekly.coverage {
            out.push_str(&format!("  weekly {}\n", cov.summary()));
        }
        out
    }
}

fn store_io(e: StoreError) -> io::Error {
    io::Error::other(e.to_string())
}

/// Salt folded into the universe seed for per-grant trace ids, so
/// coordinator traces never collide with serve- or figure-minted ones
/// from the same seed.
const TRACE_SALT: u64 = 0xC0_0D17;

/// Mints the trace id for grant `(shard, attempt)` of a run — a pure
/// function of the universe seed and the grant's logical holder id,
/// so both drivers (and later inspection tooling) derive the same id.
pub fn grant_trace_id(universe_seed: u64, shard: u32, attempt: u32) -> TraceId {
    TraceId::mint(universe_seed ^ TRACE_SALT, holder_id(shard, attempt))
}

/// Opens the grant's trace with a `coord.grant` root span (seq 1) and
/// returns the context workers hang their spans off.
fn open_grant_trace(
    registry: &Registry,
    universe_seed: u64,
    shard: u32,
    attempt: u32,
    epoch: u64,
) -> TraceContext {
    let tid = grant_trace_id(universe_seed, shard, attempt);
    registry.trace_span(
        TraceContext::root(tid),
        "coord.grant",
        format!("shard {shard} attempt {attempt} epoch {epoch}"),
    )
}

/// Stitches a worker-exported span tree (its `trace-AA.json`) into
/// the coordinator's trace store. Import is idempotent by sequence
/// number, so the in-process driver (which shares a registry with its
/// workers) and the process driver (which does not) both end up with
/// one coherent tree. Best-effort: a missing or torn file just means
/// the worker died before its first export.
fn import_worker_trace<F: Fs>(fs: &F, cfg: &CoordConfig, registry: &Registry, shard: u32, attempt: u32) {
    use std::io::Read as _;
    let path = trace_path(&cfg.root, shard, attempt);
    let mut buf = Vec::new();
    let Ok(mut f) = fs.open_read(&path) else { return };
    if f.read_to_end(&mut buf).is_err() {
        return;
    }
    if let Ok(doc) = String::from_utf8(buf) {
        if let Ok((trace, spans)) = parse_trace_doc(&doc) {
            registry.import_trace(trace, spans);
        }
    }
}

/// Reads the beat the grant `(shard, attempt)` last published, or 0
/// if its lease never landed (or a different grant's lease is
/// visible). A lease file that *exists but fails verification* is not
/// silently conflated with "no lease": the corrupt file is moved into
/// the shard's `quarantine/` directory with a `.why` sidecar and
/// journaled, and only then does healing proceed from beat 0 — the
/// same provenance discipline as `lost.why`.
fn last_beat<F: Fs>(
    fs: &F,
    cfg: &CoordConfig,
    registry: &Registry,
    shard: u32,
    attempt: u32,
) -> u64 {
    let sdir = shard_dir(&cfg.root, shard);
    match read_lease(fs, &sdir, shard) {
        Ok(LeaseRead::Held(l)) if l.holder == holder_id(shard, attempt) => l.beat,
        Ok(LeaseRead::Corrupt(err)) => {
            quarantine_corrupt_lease(fs, cfg, registry, shard, attempt, &err);
            0
        }
        _ => 0,
    }
}

/// Preserves the evidence of a corrupt lease: renames the file into
/// the shard's `quarantine/` directory (which also makes the next
/// poll read `Absent` instead of re-tripping on the same corpse),
/// writes a `.why` sidecar naming the verification failure, and emits
/// a `Quarantine` journal event. Best-effort on purpose — quarantine
/// bookkeeping must never block healing.
fn quarantine_corrupt_lease<F: Fs>(
    fs: &F,
    cfg: &CoordConfig,
    registry: &Registry,
    shard: u32,
    attempt: u32,
    err: &LeaseError,
) {
    let sdir = shard_dir(&cfg.root, shard);
    let qdir = sdir.join("quarantine");
    let name = Lease::file_name(shard);
    let moved = fs
        .create_dir_all(&qdir)
        .and_then(|()| fs.rename(&Lease::path(&sdir, shard), &qdir.join(&name)))
        .is_ok();
    let sidecar = (|| {
        let mut why = fs.create(&qdir.join(format!("{name}.why")))?;
        why.write_all(
            format!("shard {shard:04} attempt {attempt}: lease failed verification: {err}\n")
                .as_bytes(),
        )?;
        why.sync_all()
    })()
    .is_ok();
    registry.emit(
        Event::new(EventKind::Quarantine).shard(shard).attempt(attempt).detail(format!(
            "corrupt lease {name}: {err}{}",
            if moved && sidecar { "" } else { " (quarantine bookkeeping incomplete)" }
        )),
    );
}

fn fsck_verdict(report: &FsckReport, cadence: &str) -> String {
    if report.is_healthy() {
        format!("{cadence} healthy")
    } else {
        format!(
            "{cadence} repaired: {} quarantined, {} orphans, {} stale manifests, {} tmp swept",
            report.quarantined.len(),
            report.orphans_removed.len(),
            report.stale_manifests.len(),
            report.tmp_swept.len()
        )
    }
}

/// The shared dead-grant resolution: journal the corpse's last beat
/// and the steal, repair both stores, and decide regrant vs loss.
/// Returns `true` if the shard should be regranted.
fn resolve_dead<F: Fs>(
    fs: &F,
    cfg: &CoordConfig,
    registry: &Registry,
    shard: u32,
    attempt: u32,
    beat: u64,
    reason: &str,
) -> io::Result<bool> {
    registry.emit(
        Event::new(EventKind::WorkerHeartbeat).shard(shard).attempt(attempt).offset(beat),
    );
    registry.emit(
        Event::new(EventKind::LeaseSteal).shard(shard).attempt(attempt).detail(reason),
    );
    // Stitch whatever span tree the corpse managed to export, then
    // record the steal as part of the same trace — the post-mortem
    // hangs off the grant, after the worker's own spans.
    import_worker_trace(fs, cfg, registry, shard, attempt);
    registry.trace_span(
        TraceContext { trace: grant_trace_id(cfg.universe.seed, shard, attempt), span: 1 },
        "coord.steal",
        reason,
    );
    for (dir, cadence) in
        [(daily_dir(&cfg.root, shard), "daily"), (weekly_dir(&cfg.root, shard), "weekly")]
    {
        let report = fsck(fs, &dir, true).map_err(store_io)?;
        registry.emit(
            Event::new(EventKind::FsckVerdict)
                .shard(shard)
                .attempt(attempt)
                .detail(fsck_verdict(&report, cadence)),
        );
    }
    if attempt < cfg.retry.max_retries {
        return Ok(true);
    }
    // Retries exhausted: the loss becomes first-class state — a
    // journal event plus a quarantine sidecar in the shard directory
    // explaining why its rows are zero in the merged coverage grid.
    registry.emit(
        Event::new(EventKind::ShardLost)
            .shard(shard)
            .attempt(attempt)
            .detail("retries exhausted"),
    );
    let qdir = shard_dir(&cfg.root, shard).join("quarantine");
    fs.create_dir_all(&qdir)?;
    let mut why = fs.create(&qdir.join("lost.why"))?;
    why.write_all(
        format!("shard {shard:04} abandoned after {} grants: retries exhausted\n", attempt + 1)
            .as_bytes(),
    )?;
    why.sync_all()?;
    Ok(false)
}

/// Whether both of the shard's stores hold their full windows.
fn stores_complete<F: Fs>(fs: &F, cfg: &CoordConfig, shard: u32) -> bool {
    let full = |dir: PathBuf, want: usize| match LogStore::open_on(fs.clone(), dir) {
        Ok(store) => store.committed_days().len() == want,
        Err(_) => false,
    };
    full(daily_dir(&cfg.root, shard), cfg.universe.daily_days)
        && full(weekly_dir(&cfg.root, shard), cfg.universe.weeks)
}

/// Merges every shard's stores into one dataset pair, in shard order.
/// Lost shards contribute empty datasets with zeroed coverage rows —
/// the grid stays `shards × window` so degradation is visible, not
/// silent.
fn merge_shards<F: Fs>(
    fs: &F,
    cfg: &CoordConfig,
    lost: &[u32],
) -> io::Result<(DailyDataset, WeeklyDataset)> {
    let num_days = cfg.universe.daily_days;
    let num_weeks = cfg.universe.weeks;
    let mut daily_acc: Option<DailyDataset> = None;
    let mut weekly_acc: Option<WeeklyDataset> = None;
    for shard in 0..cfg.shards as u32 {
        let (daily, weekly) = if lost.contains(&shard) {
            (
                DailyDatasetBuilder::new(num_days)
                    .finish()
                    .with_coverage(Coverage::from_slot_fractions(&vec![0.0; num_days])),
                WeeklyDatasetBuilder::new(num_weeks)
                    .finish()
                    .with_coverage(Coverage::from_slot_fractions(&vec![0.0; num_weeks])),
            )
        } else {
            let dstore =
                LogStore::open_on(fs.clone(), daily_dir(&cfg.root, shard)).map_err(store_io)?;
            let (daily, _stats, _report) =
                collect_from_store_checked(&dstore, num_days).map_err(store_io)?;
            let wstore =
                LogStore::open_on(fs.clone(), weekly_dir(&cfg.root, shard)).map_err(store_io)?;
            let (weekly, _wstats) =
                collect_weekly_from_store(&wstore, num_weeks).map_err(store_io)?;
            let wreport = fsck(fs, wstore.dir(), false).map_err(store_io)?;
            let mut fractions = vec![0.0f64; num_weeks];
            for (week, fraction) in wreport.day_fractions() {
                if let Some(slot) = fractions.get_mut(usize::from(week)) {
                    *slot = fraction;
                }
            }
            (daily, weekly.with_coverage(Coverage::from_slot_fractions(&fractions)))
        };
        daily_acc = Some(match daily_acc {
            None => daily,
            Some(acc) => acc.merge(daily),
        });
        weekly_acc = Some(match weekly_acc {
            None => weekly,
            Some(acc) => acc.merge(weekly),
        });
    }
    Ok((
        daily_acc.unwrap_or_else(|| DailyDatasetBuilder::new(num_days).finish()),
        weekly_acc.unwrap_or_else(|| WeeklyDatasetBuilder::new(num_weeks).finish()),
    ))
}

/// Runs the whole distributed collection in-process on `fs`,
/// sequentially, with `kill -9` modeled by [`SimFs::exit_process`].
///
/// Protocol-point kills come from `plan` (both [`KillMode`]s stop the
/// worker at its point — an in-process worker cannot spin); op-level
/// kills come from `op_kills`, each striking one grant at one
/// filesystem operation. Everything journaled and written is a
/// deterministic function of `(cfg, plan, op_kills)`.
pub fn run_sim(
    fs: &SimFs,
    cfg: &CoordConfig,
    plan: &KillPlan,
    op_kills: &[OpKill],
    registry: &Registry,
) -> io::Result<DistributedOutcome> {
    let mut shard_reports = Vec::new();
    let mut lost_shards = Vec::new();
    for shard in 0..cfg.shards as u32 {
        let mut attempt = 0u32;
        loop {
            let epoch = u64::from(attempt) + 1;
            registry.emit(
                Event::new(EventKind::WorkerSpawn).shard(shard).attempt(attempt).offset(epoch),
            );
            // A fresh process: no inherited faults, op numbers from 0.
            fs.exit_process();
            if let Some(k) =
                op_kills.iter().find(|k| k.shard == shard && k.attempt == attempt)
            {
                // The kill is a power-cut *fault* (ops start failing at
                // `at_op`) followed by `exit_process` below — which,
                // unlike a real power cut, keeps the page cache. That
                // is exactly `kill -9` mid-syscall.
                let _ = fs.clone().with_fault(k.at_op, Inject::PowerCut);
            }
            let pause_at = plan.for_grant(shard, attempt).map(|s| s.point);
            let wcfg = WorkerConfig {
                universe: cfg.universe.clone(),
                root: cfg.root.clone(),
                shard,
                shards: cfg.shards,
                emitters: cfg.emitters,
                epoch,
                attempt,
                trace: open_grant_trace(registry, cfg.universe.seed, shard, attempt, epoch),
            };
            let result = run_worker(fs, &wcfg, pause_at, PauseStyle::ReturnEarly, registry);
            // The grant is over either way; clear latched faults so
            // coordinator I/O below runs on a healthy filesystem.
            fs.exit_process();
            let died = match result {
                Ok(run) if run.exit == WorkerExit::Completed => {
                    if stores_complete(fs, cfg, shard) {
                        registry.emit(
                            Event::new(EventKind::WorkerHeartbeat)
                                .shard(shard)
                                .attempt(attempt)
                                .offset(run.beats),
                        );
                        shard_reports.push(ShardReport {
                            shard,
                            grants: attempt + 1,
                            lost: false,
                            final_beat: run.beats,
                        });
                        break;
                    }
                    Some("holder exited")
                }
                Ok(_paused) => Some(match plan.for_grant(shard, attempt).map(|s| s.mode) {
                    Some(KillMode::Stall) => "heartbeat stalled",
                    _ => "holder exited",
                }),
                Err(_) => Some("holder exited"),
            };
            if let Some(reason) = died {
                let beat = last_beat(fs, cfg, registry, shard, attempt);
                if resolve_dead(fs, cfg, registry, shard, attempt, beat, reason)? {
                    attempt += 1;
                    continue;
                }
                shard_reports.push(ShardReport {
                    shard,
                    grants: attempt + 1,
                    lost: true,
                    final_beat: beat,
                });
                lost_shards.push(shard);
                break;
            }
        }
    }
    let (daily, weekly) = merge_shards(fs, cfg, &lost_shards)?;
    Ok(DistributedOutcome { daily, weekly, shard_reports, lost_shards })
}

struct Running {
    shard: u32,
    attempt: u32,
    child: Child,
    observed_beat: u64,
    stagnant_polls: u32,
    stall_victim: bool,
}

enum Resolution {
    Done { beats: u64 },
    Dead { beat: u64, reason: &'static str },
}

/// Runs the distributed collection as real OS processes.
///
/// Each grant is `worker_cmd + extra_args + structural args` (root,
/// shard topology, epoch/attempt, and any scheduled pause flags);
/// `extra_args` is where the caller threads universe parameters the
/// worker CLI understands (e.g. `--scale tiny --seed 2015`). Up to
/// `cfg.jobs` children run at once. Scheduled [`KillMode::Kill`]
/// victims freeze at their point and write a marker file, which the
/// poll loop answers with a real `SIGKILL`; [`KillMode::Stall`]
/// victims freeze silently and are killed after `wedge_polls` polls
/// of heartbeat stagnation. Dead grants resolve through the same
/// path as [`run_sim`].
pub fn run_processes(
    cfg: &CoordConfig,
    plan: &KillPlan,
    worker_cmd: &[String],
    extra_args: &[String],
    registry: &Registry,
) -> io::Result<DistributedOutcome> {
    assert!(!worker_cmd.is_empty(), "worker_cmd must name an executable");
    let fs = RealFs;
    fs.create_dir_all(&cfg.root)?;
    let jobs = cfg.jobs.max(1);
    let mut queue: VecDeque<(u32, u32)> = (0..cfg.shards as u32).map(|s| (s, 0)).collect();
    let mut running: Vec<Running> = Vec::new();
    let mut shard_reports: Vec<ShardReport> = Vec::new();
    let mut lost_shards: Vec<u32> = Vec::new();

    let spawn = |shard: u32, attempt: u32, registry: &Registry| -> io::Result<Running> {
        let epoch = u64::from(attempt) + 1;
        registry.emit(
            Event::new(EventKind::WorkerSpawn).shard(shard).attempt(attempt).offset(epoch),
        );
        // Open the grant span here; the worker process continues the
        // trace from `--parent-span` in its own registry and exports
        // it for stitching.
        let trace = open_grant_trace(registry, cfg.universe.seed, shard, attempt, epoch);
        let mut cmd = Command::new(&worker_cmd[0]);
        cmd.args(&worker_cmd[1..])
            .args(extra_args)
            .arg("--root")
            .arg(&cfg.root)
            .args(["--shard", &shard.to_string()])
            .args(["--shards", &cfg.shards.to_string()])
            .args(["--emitters", &cfg.emitters.to_string()])
            .args(["--epoch", &epoch.to_string()])
            .args(["--attempt", &attempt.to_string()])
            .args(["--trace-id", &trace.trace.to_hex()])
            .args(["--parent-span", &trace.span.to_string()])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let mut stall_victim = false;
        if let Some(spec) = plan.for_grant(shard, attempt) {
            cmd.args(["--pause-at", &spec.point.to_string()]);
            if spec.mode == KillMode::Stall {
                cmd.arg("--stall");
                stall_victim = true;
            }
        }
        let child = cmd.spawn()?;
        Ok(Running { shard, attempt, child, observed_beat: 0, stagnant_polls: 0, stall_victim })
    };

    while shard_reports.len() < cfg.shards {
        while running.len() < jobs {
            let Some((shard, attempt)) = queue.pop_front() else { break };
            running.push(spawn(shard, attempt, registry)?);
        }
        std::thread::sleep(cfg.poll_interval);

        let mut resolved: Vec<(usize, Resolution)> = Vec::new();
        for (i, r) in running.iter_mut().enumerate() {
            if let Some(status) = r.child.try_wait()? {
                let beat = last_beat(&fs, cfg, registry, r.shard, r.attempt);
                if status.success() && stores_complete(&fs, cfg, r.shard) {
                    resolved.push((i, Resolution::Done { beats: beat }));
                } else {
                    resolved.push((i, Resolution::Dead { beat, reason: "holder exited" }));
                }
                continue;
            }
            let marker = marker_path(&cfg.root, r.shard, r.attempt);
            if fs.exists(&marker) {
                // The victim announced it reached its pause point:
                // answer with the real thing. SIGKILL, no shutdown.
                r.child.kill()?;
                r.child.wait()?;
                let beat = last_beat(&fs, cfg, registry, r.shard, r.attempt);
                resolved.push((i, Resolution::Dead { beat, reason: "holder exited" }));
                continue;
            }
            let beat = last_beat(&fs, cfg, registry, r.shard, r.attempt);
            if beat > r.observed_beat {
                r.observed_beat = beat;
                r.stagnant_polls = 0;
            } else {
                r.stagnant_polls += 1;
                // Only a scheduled stall victim is wedge-killed on the
                // tight test deadline; an unscheduled worker gets the
                // full (generous) budget so honest slowness is never
                // misread as a wedge.
                let budget = if r.stall_victim { cfg.wedge_polls } else { cfg.wedge_polls * 4 };
                if r.stagnant_polls >= budget {
                    r.child.kill()?;
                    r.child.wait()?;
                    resolved.push((i, Resolution::Dead { beat, reason: "heartbeat stalled" }));
                }
            }
        }
        // Resolve in descending index order so swap_remove stays valid.
        resolved.sort_by_key(|r| std::cmp::Reverse(r.0));
        for (i, resolution) in resolved {
            let r = running.swap_remove(i);
            match resolution {
                Resolution::Done { beats } => {
                    registry.emit(
                        Event::new(EventKind::WorkerHeartbeat)
                            .shard(r.shard)
                            .attempt(r.attempt)
                            .offset(beats),
                    );
                    import_worker_trace(&fs, cfg, registry, r.shard, r.attempt);
                    shard_reports.push(ShardReport {
                        shard: r.shard,
                        grants: r.attempt + 1,
                        lost: false,
                        final_beat: beats,
                    });
                }
                Resolution::Dead { beat, reason } => {
                    if resolve_dead(&fs, cfg, registry, r.shard, r.attempt, beat, reason)? {
                        std::thread::sleep(cfg.retry.backoff(
                            r.shard as usize,
                            0,
                            r.attempt + 1,
                        ));
                        queue.push_back((r.shard, r.attempt + 1));
                    } else {
                        shard_reports.push(ShardReport {
                            shard: r.shard,
                            grants: r.attempt + 1,
                            lost: true,
                            final_beat: beat,
                        });
                        lost_shards.push(r.shard);
                    }
                }
            }
        }
    }
    shard_reports.sort_by_key(|r| r.shard);
    lost_shards.sort_unstable();
    let (daily, weekly) = merge_shards(&fs, cfg, &lost_shards)?;
    Ok(DistributedOutcome { daily, weekly, shard_reports, lost_shards })
}

/// The beat a clean worker of this config ends on (re-exported for
/// harness assertions).
pub fn expected_clean_beats(cfg: &CoordConfig) -> u64 {
    clean_beats(cfg.emitters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{InjectionPoint, KillSpec};

    fn sim_cfg(root: &str, shards: usize) -> CoordConfig {
        CoordConfig::new(UniverseConfig::tiny(0x5EED), PathBuf::from(root), shards, 2)
    }

    use ipactive_obs::SnapshotMode;

    fn counts(registry: &Registry) -> Vec<(EventKind, usize)> {
        let snap = registry.snapshot(SnapshotMode::Deterministic);
        [
            EventKind::WorkerSpawn,
            EventKind::WorkerHeartbeat,
            EventKind::LeaseSteal,
            EventKind::FsckVerdict,
            EventKind::ShardLost,
        ]
        .into_iter()
        .map(|k| (k, snap.events_of(k).count()))
        .collect()
    }

    #[test]
    fn corrupt_lease_is_quarantined_with_provenance_not_silently_zeroed() {
        let fs = SimFs::new();
        let cfg = sim_cfg("/run", 1);
        let reg = Registry::new();
        let sdir = shard_dir(&cfg.root, 0);
        fs.create_dir_all(&sdir).unwrap();
        let lease_path = Lease::path(&sdir, 0);
        let mut f = fs.create(&lease_path).unwrap();
        f.write_all(b"IPLSLE1\x0athis is not a lease").unwrap();
        f.sync_all().unwrap();

        assert_eq!(last_beat(&fs, &cfg, &reg, 0, 0), 0, "healing proceeds from beat 0");
        // The corpse was moved aside, with a sidecar naming the
        // verification failure — evidence preserved, not destroyed.
        assert!(!fs.exists(&lease_path), "corrupt lease must be moved, not left in place");
        let qdir = sdir.join("quarantine");
        assert!(fs.exists(&qdir.join(Lease::file_name(0))));
        assert!(fs.exists(&qdir.join(format!("{}.why", Lease::file_name(0)))));
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.events_of(EventKind::Quarantine).count(), 1);

        // The rename makes the next poll read `Absent`: beat stays 0
        // and the quarantine is not re-tripped on the same corpse.
        assert_eq!(last_beat(&fs, &cfg, &reg, 0, 0), 0);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.events_of(EventKind::Quarantine).count(), 1);
    }

    #[test]
    fn undisturbed_sim_run_completes_every_shard_with_full_coverage() {
        let fs = SimFs::new();
        let cfg = sim_cfg("/run", 2);
        let reg = Registry::new();
        let out = run_sim(&fs, &cfg, &KillPlan::none(), &[], &reg).unwrap();
        assert!(out.lost_shards.is_empty());
        assert!(out.daily.coverage.as_ref().unwrap().is_complete());
        assert!(out.weekly.coverage.as_ref().unwrap().is_complete());
        for r in &out.shard_reports {
            assert_eq!(r.grants, 1);
            assert_eq!(r.final_beat, expected_clean_beats(&cfg));
        }
        assert_eq!(
            counts(&reg),
            vec![
                (EventKind::WorkerSpawn, 2),
                (EventKind::WorkerHeartbeat, 2),
                (EventKind::LeaseSteal, 0),
                (EventKind::FsckVerdict, 0),
                (EventKind::ShardLost, 0),
            ]
        );
    }

    #[test]
    fn killed_grant_is_healed_and_matches_undisturbed_run() {
        let undisturbed = {
            let fs = SimFs::new();
            let cfg = sim_cfg("/run", 2);
            run_sim(&fs, &cfg, &KillPlan::none(), &[], &Registry::new()).unwrap()
        };
        for point in [
            InjectionPoint::Early,
            InjectionPoint::PreCommit,
            InjectionPoint::MidCommit,
            InjectionPoint::PreExit,
        ] {
            let fs = SimFs::new();
            let cfg = sim_cfg("/run", 2);
            let plan = KillPlan::none().with(KillSpec {
                shard: 1,
                attempt: 0,
                point,
                mode: KillMode::Kill,
            });
            let reg = Registry::new();
            let out = run_sim(&fs, &cfg, &plan, &[], &reg).unwrap();
            assert!(out.lost_shards.is_empty(), "{point}");
            assert_eq!(out.daily, undisturbed.daily, "{point}");
            assert_eq!(out.weekly, undisturbed.weekly, "{point}");
            assert!(out.daily.coverage.as_ref().unwrap().is_complete(), "{point}");
            assert_eq!(out.shard_reports[1].grants, 2, "{point}");
            let snap = reg.snapshot(SnapshotMode::Deterministic);
            assert_eq!(snap.events_of(EventKind::LeaseSteal).count(), 1, "{point}");
            assert_eq!(snap.events_of(EventKind::FsckVerdict).count(), 2, "{point}");
        }
    }

    #[test]
    fn permanent_kill_exhausts_retries_into_honest_coverage_loss() {
        let fs = SimFs::new();
        let mut cfg = sim_cfg("/run", 2);
        cfg.retry = RetryPolicy::instant(2);
        let plan = KillPlan::none().permanent(0, InjectionPoint::PreCommit);
        let reg = Registry::new();
        let out = run_sim(&fs, &cfg, &plan, &[], &reg).unwrap();
        assert_eq!(out.lost_shards, vec![0]);
        assert_eq!(out.shard_reports[0].grants, 3, "initial grant + 2 retries");
        assert!(out.shard_reports[0].lost);
        let cov = out.daily.coverage.as_ref().unwrap();
        assert!(!cov.is_complete());
        assert_eq!(cov.degraded_shards(), vec![0], "exactly the lost shard");
        assert_eq!(out.weekly.coverage.as_ref().unwrap().degraded_shards(), vec![0]);
        assert!(cov.overall() > 0.0, "the surviving shard still counts");
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.events_of(EventKind::ShardLost).count(), 1);
        assert_eq!(snap.events_of(EventKind::WorkerSpawn).count(), 4, "3 grants + shard 1");
        assert!(fs.exists(&shard_dir(&cfg.root, 0).join("quarantine/lost.why")));
    }

    #[test]
    fn healed_grants_stitch_one_trace_per_grant_deterministically() {
        let plan = KillPlan::none().with(KillSpec {
            shard: 1,
            attempt: 0,
            point: InjectionPoint::MidCommit,
            mode: KillMode::Kill,
        });
        let fs = SimFs::new();
        let cfg = sim_cfg("/run", 2);
        let reg = Registry::new();
        run_sim(&fs, &cfg, &plan, &[], &reg).unwrap();

        // The killed grant is one stitched tree: grant → worker's
        // partial progress → post-mortem steal, seqs ascending.
        let spans = reg.trace_spans(grant_trace_id(cfg.universe.seed, 1, 0).0).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.first(), Some(&"coord.grant"));
        assert!(names.contains(&"worker.run"));
        assert!(names.contains(&"store.commit.daily"), "{names:?}");
        assert!(!names.contains(&"store.commit.weekly"), "killed mid-commit: {names:?}");
        assert!(names.contains(&"coord.steal"));
        assert_eq!(spans[0].seq, 1);
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq), "seqs ascend: {spans:?}");

        // The healing grant is its own trace and ran to completion.
        let spans1 = reg.trace_spans(grant_trace_id(cfg.universe.seed, 1, 1).0).unwrap();
        assert!(spans1.iter().any(|s| s.name == "store.commit.weekly"));

        // The whole trace plane reproduces byte-for-byte.
        let reg2 = Registry::new();
        run_sim(&SimFs::new(), &sim_cfg("/run", 2), &plan, &[], &reg2).unwrap();
        assert_eq!(reg.traces_json(), reg2.traces_json());
    }

    #[test]
    fn op_level_kill_heals_exactly() {
        let undisturbed = {
            let fs = SimFs::new();
            let cfg = sim_cfg("/run", 2);
            run_sim(&fs, &cfg, &KillPlan::none(), &[], &Registry::new()).unwrap()
        };
        for at_op in [1u64, 5, 20, 60] {
            let fs = SimFs::new();
            let cfg = sim_cfg("/run", 2);
            let kills = [OpKill { shard: 0, attempt: 0, at_op }];
            let out = run_sim(&fs, &cfg, &KillPlan::none(), &kills, &Registry::new()).unwrap();
            assert!(out.lost_shards.is_empty(), "op {at_op}");
            assert_eq!(out.daily, undisturbed.daily, "op {at_op}");
            assert_eq!(out.weekly, undisturbed.weekly, "op {at_op}");
        }
    }
}
