//! Seeded kill schedules: *where* in the worker protocol a process
//! dies, expressed as named injection points so a schedule is readable
//! in CI configs and replays identically run to run.

use std::fmt;

/// A named point in the worker protocol where chaos can strike. The
/// points bracket every state transition that matters to crash
/// safety: before any work, between buffer replays, around each store
/// commit, and after everything durable is done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPoint {
    /// After the worker acknowledged its lease, before any replay —
    /// the "crash-early" cell: nothing committed, nothing lost.
    Early,
    /// After replaying (and heartbeating) buffer `k`. Buffers number
    /// daily first, then weekly, so `k` ranges over
    /// `0..2 * emitters`.
    AfterBuffer(u32),
    /// All buffers replayed, neither store committed.
    PreCommit,
    /// The daily store committed, the weekly store not — the
    /// "crash-mid-commit" cell: the handoff must publish one cadence
    /// atomically and leave the other cleanly absent.
    MidCommit,
    /// Both stores committed; only the clean exit remains. Healing a
    /// kill here must be a no-op resume.
    PreExit,
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectionPoint::Early => write!(f, "early"),
            InjectionPoint::AfterBuffer(k) => write!(f, "after-buffer-{k}"),
            InjectionPoint::PreCommit => write!(f, "pre-commit"),
            InjectionPoint::MidCommit => write!(f, "mid-commit"),
            InjectionPoint::PreExit => write!(f, "pre-exit"),
        }
    }
}

impl InjectionPoint {
    /// Parses the `Display` form back (`early`, `after-buffer-K`,
    /// `pre-commit`, `mid-commit`, `pre-exit`).
    pub fn parse(s: &str) -> Option<InjectionPoint> {
        match s {
            "early" => Some(InjectionPoint::Early),
            "pre-commit" => Some(InjectionPoint::PreCommit),
            "mid-commit" => Some(InjectionPoint::MidCommit),
            "pre-exit" => Some(InjectionPoint::PreExit),
            _ => s
                .strip_prefix("after-buffer-")
                .and_then(|k| k.parse().ok())
                .map(InjectionPoint::AfterBuffer),
        }
    }
}

/// How the scheduled victim dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// The worker halts at the injection point and is `kill -9`ed the
    /// moment the harness observes it there (it announces the pause
    /// with a marker file). Models a sudden process death at an exact
    /// protocol state.
    Kill,
    /// The worker halts at the injection point *silently* — no
    /// marker, no further heartbeats. The coordinator must discover
    /// the wedge through beat stagnation and kill it itself. Models a
    /// livelocked or deadlocked worker.
    Stall,
}

/// One scheduled death: the grant it strikes and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Victim shard.
    pub shard: u32,
    /// Which grant of that shard dies (0 = the first assignment, so
    /// `attempt < n` kills every grant up to the `n`th and exercises
    /// retry exhaustion).
    pub attempt: u32,
    /// Protocol point the victim halts at.
    pub point: InjectionPoint,
    /// Kill choreography.
    pub mode: KillMode,
}

/// A deterministic kill schedule: the process-granularity analogue of
/// the supervisor's `FaultPlan`. An empty plan is an undisturbed run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KillPlan {
    specs: Vec<KillSpec>,
}

impl KillPlan {
    /// The undisturbed schedule.
    pub fn none() -> KillPlan {
        KillPlan::default()
    }

    /// Adds a scheduled death (builder style).
    pub fn with(mut self, spec: KillSpec) -> KillPlan {
        self.specs.push(spec);
        self
    }

    /// A spec that kills `shard` on every grant — retry exhaustion,
    /// the path that must end in honest coverage loss rather than a
    /// dataset silently missing a shard.
    pub fn permanent(self, shard: u32, point: InjectionPoint) -> KillPlan {
        // u32::MAX attempts is unreachable; `for_grant` matches any
        // attempt at or below the spec's, so this spec fires forever.
        self.with(KillSpec { shard, attempt: u32::MAX, point, mode: KillMode::Kill })
    }

    /// The scheduled death for grant `(shard, attempt)`, if any. A
    /// spec matches its exact attempt, except `attempt == u32::MAX`
    /// specs ([`KillPlan::permanent`]) which match every attempt.
    pub fn for_grant(&self, shard: u32, attempt: u32) -> Option<&KillSpec> {
        self.specs
            .iter()
            .find(|s| s.shard == shard && (s.attempt == attempt || s.attempt == u32::MAX))
    }

    /// All scheduled deaths.
    pub fn specs(&self) -> &[KillSpec] {
        &self.specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_points_roundtrip_through_display() {
        let points = [
            InjectionPoint::Early,
            InjectionPoint::AfterBuffer(0),
            InjectionPoint::AfterBuffer(17),
            InjectionPoint::PreCommit,
            InjectionPoint::MidCommit,
            InjectionPoint::PreExit,
        ];
        for p in points {
            assert_eq!(InjectionPoint::parse(&p.to_string()), Some(p), "{p}");
        }
        assert_eq!(InjectionPoint::parse("after-buffer-"), None);
        assert_eq!(InjectionPoint::parse("later"), None);
    }

    #[test]
    fn plans_match_grants_exactly_and_permanently() {
        let plan = KillPlan::none()
            .with(KillSpec {
                shard: 1,
                attempt: 0,
                point: InjectionPoint::MidCommit,
                mode: KillMode::Kill,
            })
            .permanent(2, InjectionPoint::Early);
        assert!(plan.for_grant(1, 0).is_some());
        assert!(plan.for_grant(1, 1).is_none(), "transient spec fires once");
        assert!(plan.for_grant(2, 0).is_some());
        assert!(plan.for_grant(2, 9).is_some(), "permanent spec fires forever");
        assert!(plan.for_grant(0, 0).is_none());
    }
}
