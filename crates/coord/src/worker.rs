//! The shard worker: one process, one shard, one leased store pair.
//!
//! A worker replays its shard's retained edge buffers (via the
//! supervisor's `emit_*_shard_buffers`) into per-day record batches
//! and commits them atomically — daily cadence first, then weekly —
//! into two manifest-journaled [`LogStore`] directories under its
//! shard directory. Progress is heartbeated by republishing the
//! shard's lease with a growing beat counter; the beat is a function
//! of *replay progress* (buffers decoded, stores committed), never of
//! wall-clock time, so a worker killed at a given protocol point
//! always leaves the same beat behind.
//!
//! The worker is resumable by construction: a respawned grant opens
//! the stores (whose `open` sweeps any tmp garbage its predecessor
//! left), skips any cadence whose full window is already committed,
//! and commits the rest. Because `commit_days` publishes a whole
//! batch atomically and a `kill -9` never destroys page-cache state
//! the way a power loss does, healing is exact: the healed store pair
//! is record-identical to an undisturbed run's.

use crate::plan::InjectionPoint;
use ipactive_cdnsim::{
    emit_daily_shard_buffers, emit_weekly_shard_buffers, slot_batches_from_buffers, Universe,
    UniverseConfig,
};
use ipactive_logfmt::{write_lease, Fs, FsFile, Lease, LogStore, Record, StoreError};
use ipactive_obs::{Registry, TraceContext};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Everything a worker needs to run one grant deterministically.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Universe the run replays; equal configs replay identical logs.
    pub universe: UniverseConfig,
    /// Run root; shard directories live directly under it.
    pub root: PathBuf,
    /// The shard this grant covers.
    pub shard: u32,
    /// Total shards in the run (the pipeline's `collectors`).
    pub shards: usize,
    /// Edge emitters per shard (the pipeline's `workers`): each
    /// produces one retained buffer per cadence.
    pub emitters: usize,
    /// Fencing epoch of this grant (from the coordinator's lease).
    pub epoch: u64,
    /// Which grant of this shard this is (0 = first assignment).
    pub attempt: u32,
    /// Trace context handed down with the grant (the coordinator's
    /// `coord.grant` span); [`TraceContext::NONE`] runs untraced.
    pub trace: TraceContext,
}

/// `<root>/shard-SSSS`.
pub fn shard_dir(root: &Path, shard: u32) -> PathBuf {
    root.join(format!("shard-{shard:04}"))
}

/// The shard's daily store directory.
pub fn daily_dir(root: &Path, shard: u32) -> PathBuf {
    shard_dir(root, shard).join("daily")
}

/// The shard's weekly store directory.
pub fn weekly_dir(root: &Path, shard: u32) -> PathBuf {
    shard_dir(root, shard).join("weekly")
}

/// Deterministic logical holder id for a grant — a pure function of
/// `(shard, attempt)`, never a pid, so lease bytes are identical run
/// to run.
pub fn holder_id(shard: u32, attempt: u32) -> u64 {
    (u64::from(shard) << 32) | u64::from(attempt)
}

/// Marker file a [`KillMode::Kill`](crate::KillMode::Kill) victim
/// writes when it reaches its pause point, announcing "I am frozen at
/// the scheduled state — kill me now".
pub fn marker_path(root: &Path, shard: u32, attempt: u32) -> PathBuf {
    shard_dir(root, shard).join(format!("paused-{attempt:02}.marker"))
}

/// Where a traced grant exports its span records — durable before the
/// worker pauses or exits, so the coordinator can stitch the worker's
/// side of the tree into its own store even after a `kill -9`.
pub fn trace_path(root: &Path, shard: u32, attempt: u32) -> PathBuf {
    shard_dir(root, shard).join(format!("trace-{attempt:02}.json"))
}

/// What a paused worker does at its injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauseStyle {
    /// Return from [`run_worker`] with [`WorkerExit::Paused`] — the
    /// in-process (SimFs) harness's kill: the closure simply stops,
    /// leaving page-cache state intact, exactly like `kill -9`.
    ReturnEarly,
    /// Freeze the process: optionally write the pause marker, then
    /// spin until killed. The real-process harness's pause.
    Spin {
        /// Whether to announce the pause with a marker file
        /// (`false` models a silent wedge the coordinator must
        /// discover through beat stagnation).
        write_marker: bool,
    },
}

/// How a worker run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// Both stores committed; the shard is done.
    Completed,
    /// The run stopped at a scheduled injection point
    /// ([`PauseStyle::ReturnEarly`] only — a spinning pause never
    /// returns).
    Paused(InjectionPoint),
}

/// Outcome of one worker run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRun {
    /// How the run ended.
    pub exit: WorkerExit,
    /// Final heartbeat value published.
    pub beats: u64,
}

fn store_io(e: StoreError) -> io::Error {
    io::Error::other(e.to_string())
}

/// Extends accumulated per-slot batches with one buffer's decode.
fn extend_batches(acc: &mut [(u16, Vec<Record>)], buf: &[u8], num_slots: usize) {
    let (batch, _stats) = slot_batches_from_buffers(std::slice::from_ref(&buf.to_vec()), num_slots);
    for ((_, dst), (_, src)) in acc.iter_mut().zip(batch) {
        dst.extend(src);
    }
}

/// Runs one grant of shard `cfg.shard` on the filesystem `fs`.
///
/// `pause_at` is this grant's scheduled injection point (if any);
/// `style` says what pausing means. Everything the worker writes —
/// lease renewals, day files, manifests — is a deterministic function
/// of `cfg` and the pause point.
pub fn run_worker<F: Fs>(
    fs: &F,
    cfg: &WorkerConfig,
    pause_at: Option<InjectionPoint>,
    style: PauseStyle,
    registry: &Registry,
) -> io::Result<WorkerRun> {
    let sdir = shard_dir(&cfg.root, cfg.shard);
    fs.create_dir_all(&sdir)?;

    // The worker's side of the grant's trace. Spans are structural
    // (protocol points and config-derived details only) so the tree
    // is identical however the grant is scheduled or killed.
    let run_ctx = registry.trace_span(
        cfg.trace,
        "worker.run",
        format!("shard {} attempt {}", cfg.shard, cfg.attempt),
    );
    // Persists the grant's span records next to its lease; called at
    // every exit point (pause or completion) so the coordinator can
    // stitch the worker's tree even across a process boundary.
    // Best-effort: tracing must never fail a grant.
    let export_trace = |fs: &F| {
        if let Some(doc) = registry.trace_json(cfg.trace.trace.0) {
            let _ = (|| -> io::Result<()> {
                let mut f = fs.create(&trace_path(&cfg.root, cfg.shard, cfg.attempt))?;
                f.write_all(doc.as_bytes())?;
                f.sync_all()
            })();
        }
    };

    let mut beat = 0u64;
    let publish = |fs: &F, beat: u64| {
        write_lease(
            fs,
            &sdir,
            &Lease {
                shard: cfg.shard,
                epoch: cfg.epoch,
                holder: holder_id(cfg.shard, cfg.attempt),
                attempt: cfg.attempt,
                beat,
            },
        )
    };
    // Pauses here if `point` is this grant's scheduled stop. Returns
    // `Some` to propagate a ReturnEarly exit; a Spin pause never
    // comes back.
    let pause = |fs: &F, point: InjectionPoint, beat: u64| -> io::Result<Option<WorkerRun>> {
        if pause_at != Some(point) {
            return Ok(None);
        }
        export_trace(fs);
        match style {
            PauseStyle::ReturnEarly => Ok(Some(WorkerRun { exit: WorkerExit::Paused(point), beats: beat })),
            PauseStyle::Spin { write_marker } => {
                if write_marker {
                    let mut m = fs.create(&marker_path(&cfg.root, cfg.shard, cfg.attempt))?;
                    m.write_all(point.to_string().as_bytes())?;
                    m.sync_all()?;
                }
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        }
    };

    // Beat 1: alive, lease acknowledged.
    beat += 1;
    publish(fs, beat)?;
    if let Some(run) = pause(fs, InjectionPoint::Early, beat)? {
        return Ok(run);
    }

    // Replay: regenerate the universe and this shard's retained
    // buffers. (Emitting all shards and slicing ours is wasteful but
    // keeps the buffers bit-identical to the in-process pipeline's.)
    registry.trace_span(run_ctx, "worker.replay", format!("emitters {}", cfg.emitters));
    let universe = Universe::generate(cfg.universe.clone());
    let num_days = cfg.universe.daily_days;
    let num_weeks = cfg.universe.weeks;
    let daily_buffers = emit_daily_shard_buffers(&universe, cfg.emitters, cfg.shards)?;
    let weekly_buffers = emit_weekly_shard_buffers(&universe, cfg.emitters, cfg.shards)?;
    let shard_idx = cfg.shard as usize;

    let mut daily_batches: Vec<(u16, Vec<Record>)> =
        (0..num_days).map(|d| (d as u16, Vec::new())).collect();
    for (k, buf) in daily_buffers[shard_idx].iter().enumerate() {
        extend_batches(&mut daily_batches, buf, num_days);
        beat += 1;
        publish(fs, beat)?;
        if let Some(run) = pause(fs, InjectionPoint::AfterBuffer(k as u32), beat)? {
            return Ok(run);
        }
    }
    let mut weekly_batches: Vec<(u16, Vec<Record>)> =
        (0..num_weeks).map(|w| (w as u16, Vec::new())).collect();
    for (k, buf) in weekly_buffers[shard_idx].iter().enumerate() {
        extend_batches(&mut weekly_batches, buf, num_weeks);
        beat += 1;
        publish(fs, beat)?;
        let point = InjectionPoint::AfterBuffer((cfg.emitters + k) as u32);
        if let Some(run) = pause(fs, point, beat)? {
            return Ok(run);
        }
    }

    if let Some(run) = pause(fs, InjectionPoint::PreCommit, beat)? {
        return Ok(run);
    }

    // Commit daily, then weekly. Each commit is atomic for its whole
    // window, so "already fully committed" is the only resume state a
    // predecessor can leave; skipping it makes healing idempotent.
    let mut daily_store =
        LogStore::open_on(fs.clone(), daily_dir(&cfg.root, cfg.shard)).map_err(store_io)?;
    if daily_store.committed_days().len() < num_days {
        daily_store.commit_days(&daily_batches).map_err(store_io)?;
    }
    registry.trace_span(run_ctx, "store.commit.daily", format!("days {num_days}"));
    beat += 1;
    publish(fs, beat)?;
    if let Some(run) = pause(fs, InjectionPoint::MidCommit, beat)? {
        return Ok(run);
    }

    let mut weekly_store =
        LogStore::open_on(fs.clone(), weekly_dir(&cfg.root, cfg.shard)).map_err(store_io)?;
    if weekly_store.committed_days().len() < num_weeks {
        weekly_store.commit_days(&weekly_batches).map_err(store_io)?;
    }
    registry.trace_span(run_ctx, "store.commit.weekly", format!("weeks {num_weeks}"));
    beat += 1;
    publish(fs, beat)?;
    if let Some(run) = pause(fs, InjectionPoint::PreExit, beat)? {
        return Ok(run);
    }

    export_trace(fs);
    Ok(WorkerRun { exit: WorkerExit::Completed, beats: beat })
}

/// The final beat a clean run of this topology publishes: alive + one
/// per buffer (both cadences) + one per store commit.
pub fn clean_beats(emitters: usize) -> u64 {
    1 + 2 * emitters as u64 + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_logfmt::{read_lease, LeaseRead, SimFs};

    fn cfg(fs_root: &str, shard: u32) -> WorkerConfig {
        WorkerConfig {
            universe: UniverseConfig::tiny(0x5EED),
            root: PathBuf::from(fs_root),
            shard,
            shards: 2,
            emitters: 2,
            epoch: 1,
            attempt: 0,
            trace: TraceContext::NONE,
        }
    }

    #[test]
    fn worker_commits_both_cadences_and_beats_deterministically() {
        let fs = SimFs::new();
        let cfg = cfg("/run", 0);
        let run =
            run_worker(&fs, &cfg, None, PauseStyle::ReturnEarly, &Registry::new()).unwrap();
        assert_eq!(run.exit, WorkerExit::Completed);
        assert_eq!(run.beats, clean_beats(2));
        let daily = LogStore::open_on(fs.clone(), daily_dir(&cfg.root, 0)).unwrap();
        assert_eq!(daily.committed_days().len(), cfg.universe.daily_days);
        let weekly = LogStore::open_on(fs.clone(), weekly_dir(&cfg.root, 0)).unwrap();
        assert_eq!(weekly.committed_days().len(), cfg.universe.weeks);
        match read_lease(&fs, &shard_dir(&cfg.root, 0), 0).unwrap() {
            LeaseRead::Held(l) => {
                assert_eq!(l.beat, run.beats);
                assert_eq!(l.epoch, 1);
                assert_eq!(l.holder, holder_id(0, 0));
            }
            other => panic!("expected held lease, got {other:?}"),
        }
    }

    #[test]
    fn paused_worker_stops_with_the_scheduled_beat_and_respawn_heals() {
        let fs = SimFs::new();
        let cfg0 = cfg("/run", 1);
        let run = run_worker(
            &fs,
            &cfg0,
            Some(InjectionPoint::MidCommit),
            PauseStyle::ReturnEarly,
            &Registry::new(),
        )
        .unwrap();
        assert_eq!(run.exit, WorkerExit::Paused(InjectionPoint::MidCommit));
        // Daily committed, weekly not: the mid-commit state.
        let daily = LogStore::open_on(fs.clone(), daily_dir(&cfg0.root, 1)).unwrap();
        assert_eq!(daily.committed_days().len(), cfg0.universe.daily_days);
        let weekly = LogStore::open_on(fs.clone(), weekly_dir(&cfg0.root, 1)).unwrap();
        assert!(weekly.committed_days().is_empty());
        // Successor grant finishes the job.
        let cfg1 = WorkerConfig { epoch: 2, attempt: 1, ..cfg0.clone() };
        let run =
            run_worker(&fs, &cfg1, None, PauseStyle::ReturnEarly, &Registry::new()).unwrap();
        assert_eq!(run.exit, WorkerExit::Completed);
        let weekly = LogStore::open_on(fs.clone(), weekly_dir(&cfg0.root, 1)).unwrap();
        assert_eq!(weekly.committed_days().len(), cfg0.universe.weeks);
    }

    fn read_doc(fs: &SimFs, path: &Path) -> String {
        use std::io::Read as _;
        let mut buf = Vec::new();
        fs.open_read(path).unwrap().read_to_end(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn traced_grant_exports_its_span_tree_before_pausing_and_on_completion() {
        use ipactive_obs::trace::parse_trace_doc;
        use ipactive_obs::TraceId;

        let fs = SimFs::new();
        let reg = Registry::new();
        let tid = TraceId::mint(7, 1);
        // Span 1 plays the coordinator's grant span.
        let granted = reg.trace_span(TraceContext::root(tid), "coord.grant", "shard 0");
        let mut wcfg = cfg("/run", 0);
        wcfg.trace = granted;

        // Killed mid-commit: the exported tree already covers the
        // daily commit but not the weekly one.
        let run = run_worker(
            &fs,
            &wcfg,
            Some(InjectionPoint::MidCommit),
            PauseStyle::ReturnEarly,
            &reg,
        )
        .unwrap();
        assert_eq!(run.exit, WorkerExit::Paused(InjectionPoint::MidCommit));
        let doc = read_doc(&fs, &trace_path(&wcfg.root, 0, 0));
        let (trace, spans) = parse_trace_doc(&doc).unwrap();
        assert_eq!(trace, tid.0);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"worker.run"));
        assert!(names.contains(&"store.commit.daily"));
        assert!(!names.contains(&"store.commit.weekly"), "killed before the weekly commit");

        // The healing grant continues the same trace in a fresh
        // registry (the process boundary), importing nothing: its
        // spans start after the handed-down parent seq.
        let reg2 = Registry::new();
        let wcfg2 = WorkerConfig { epoch: 2, attempt: 1, trace: granted, ..wcfg.clone() };
        let run = run_worker(&fs, &wcfg2, None, PauseStyle::ReturnEarly, &reg2).unwrap();
        assert_eq!(run.exit, WorkerExit::Completed);
        let doc2 = read_doc(&fs, &trace_path(&wcfg.root, 0, 1));
        let (_, spans2) = parse_trace_doc(&doc2).unwrap();
        assert!(spans2.iter().all(|s| s.seq > granted.span), "worker seqs follow the grant span");
        assert!(spans2.iter().any(|s| s.name == "store.commit.weekly"));
    }
}
