//! # ipactive-coord
//!
//! Process-level distributed collection for the "Beyond Counting"
//! reproduction: each collector shard runs as its own OS process,
//! replaying its share of the edge logs into a private
//! manifest-journaled store pair, while a coordinator hands out
//! CRC-protected lease files, watches heartbeats, and heals whatever
//! dead workers leave behind.
//!
//! The crate's organizing bet is that **`kill -9` is a test input,
//! not an accident**. A kill schedule ([`KillPlan`], [`OpKill`]) is
//! part of a run's configuration, and the contract — enforced by the
//! harnesses in this crate and in `ipactive-bench` — is:
//!
//! > For any seeded kill schedule, the merged dataset is either
//! > **bit-identical** to the undisturbed run's, or (when retries are
//! > exhausted) **coverage-honest** about exactly the shards that
//! > were lost — deterministically, run after run.
//!
//! Module map:
//!
//! * [`plan`] — named injection points and seeded kill schedules.
//! * [`worker`] — the shard worker: lease heartbeats keyed to replay
//!   progress, resumable atomic commits, pause-point choreography.
//! * [`coordinator`] — the healing loop: lease grants, wedge
//!   detection, `fsck --repair` on orphaned stores, regrant vs
//!   honest loss, and the coverage-carrying merge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod plan;
pub mod worker;

pub use coordinator::{
    grant_trace_id, run_processes, run_sim, CoordConfig, DistributedOutcome, OpKill, ShardReport,
};
pub use plan::{InjectionPoint, KillMode, KillPlan, KillSpec};
pub use worker::{
    clean_beats, daily_dir, holder_id, marker_path, run_worker, shard_dir, trace_path, weekly_dir,
    PauseStyle, WorkerConfig, WorkerExit, WorkerRun,
};
