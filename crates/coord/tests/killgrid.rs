//! The kill grid: process death at every reachable state, in-process.
//!
//! The process-level harness in `ipactive-bench` kills real workers
//! at a handful of protocol points; this suite uses the simulated
//! filesystem to be exhaustive instead. [`SimFs::exit_process`]
//! models `kill -9` faithfully — the page cache survives, unlike a
//! power cut — so the coordinator can murder a worker at *every named
//! protocol point* and at *every single filesystem operation* of its
//! life, then heal, and the final merged dataset must come out
//! bit-identical to the undisturbed run's. Deterministically: each
//! cell of the grid is a pure function of `(seed, kill schedule)`.

use ipactive_cdnsim::UniverseConfig;
use ipactive_coord::{
    run_sim, run_worker, CoordConfig, InjectionPoint, KillMode, KillPlan, KillSpec, OpKill,
    PauseStyle, WorkerConfig,
};
use ipactive_logfmt::SimFs;
use ipactive_obs::{EventKind, Registry, SnapshotMode};
use std::path::PathBuf;

const SEED: u64 = 0x5EED;

/// A micro universe for the grid: the kill/heal protocol exercises
/// the same code whatever the window size, so the grid shrinks the
/// window (6 days, 4 weeks) to keep hundreds of full
/// coordinator runs affordable in debug builds.
fn micro(seed: u64) -> UniverseConfig {
    let mut c = UniverseConfig::tiny(seed);
    c.daily_days = 6;
    c.weeks = 4;
    c.daily_offset = 7;
    c.mean_blocks_per_as = 2.0;
    c
}

fn cfg(shards: usize) -> CoordConfig {
    CoordConfig::new(micro(SEED), PathBuf::from("/run"), shards, 2)
}

fn undisturbed(shards: usize) -> (ipactive_core::DailyDataset, ipactive_core::WeeklyDataset) {
    let out =
        run_sim(&SimFs::new(), &cfg(shards), &KillPlan::none(), &[], &Registry::new()).unwrap();
    (out.daily, out.weekly)
}

/// Every named protocol point, both kill modes: the victim's shard is
/// regranted and the merged result is bit-identical to the
/// undisturbed run — coverage complete, nothing lost.
#[test]
fn kill_at_every_protocol_point_heals_bit_identically() {
    let (ref_daily, ref_weekly) = undisturbed(2);
    let emitters = cfg(2).emitters as u32;
    let mut points = vec![InjectionPoint::Early];
    points.extend((0..2 * emitters).map(InjectionPoint::AfterBuffer));
    points.extend([InjectionPoint::PreCommit, InjectionPoint::MidCommit, InjectionPoint::PreExit]);

    for (i, &point) in points.iter().enumerate() {
        // Alternate kill modes across the grid; in the sim driver the
        // two differ only in the journaled steal reason, which is
        // asserted below.
        let mode = if i % 2 == 0 { KillMode::Kill } else { KillMode::Stall };
        let plan =
            KillPlan::none().with(KillSpec { shard: 1, attempt: 0, point, mode });
        let fs = SimFs::new();
        let reg = Registry::new();
        let out = run_sim(&fs, &cfg(2), &plan, &[], &reg).unwrap();
        assert!(out.lost_shards.is_empty(), "{point}: shard lost");
        assert_eq!(out.daily, ref_daily, "{point}: daily dataset diverged");
        assert_eq!(out.weekly, ref_weekly, "{point}: weekly dataset diverged");
        assert_eq!(
            out.daily.coverage, ref_daily.coverage,
            "{point}: coverage grid diverged"
        );
        assert_eq!(out.shard_reports[1].grants, 2, "{point}: expected exactly one regrant");
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        let steal: Vec<_> = snap.events_of(EventKind::LeaseSteal).collect();
        assert_eq!(steal.len(), 1, "{point}");
        let want = match mode {
            KillMode::Kill => "holder exited",
            KillMode::Stall => "heartbeat stalled",
        };
        assert_eq!(steal[0].detail, want, "{point}");
    }
}

/// Kill at *every filesystem operation* of the victim grant's life —
/// mid-lease-write, mid-day-file, mid-manifest, mid-rename, between
/// anything — and the healed result is still bit-identical. The op
/// count is discovered from a clean run, so protocol changes widen or
/// shrink the grid automatically.
#[test]
fn kill_at_every_filesystem_operation_heals_bit_identically() {
    let coord_cfg = cfg(1);
    let (ref_daily, ref_weekly) = undisturbed(1);

    // Discover the op count of one clean grant.
    let probe = SimFs::new();
    let wcfg = WorkerConfig {
        universe: coord_cfg.universe.clone(),
        root: coord_cfg.root.clone(),
        shard: 0,
        shards: coord_cfg.shards,
        emitters: coord_cfg.emitters,
        epoch: 1,
        attempt: 0,
        trace: ipactive_obs::TraceContext::NONE,
    };
    run_worker(&probe, &wcfg, None, PauseStyle::ReturnEarly, &Registry::new()).unwrap();
    let total = probe.ops();
    assert!(total >= 20, "worker protocol shrank to {total} ops — a stage went missing?");

    for at_op in 0..total {
        let fs = SimFs::new();
        let kills = [OpKill { shard: 0, attempt: 0, at_op }];
        let reg = Registry::new();
        let out = run_sim(&fs, &coord_cfg, &KillPlan::none(), &kills, &reg).unwrap();
        let ctx = format!("kill at op {at_op}/{total}");
        assert!(out.lost_shards.is_empty(), "{ctx}: shard lost");
        assert_eq!(out.daily, ref_daily, "{ctx}: daily dataset diverged");
        assert_eq!(out.weekly, ref_weekly, "{ctx}: weekly dataset diverged");
        assert_eq!(out.daily.coverage, ref_daily.coverage, "{ctx}: coverage diverged");
        // The victim died before its clean exit, so healing took
        // exactly one regrant.
        assert_eq!(out.shard_reports[0].grants, 2, "{ctx}");
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.events_of(EventKind::FsckVerdict).count(), 2, "{ctx}");
    }
}

/// The same seed and kill schedule journal the same events, beat for
/// beat, across independent reruns — the sim driver is a pure
/// function end to end.
#[test]
fn sim_runs_are_deterministic_across_reruns() {
    let plan = KillPlan::none()
        .with(KillSpec {
            shard: 0,
            attempt: 0,
            point: InjectionPoint::MidCommit,
            mode: KillMode::Kill,
        })
        .permanent(1, InjectionPoint::Early);
    let mut renders = Vec::new();
    let mut journals = Vec::new();
    for _ in 0..2 {
        let fs = SimFs::new();
        let mut c = cfg(2);
        c.retry = ipactive_cdnsim::RetryPolicy::instant(1);
        let reg = Registry::new();
        let out = run_sim(&fs, &c, &plan, &[], &reg).unwrap();
        renders.push(out.render());
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        journals.push(snap.to_json());
    }
    assert_eq!(renders[0], renders[1], "outcome render diverged between reruns");
    assert_eq!(journals[0], journals[1], "journal diverged between reruns");
    assert!(renders[0].contains("LOST"), "permanent kill should lose shard 1");
}
