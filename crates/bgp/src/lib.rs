//! # ipactive-bgp
//!
//! Global routing table substrate: route storage with longest-prefix
//! match, a timeline of BGP changes (announcements, withdrawals,
//! origin changes) with per-day snapshots, and IP→AS resolution with
//! majority vote across days — the machinery the paper uses to ask
//! whether address churn is visible in BGP (Section 4.2, Figure 5(c),
//! Table 2; RouteViews collector AS6539 in the original).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod table;
mod text;
mod timeline;

pub use table::{Asn, Route, RoutingTable};
pub use text::ParseTableError;
pub use timeline::{BgpEvent, BgpEventKind, BgpTimeline, ChangeSet};
