//! Routing table with longest-prefix match.

use core::fmt;
use ipactive_net::{Addr, Prefix, PrefixTrie};

/// An Autonomous System number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// One route: a prefix and its origin AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The originating AS.
    pub origin: Asn,
}

/// A snapshot of the global routing table.
///
/// Lookups use longest-prefix match, as in real forwarding: an address
/// covered by both `10.0.0.0/8` and a more-specific `10.1.0.0/16`
/// resolves to the latter's origin.
///
/// ```
/// use ipactive_bgp::{Asn, RoutingTable};
/// let mut t = RoutingTable::new();
/// t.announce("10.0.0.0/8".parse().unwrap(), Asn(64500));
/// t.announce("10.1.0.0/16".parse().unwrap(), Asn(64501));
/// assert_eq!(t.origin_of("10.1.2.3".parse().unwrap()), Some(Asn(64501)));
/// assert_eq!(t.origin_of("10.2.2.3".parse().unwrap()), Some(Asn(64500)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    trie: PrefixTrie<Asn>,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        RoutingTable { trie: PrefixTrie::new() }
    }

    /// Installs (or replaces) a route; returns the previous origin if
    /// the prefix was already announced.
    pub fn announce(&mut self, prefix: Prefix, origin: Asn) -> Option<Asn> {
        self.trie.insert(prefix, origin)
    }

    /// Removes a route; returns its origin if it existed.
    pub fn withdraw(&mut self, prefix: Prefix) -> Option<Asn> {
        self.trie.remove(prefix)
    }

    /// Longest-prefix-match origin lookup.
    pub fn origin_of(&self, addr: Addr) -> Option<Asn> {
        self.trie.longest_match(addr).map(|(_, &asn)| asn)
    }

    /// The longest matching route for `addr`, with the matched prefix.
    pub fn route_of(&self, addr: Addr) -> Option<Route> {
        self.trie.longest_match(addr).map(|(prefix, &origin)| Route { prefix, origin })
    }

    /// Exact-match origin of a prefix, if announced.
    pub fn origin_of_prefix(&self, prefix: Prefix) -> Option<Asn> {
        self.trie.get(prefix).copied()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// All routes in address order.
    pub fn routes(&self) -> Vec<Route> {
        self.trie
            .iter()
            .into_iter()
            .map(|(prefix, &origin)| Route { prefix, origin })
            .collect()
    }

    /// Number of distinct origin ASes appearing in the table.
    pub fn distinct_origins(&self) -> usize {
        let mut asns: Vec<u32> = self.routes().iter().map(|r| r.origin.0).collect();
        asns.sort_unstable();
        asns.dedup();
        asns.len()
    }

    /// Total unicast address space covered by the table, counting each
    /// address once even when covered by overlapping routes.
    ///
    /// Used for the paper's "42.8% of advertised space is active"
    /// implication (Section 8). Runs over the route list, merging
    /// overlaps via interval sweeping.
    pub fn covered_addresses(&self) -> u64 {
        let mut ranges: Vec<(u64, u64)> = self
            .routes()
            .iter()
            .map(|r| {
                let lo = r.prefix.network().bits() as u64;
                (lo, lo + r.prefix.num_addrs() as u64)
            })
            .collect();
        ranges.sort_unstable();
        let mut total = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for (lo, hi) in ranges {
            match cur {
                Some((clo, chi)) if lo <= chi => cur = Some((clo, chi.max(hi))),
                Some((clo, chi)) => {
                    total += chi - clo;
                    cur = Some((lo, hi));
                }
                None => cur = Some((lo, hi)),
            }
        }
        if let Some((clo, chi)) = cur {
            total += chi - clo;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn lpm_resolution() {
        let mut t = RoutingTable::new();
        t.announce(p("10.0.0.0/8"), Asn(1));
        t.announce(p("10.64.0.0/10"), Asn(2));
        assert_eq!(t.origin_of("10.65.0.1".parse().unwrap()), Some(Asn(2)));
        assert_eq!(t.origin_of("10.0.0.1".parse().unwrap()), Some(Asn(1)));
        assert_eq!(t.origin_of("11.0.0.1".parse().unwrap()), None);
        assert_eq!(t.route_of("10.65.0.1".parse().unwrap()).unwrap().prefix, p("10.64.0.0/10"));
    }

    #[test]
    fn announce_withdraw_lifecycle() {
        let mut t = RoutingTable::new();
        assert_eq!(t.announce(p("192.0.2.0/24"), Asn(7)), None);
        assert_eq!(t.announce(p("192.0.2.0/24"), Asn(8)), Some(Asn(7)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.withdraw(p("192.0.2.0/24")), Some(Asn(8)));
        assert_eq!(t.withdraw(p("192.0.2.0/24")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn distinct_origins_counts_unique() {
        let mut t = RoutingTable::new();
        t.announce(p("10.0.0.0/8"), Asn(1));
        t.announce(p("11.0.0.0/8"), Asn(1));
        t.announce(p("12.0.0.0/8"), Asn(2));
        assert_eq!(t.distinct_origins(), 2);
    }

    #[test]
    fn covered_addresses_merges_overlaps() {
        let mut t = RoutingTable::new();
        t.announce(p("10.0.0.0/8"), Asn(1));
        t.announce(p("10.1.0.0/16"), Asn(2)); // nested: no extra coverage
        t.announce(p("11.0.0.0/8"), Asn(3));
        assert_eq!(t.covered_addresses(), 2 * (1u64 << 24));
        // Adjacent, non-overlapping.
        t.announce(p("12.0.0.0/8"), Asn(4));
        assert_eq!(t.covered_addresses(), 3 * (1u64 << 24));
    }

    #[test]
    fn empty_table_covers_nothing() {
        assert_eq!(RoutingTable::new().covered_addresses(), 0);
    }
}
