//! Text serialization of routing tables — the `prefix origin_asn`
//! dump format used to archive daily snapshots (a simplified
//! RouteViews `show ip bgp`-style export).
//!
//! ```text
//! # snapshot 2015-08-17
//! 20.0.0.0/18 64496
//! 62.0.64.0/19 64497
//! ```

use crate::table::{Asn, RoutingTable};
use core::fmt;
use ipactive_net::Prefix;

/// Error parsing a routing-table dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTableError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTableError {}

impl RoutingTable {
    /// Serializes the table as one `prefix asn` line per route, in
    /// address order — a stable, diff-friendly snapshot format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for route in self.routes() {
            out.push_str(&format!("{} {}\n", route.prefix, route.origin.0));
        }
        out
    }

    /// Parses a dump produced by [`RoutingTable::to_text`] (or by any
    /// tool emitting `prefix asn` lines). Blank lines and `#` comments
    /// are ignored; duplicate prefixes keep the *last* origin, like
    /// replaying announcements.
    pub fn from_text(text: &str) -> Result<RoutingTable, ParseTableError> {
        let mut table = RoutingTable::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| ParseTableError { line: idx + 1, message };
            let mut parts = line.split_whitespace();
            let prefix = parts
                .next()
                .ok_or_else(|| err("missing prefix".into()))?
                .parse::<Prefix>()
                .map_err(|e| err(e.to_string()))?;
            let asn: u32 = parts
                .next()
                .ok_or_else(|| err("missing origin ASN".into()))?
                .trim_start_matches("AS")
                .parse()
                .map_err(|_| err("bad origin ASN".into()))?;
            if parts.next().is_some() {
                return Err(err("trailing fields".into()));
            }
            table.announce(prefix, Asn(asn));
        }
        Ok(table)
    }
}

impl crate::BgpTimeline {
    /// Serializes the timeline's *events* (not the base table) as
    /// `day prefix kind [asn]` lines — an update log that, replayed
    /// over the base table, reconstructs any daily snapshot.
    ///
    /// ```text
    /// 35 20.4.0.0/24 announce 64496
    /// 91 20.4.0.0/24 withdraw
    /// 120 62.0.8.0/24 origin 64999
    /// ```
    pub fn events_to_text(&self) -> String {
        use crate::BgpEventKind;
        let mut out = String::new();
        for e in self.events() {
            match e.kind {
                BgpEventKind::Announce { origin } => {
                    out.push_str(&format!("{} {} announce {}\n", e.day, e.prefix, origin.0));
                }
                BgpEventKind::Withdraw => {
                    out.push_str(&format!("{} {} withdraw\n", e.day, e.prefix));
                }
                BgpEventKind::OriginChange { to } => {
                    out.push_str(&format!("{} {} origin {}\n", e.day, e.prefix, to.0));
                }
            }
        }
        out
    }

    /// Reconstructs a timeline from a base table and an update log as
    /// produced by [`crate::BgpTimeline::events_to_text`]. Events must appear
    /// in day order (as the collector emits them).
    pub fn from_text(base: RoutingTable, text: &str) -> Result<Self, ParseTableError> {
        use crate::{BgpEvent, BgpEventKind};
        let mut tl = crate::BgpTimeline::new(base);
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| ParseTableError { line: idx + 1, message };
            let mut parts = line.split_whitespace();
            let day: u16 = parts
                .next()
                .ok_or_else(|| err("missing day".into()))?
                .parse()
                .map_err(|_| err("bad day".into()))?;
            let prefix: Prefix = parts
                .next()
                .ok_or_else(|| err("missing prefix".into()))?
                .parse()
                .map_err(|e: ipactive_net::ParsePrefixError| err(e.to_string()))?;
            let kind = match parts.next() {
                Some("announce") => {
                    let asn: u32 = parts
                        .next()
                        .ok_or_else(|| err("announce needs an ASN".into()))?
                        .parse()
                        .map_err(|_| err("bad ASN".into()))?;
                    BgpEventKind::Announce { origin: Asn(asn) }
                }
                Some("withdraw") => BgpEventKind::Withdraw,
                Some("origin") => {
                    let asn: u32 = parts
                        .next()
                        .ok_or_else(|| err("origin needs an ASN".into()))?
                        .parse()
                        .map_err(|_| err("bad ASN".into()))?;
                    BgpEventKind::OriginChange { to: Asn(asn) }
                }
                other => return Err(err(format!("unknown event kind {other:?}"))),
            };
            if parts.next().is_some() {
                return Err(err("trailing fields".into()));
            }
            tl.push(BgpEvent { day, prefix, kind });
        }
        Ok(tl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.announce("20.0.0.0/18".parse().unwrap(), Asn(64496));
        t.announce("62.0.64.0/19".parse().unwrap(), Asn(64497));
        t.announce("10.0.0.0/8".parse().unwrap(), Asn(1));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let text = t.to_text();
        let back = RoutingTable::from_text(&text).unwrap();
        assert_eq!(back.len(), t.len());
        for route in t.routes() {
            assert_eq!(back.origin_of_prefix(route.prefix), Some(route.origin));
        }
        // Text is address-ordered and stable.
        assert_eq!(text, back.to_text());
        assert!(text.starts_with("10.0.0.0/8 1\n"));
    }

    #[test]
    fn parses_comments_blanks_and_as_prefixes() {
        let text = "# daily snapshot\n\n20.0.0.0/18 AS64496\n";
        let t = RoutingTable::from_text(text).unwrap();
        assert_eq!(t.origin_of("20.0.1.1".parse().unwrap()), Some(Asn(64496)));
    }

    #[test]
    fn duplicate_prefix_keeps_last() {
        let text = "20.0.0.0/18 1\n20.0.0.0/18 2\n";
        let t = RoutingTable::from_text(text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.origin_of_prefix("20.0.0.0/18".parse().unwrap()), Some(Asn(2)));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, line) in [
            ("garbage", 1),
            ("20.0.0.0/18", 1),
            ("20.0.0.0/18 asnx", 1),
            ("20.0.0.0/40 5", 1),
            ("# ok\n20.0.0.0/18 5 extra", 2),
        ] {
            let err = RoutingTable::from_text(text).unwrap_err();
            assert_eq!(err.line, line, "text {text:?}");
        }
    }

    #[test]
    fn empty_input_is_empty_table() {
        let t = RoutingTable::from_text("").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn timeline_event_log_roundtrip() {
        use crate::{BgpEvent, BgpEventKind, BgpTimeline};
        let mut tl = BgpTimeline::new(sample());
        tl.push(BgpEvent {
            day: 5,
            prefix: "30.0.0.0/20".parse().unwrap(),
            kind: BgpEventKind::Announce { origin: Asn(9) },
        });
        tl.push(BgpEvent {
            day: 40,
            prefix: "20.0.0.0/18".parse().unwrap(),
            kind: BgpEventKind::OriginChange { to: Asn(77) },
        });
        tl.push(BgpEvent {
            day: 100,
            prefix: "30.0.0.0/20".parse().unwrap(),
            kind: BgpEventKind::Withdraw,
        });
        let log = tl.events_to_text();
        let back = BgpTimeline::from_text(sample(), &log).unwrap();
        assert_eq!(back.events(), tl.events());
        // Replay consistency: snapshots agree at every probe day.
        for day in [0u16, 5, 39, 40, 99, 100, 200] {
            let a = tl.table_at(day);
            let b = back.table_at(day);
            for probe in ["20.0.1.1", "30.0.1.1", "62.0.65.1"] {
                let addr = probe.parse().unwrap();
                assert_eq!(a.origin_of(addr), b.origin_of(addr), "day {day} addr {probe}");
            }
        }
    }

    #[test]
    fn timeline_log_rejects_garbage() {
        use crate::BgpTimeline;
        for text in [
            "x 20.0.0.0/18 withdraw",
            "5 garbage withdraw",
            "5 20.0.0.0/18 explode",
            "5 20.0.0.0/18 announce",
            "5 20.0.0.0/18 announce 12 extra",
        ] {
            assert!(
                BgpTimeline::from_text(RoutingTable::new(), text).is_err(),
                "accepted {text:?}"
            );
        }
        // Comments and blanks are fine.
        let tl = BgpTimeline::from_text(RoutingTable::new(), "# log

").unwrap();
        assert!(tl.events().is_empty());
    }
}
