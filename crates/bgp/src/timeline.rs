//! BGP change timeline and per-window change sets.

use crate::table::{Asn, RoutingTable};
use ipactive_net::{Addr, Prefix, PrefixTrie};

/// The kind of a BGP change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgpEventKind {
    /// A previously unannounced prefix is announced by `origin`.
    Announce {
        /// The new origin AS.
        origin: Asn,
    },
    /// The prefix is withdrawn from the table.
    Withdraw,
    /// The prefix stays announced, but its origin moves to `to`.
    OriginChange {
        /// The new origin AS.
        to: Asn,
    },
}

/// One dated BGP change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgpEvent {
    /// Observation day the change took effect (0-based).
    pub day: u16,
    /// The affected prefix.
    pub prefix: Prefix,
    /// What changed.
    pub kind: BgpEventKind,
}

/// A base routing table plus a day-ordered list of changes — the
/// equivalent of a year of daily RouteViews snapshots.
#[derive(Debug, Clone, Default)]
pub struct BgpTimeline {
    base: RoutingTable,
    events: Vec<BgpEvent>,
}

impl BgpTimeline {
    /// Creates a timeline starting from `base` (the day-0 table).
    pub fn new(base: RoutingTable) -> Self {
        BgpTimeline { base, events: Vec::new() }
    }

    /// The day-0 routing table.
    pub fn base(&self) -> &RoutingTable {
        &self.base
    }

    /// All events, day-ordered.
    pub fn events(&self) -> &[BgpEvent] {
        &self.events
    }

    /// Appends an event. Events must be pushed in non-decreasing day
    /// order (enforced), matching how collectors record them.
    pub fn push(&mut self, event: BgpEvent) {
        if let Some(last) = self.events.last() {
            assert!(event.day >= last.day, "events must be pushed in day order");
        }
        self.events.push(event);
    }

    /// The routing table as of the *end* of `day` (all events with
    /// `event.day <= day` applied). Cost: one clone of the base plus a
    /// linear replay — intended for window boundaries, not per-address
    /// queries.
    pub fn table_at(&self, day: u16) -> RoutingTable {
        let mut t = self.base.clone();
        for e in &self.events {
            if e.day > day {
                break;
            }
            match e.kind {
                BgpEventKind::Announce { origin } => {
                    t.announce(e.prefix, origin);
                }
                BgpEventKind::Withdraw => {
                    t.withdraw(e.prefix);
                }
                BgpEventKind::OriginChange { to } => {
                    t.announce(e.prefix, to);
                }
            }
        }
        t
    }

    /// Majority-vote origin of `addr` across days `days.start ..
    /// days.end` (half-open), following the paper's footnote 6: "for
    /// larger window sizes, we determine the origin AS ... using a
    /// majority vote of all contained daily IP-to-AS mappings".
    ///
    /// Implemented by replaying the timeline once and weighting each
    /// origin by the number of days it was in effect.
    pub fn majority_origin(&self, addr: Addr, days: core::ops::Range<u16>) -> Option<Asn> {
        if days.is_empty() {
            return None;
        }
        let mut votes: Vec<(Option<Asn>, u32)> = Vec::new();
        let mut table = self.table_at(days.start);
        let mut current = table.origin_of(addr);
        let mut since = days.start;
        let record = |origin: Option<Asn>, from: u16, to: u16, votes: &mut Vec<(Option<Asn>, u32)>| {
            if to > from {
                if let Some(slot) = votes.iter_mut().find(|(o, _)| *o == origin) {
                    slot.1 += (to - from) as u32;
                } else {
                    votes.push((origin, (to - from) as u32));
                }
            }
        };
        for e in &self.events {
            if e.day <= days.start {
                continue; // already reflected in table_at(days.start)
            }
            if e.day >= days.end {
                break;
            }
            if !e.prefix.contains(addr) {
                continue;
            }
            // Apply this (and only this) event to the evolving table.
            match e.kind {
                BgpEventKind::Announce { origin } => {
                    table.announce(e.prefix, origin);
                }
                BgpEventKind::Withdraw => {
                    table.withdraw(e.prefix);
                }
                BgpEventKind::OriginChange { to } => {
                    table.announce(e.prefix, to);
                }
            }
            let now = table.origin_of(addr);
            if now != current {
                record(current, since, e.day, &mut votes);
                current = now;
                since = e.day;
            }
        }
        record(current, since, days.end, &mut votes);
        // Vote among *routed* origins only: a window that is mostly
        // unrouted but has a clear dominant origin still maps to it.
        votes
            .into_iter()
            .filter_map(|(origin, days)| origin.map(|asn| (asn, days)))
            .max_by_key(|&(_, days)| days)
            .map(|(asn, _)| asn)
    }

    /// Iterates end-of-day routing tables for `days` (half-open),
    /// built incrementally — one base clone plus a single replay,
    /// instead of a replay per day as repeated [`BgpTimeline::table_at`]
    /// calls would cost.
    pub fn daily_tables(
        &self,
        days: core::ops::Range<u16>,
    ) -> impl Iterator<Item = (u16, RoutingTable)> + '_ {
        let mut table = self.table_at(days.start);
        let mut idx = self.events.partition_point(|e| e.day <= days.start);
        let mut first = true;
        days.map(move |day| {
            if !first {
                while idx < self.events.len() && self.events[idx].day <= day {
                    let e = &self.events[idx];
                    match e.kind {
                        BgpEventKind::Announce { origin } => {
                            table.announce(e.prefix, origin);
                        }
                        BgpEventKind::Withdraw => {
                            table.withdraw(e.prefix);
                        }
                        BgpEventKind::OriginChange { to } => {
                            table.announce(e.prefix, to);
                        }
                    }
                    idx += 1;
                }
            }
            first = false;
            (day, table.clone())
        })
    }

    /// The set of prefixes changed in `days` (half-open day range), as
    /// a queryable [`ChangeSet`].
    pub fn changes_in(&self, days: core::ops::Range<u16>) -> ChangeSet {
        let mut trie = PrefixTrie::new();
        let mut prefixes = Vec::new();
        for e in &self.events {
            if e.day < days.start {
                continue;
            }
            if e.day >= days.end {
                break;
            }
            if trie.insert(e.prefix, ()).is_none() {
                prefixes.push(e.prefix);
            }
        }
        ChangeSet { trie, prefixes }
    }
}

/// Set of prefixes touched by BGP changes in some period, supporting
/// "was this address affected?" queries (used to correlate address
/// churn with routing activity, Figure 5(c)).
#[derive(Debug, Clone)]
pub struct ChangeSet {
    trie: PrefixTrie<()>,
    prefixes: Vec<Prefix>,
}

impl ChangeSet {
    /// Whether any changed prefix covers `addr`.
    pub fn affects(&self, addr: Addr) -> bool {
        self.trie.longest_match(addr).is_some()
    }

    /// Number of distinct changed prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether no prefix changed.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// The distinct changed prefixes, in first-seen order.
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }

    /// The maximal changed prefixes: every prefix fully covered by
    /// another is dropped, so the survivors are pairwise disjoint and
    /// cover exactly the addresses [`ChangeSet::affects`] accepts.
    /// Sorted by network address — the shape range-counting correlation
    /// kernels want (sum `count_in` per survivor, no per-address walk).
    pub fn maximal_prefixes(&self) -> Vec<Prefix> {
        let mut sorted = self.prefixes.clone();
        // Network ascending; ties (same base) widest first, so the
        // sweep below sees each area's covering prefix first.
        sorted.sort_by_key(|p| (p.network().bits(), p.len()));
        let mut out: Vec<Prefix> = Vec::with_capacity(sorted.len());
        for p in sorted {
            match out.last() {
                Some(prev) if prev.covers(p) => {}
                _ => out.push(p),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn base() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.announce(p("10.0.0.0/8"), Asn(100));
        t.announce(p("20.0.0.0/8"), Asn(200));
        t
    }

    #[test]
    fn table_at_applies_events_in_order() {
        let mut tl = BgpTimeline::new(base());
        tl.push(BgpEvent { day: 5, prefix: p("30.0.0.0/8"), kind: BgpEventKind::Announce { origin: Asn(300) } });
        tl.push(BgpEvent { day: 9, prefix: p("20.0.0.0/8"), kind: BgpEventKind::Withdraw });
        tl.push(BgpEvent { day: 12, prefix: p("10.0.0.0/8"), kind: BgpEventKind::OriginChange { to: Asn(101) } });

        let t4 = tl.table_at(4);
        assert_eq!(t4.origin_of(a("30.1.1.1")), None);
        assert_eq!(t4.origin_of(a("20.1.1.1")), Some(Asn(200)));

        let t10 = tl.table_at(10);
        assert_eq!(t10.origin_of(a("30.1.1.1")), Some(Asn(300)));
        assert_eq!(t10.origin_of(a("20.1.1.1")), None);
        assert_eq!(t10.origin_of(a("10.1.1.1")), Some(Asn(100)));

        let t20 = tl.table_at(20);
        assert_eq!(t20.origin_of(a("10.1.1.1")), Some(Asn(101)));
    }

    #[test]
    #[should_panic(expected = "day order")]
    fn push_enforces_day_order() {
        let mut tl = BgpTimeline::new(base());
        tl.push(BgpEvent { day: 5, prefix: p("30.0.0.0/8"), kind: BgpEventKind::Withdraw });
        tl.push(BgpEvent { day: 4, prefix: p("30.0.0.0/8"), kind: BgpEventKind::Withdraw });
    }

    #[test]
    fn daily_tables_match_table_at() {
        let mut tl = BgpTimeline::new(base());
        tl.push(BgpEvent { day: 2, prefix: p("30.0.0.0/8"), kind: BgpEventKind::Announce { origin: Asn(300) } });
        tl.push(BgpEvent { day: 4, prefix: p("20.0.0.0/8"), kind: BgpEventKind::Withdraw });
        tl.push(BgpEvent { day: 4, prefix: p("10.0.0.0/8"), kind: BgpEventKind::OriginChange { to: Asn(101) } });
        tl.push(BgpEvent { day: 7, prefix: p("30.0.0.0/8"), kind: BgpEventKind::Withdraw });
        for (day, table) in tl.daily_tables(1..9) {
            let reference = tl.table_at(day);
            for probe in ["10.1.1.1", "20.1.1.1", "30.1.1.1", "99.1.1.1"] {
                let addr: Addr = probe.parse().unwrap();
                assert_eq!(
                    table.origin_of(addr),
                    reference.origin_of(addr),
                    "day {day} addr {probe}"
                );
            }
        }
        assert_eq!(tl.daily_tables(3..3).count(), 0);
    }

    #[test]
    fn majority_origin_weights_by_days() {
        let mut tl = BgpTimeline::new(base());
        // Origin changes on day 9 of a 0..12 window: 9 days AS100, 3 days AS101.
        tl.push(BgpEvent { day: 9, prefix: p("10.0.0.0/8"), kind: BgpEventKind::OriginChange { to: Asn(101) } });
        assert_eq!(tl.majority_origin(a("10.1.1.1"), 0..12), Some(Asn(100)));
        // Window dominated by the new origin.
        assert_eq!(tl.majority_origin(a("10.1.1.1"), 9..30), Some(Asn(101)));
        // Address unaffected by any event.
        assert_eq!(tl.majority_origin(a("20.1.1.1"), 0..12), Some(Asn(200)));
        // Unrouted address.
        assert_eq!(tl.majority_origin(a("99.1.1.1"), 0..12), None);
        // Empty window.
        assert_eq!(tl.majority_origin(a("10.1.1.1"), 5..5), None);
    }

    #[test]
    fn majority_origin_with_withdraw_period() {
        let mut tl = BgpTimeline::new(base());
        tl.push(BgpEvent { day: 2, prefix: p("20.0.0.0/8"), kind: BgpEventKind::Withdraw });
        tl.push(BgpEvent { day: 7, prefix: p("20.0.0.0/8"), kind: BgpEventKind::Announce { origin: Asn(201) } });
        // 0..12: AS200 for 2 days, unrouted 5 days, AS201 for 5 days.
        // The vote is among *routed* origins only, so AS201 wins even
        // though "unrouted" matched as many days.
        assert_eq!(tl.majority_origin(a("20.1.1.1"), 0..12), Some(Asn(201)));
        // A window entirely inside the withdrawn gap maps to nothing.
        assert_eq!(tl.majority_origin(a("20.1.1.1"), 3..6), None);
    }

    #[test]
    fn changes_in_windows() {
        let mut tl = BgpTimeline::new(base());
        tl.push(BgpEvent { day: 3, prefix: p("10.5.0.0/16"), kind: BgpEventKind::OriginChange { to: Asn(105) } });
        tl.push(BgpEvent { day: 8, prefix: p("20.0.0.0/8"), kind: BgpEventKind::Withdraw });

        let w1 = tl.changes_in(0..7);
        assert_eq!(w1.len(), 1);
        assert!(w1.affects(a("10.5.1.1")));
        assert!(!w1.affects(a("10.6.1.1")));
        assert!(!w1.affects(a("20.1.1.1")));

        let w2 = tl.changes_in(7..14);
        assert!(w2.affects(a("20.1.1.1")));
        assert!(!w2.affects(a("10.5.1.1")));

        let all = tl.changes_in(0..14);
        assert_eq!(all.len(), 2);
        assert!(tl.changes_in(20..30).is_empty());
    }

    #[test]
    fn maximal_prefixes_drop_nested_and_sort() {
        let mut tl = BgpTimeline::new(base());
        tl.push(BgpEvent { day: 1, prefix: p("10.5.0.0/16"), kind: BgpEventKind::OriginChange { to: Asn(1) } });
        tl.push(BgpEvent { day: 2, prefix: p("10.5.7.0/24"), kind: BgpEventKind::Withdraw });
        tl.push(BgpEvent { day: 3, prefix: p("10.0.0.0/8"), kind: BgpEventKind::OriginChange { to: Asn(2) } });
        tl.push(BgpEvent { day: 4, prefix: p("9.0.0.0/8"), kind: BgpEventKind::Withdraw });
        let cs = tl.changes_in(0..10);
        assert_eq!(cs.len(), 4);
        assert_eq!(cs.maximal_prefixes(), vec![p("9.0.0.0/8"), p("10.0.0.0/8")]);
        // The survivors accept exactly what affects() accepts.
        for probe in ["9.1.1.1", "10.5.7.7", "10.9.0.1", "11.0.0.1"] {
            let addr = a(probe);
            let covered = cs.maximal_prefixes().iter().any(|q| q.contains(addr));
            assert_eq!(covered, cs.affects(addr), "probe {probe}");
        }
    }

    #[test]
    fn changeset_dedups_prefixes() {
        let mut tl = BgpTimeline::new(base());
        tl.push(BgpEvent { day: 1, prefix: p("20.0.0.0/8"), kind: BgpEventKind::Withdraw });
        tl.push(BgpEvent { day: 2, prefix: p("20.0.0.0/8"), kind: BgpEventKind::Announce { origin: Asn(200) } });
        assert_eq!(tl.changes_in(0..7).len(), 1);
    }
}
