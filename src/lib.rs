//! # ipactive
//!
//! A Rust reproduction of **"Beyond Counting: New Perspectives on the
//! Active IPv4 Address Space"** (Richter, Smaragdakis, Plonka, Berger —
//! ACM IMC 2016): the paper's spatio-temporal address-activity
//! analyses as a reusable library, together with the full measurement
//! substrate they need (a synthetic Internet + CDN observatory, active
//! probing, BGP, reverse DNS, and RIR delegations).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`net`] — IPv4 addresses, prefixes, `/24` blocks, tries, bitsets,
//!   covering-mask event sizing.
//! * [`logfmt`] — the framed binary log wire format.
//! * [`rir`] — delegations, countries, registry exhaustion dates.
//! * [`dns`] — PTR synthesis and static/dynamic keyword tagging.
//! * [`bgp`] — routing tables, timelines, IP→AS resolution.
//! * [`probe`] — ICMP / port / traceroute scan simulators.
//! * [`cdnsim`] — the synthetic Internet and dataset generators.
//! * [`core`] — every analysis from the paper (churn, FD/STU, change
//!   detection, traffic, demographics, …).
//!
//! ## Quickstart
//!
//! ```
//! use ipactive::cdnsim::{Universe, UniverseConfig};
//! use ipactive::core::{churn, matrix::BlockMetrics};
//!
//! // A deterministic miniature Internet.
//! let universe = Universe::generate(UniverseConfig::tiny(7));
//! let daily = universe.build_daily();
//!
//! // Figure 4(a): daily actives and up/down events.
//! let series = churn::daily_series(&daily);
//! assert_eq!(series.len(), daily.num_days);
//!
//! // Figure 6 metrics for the busiest block.
//! let busiest = daily.blocks.iter().max_by_key(|b| b.total_hits).unwrap();
//! let m = BlockMetrics::of(busiest, 0..daily.num_days);
//! assert!(m.fd >= 1 && m.stu > 0.0);
//! ```

/// The most commonly used types, importable in one line:
/// `use ipactive::prelude::*;`.
pub mod prelude {
    pub use ipactive_bgp::{Asn, BgpTimeline, RoutingTable};
    pub use ipactive_cdnsim::{
        parallel_pipeline, parallel_pipeline_weekly, CollectorStats, PipelineReport, Universe,
        UniverseConfig,
    };
    pub use ipactive_core::matrix::BlockMetrics;
    pub use ipactive_core::{DailyDataset, DailyDatasetBuilder, WeeklyDataset};
    pub use ipactive_net::{Addr, AddrSet, Block24, Prefix};
    pub use ipactive_rir::{DelegationDb, Rir};
}

pub use ipactive_bgp as bgp;
pub use ipactive_cdnsim as cdnsim;
pub use ipactive_core as core;
pub use ipactive_dns as dns;
pub use ipactive_logfmt as logfmt;
pub use ipactive_net as net;
pub use ipactive_probe as probe;
pub use ipactive_rir as rir;
