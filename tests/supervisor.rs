//! Differential suite for the supervised self-healing pipeline.
//!
//! One test per `{fault kind} × {collector count}` cell — named
//! `{kind}_collectors_{n}` so CI's fault-matrix job can run each cell
//! as its own filtered invocation. Every cell pins the two halves of
//! the supervision contract, deterministically under fixed seeds:
//!
//! * **Recovery**: a transient fault (clears after one failed attempt)
//!   heals via checkpointed replay — the dataset is bit-identical to
//!   the fault-free run and coverage is complete.
//! * **Degradation**: a permanent fault exhausts its retries but the
//!   run still completes — per-shard completeness drops below 1.0 for
//!   exactly the faulted shard, untouched shards match the clean run
//!   block-for-block, and (for corruption) the undecodable frames are
//!   dead-lettered with correct shard/buffer provenance.

use ipactive::cdnsim::{
    emit_daily_shard_buffers, emit_weekly_shard_buffers, shard_of, supervised_collect_daily,
    supervised_collect_weekly, Fault, FaultKind, FaultPlan, RetryPolicy, Universe,
    UniverseConfig,
};
use std::sync::OnceLock;

const WORKERS: usize = 3;
const PLAN_SEED: u64 = 0xD00D_FEED;

fn universe() -> &'static Universe {
    static FIX: OnceLock<Universe> = OnceLock::new();
    FIX.get_or_init(|| Universe::generate(UniverseConfig::tiny(0x5AFE)))
}

fn direct_daily() -> &'static ipactive::core::DailyDataset {
    static FIX: OnceLock<ipactive::core::DailyDataset> = OnceLock::new();
    FIX.get_or_init(|| universe().build_daily())
}

/// The fault-free supervised baseline for a topology: equals the
/// direct build (dataset equality ignores coverage provenance) and
/// reports complete coverage.
fn baseline(collectors: usize) -> ipactive::core::DailyDataset {
    let u = universe();
    let days = u.config().daily_days;
    let buffers = emit_daily_shard_buffers(u, WORKERS, collectors).unwrap();
    let (clean, report) =
        supervised_collect_daily(&buffers, days, &RetryPolicy::instant(3), &FaultPlan::none())
            .unwrap();
    assert_eq!(
        &clean,
        direct_daily(),
        "fault-free supervised run diverged from direct build"
    );
    assert!(report.coverage.is_complete());
    assert_eq!(report.retries(), 0);
    assert!(report.quarantine.is_empty());
    clean
}

/// Transient fault on (shard 0, buffer 0): one failed attempt, then
/// the replay of the retained buffer succeeds. Output must be
/// bit-identical to the fault-free run, coverage complete, and the
/// whole thing deterministic run-to-run.
fn transient_recovers(kind: FaultKind, collectors: usize) {
    let u = universe();
    let days = u.config().daily_days;
    let buffers = emit_daily_shard_buffers(u, WORKERS, collectors).unwrap();
    let policy = RetryPolicy::instant(3);
    let clean = baseline(collectors);
    let plan = FaultPlan::new(PLAN_SEED).with_fault(Fault {
        shard: 0,
        buffer: 0,
        kind,
        persist_attempts: 2,
    });
    let (healed, report) = supervised_collect_daily(&buffers, days, &policy, &plan).unwrap();
    assert_eq!(healed, clean, "{kind:?}: recovered run must be bit-identical to fault-free");
    assert!(report.coverage.is_complete(), "{kind:?}: recovered run must report full coverage");
    assert!(report.fully_recovered());
    assert!(report.outcomes[0].buffers[0].recovered(), "{kind:?}: buffer 0 should retry-succeed");
    assert_eq!(report.outcomes[0].buffers[0].attempts, 3);
    assert_eq!(report.outcomes[0].buffers[0].fault, Some(kind));

    // Determinism: same seeds, same everything.
    let (again, report2) = supervised_collect_daily(&buffers, days, &policy, &plan).unwrap();
    assert_eq!(again, healed);
    assert_eq!(report2.outcomes, report.outcomes);
    assert_eq!(report2.quarantine, report.quarantine);
}

/// Permanent fault on (shard 0, buffer 0): retries exhaust, the run
/// still completes, and the damage is precisely accounted.
fn permanent_degrades(kind: FaultKind, collectors: usize) {
    let u = universe();
    let days = u.config().daily_days;
    let buffers = emit_daily_shard_buffers(u, WORKERS, collectors).unwrap();
    let policy = RetryPolicy::instant(2);
    let clean = baseline(collectors);
    let plan = FaultPlan::new(PLAN_SEED).with_fault(Fault {
        shard: 0,
        buffer: 0,
        kind,
        persist_attempts: Fault::PERMANENT,
    });
    let (degraded, report) = supervised_collect_daily(&buffers, days, &policy, &plan).unwrap();

    // Completeness < 1.0 for exactly the faulted shard.
    assert_eq!(report.coverage.degraded_shards(), vec![0], "{kind:?}");
    assert!(report.coverage.shard(0) < 1.0, "{kind:?}: shard 0 must report loss");
    for shard in 1..collectors {
        assert_eq!(report.coverage.shard(shard), 1.0, "{kind:?}: shard {shard} was untouched");
    }
    assert!(!report.fully_recovered());
    let victim = &report.outcomes[0].buffers[0];
    assert!(victim.completeness < 1.0);
    assert_eq!(victim.attempts, policy.max_retries + 1, "{kind:?}: all attempts consumed");

    // The dataset carries the same coverage grid the report does.
    let carried = degraded.coverage.clone().expect("supervised dataset carries coverage");
    assert_eq!(carried, report.coverage);

    // Blocks of untouched shards match the clean run exactly.
    for rec in &clean.blocks {
        if shard_of(rec.block, collectors) != 0 {
            assert_eq!(
                degraded.block(rec.block),
                Some(rec),
                "{kind:?}: block {} outside the faulted shard diverged",
                rec.block
            );
        }
    }

    // Quarantine provenance: every dead letter names the faulted
    // delivery; corruption must actually produce some.
    for letter in &report.quarantine {
        assert_eq!((letter.shard, letter.buffer), (0, 0), "{kind:?}: bad provenance");
        assert!(
            letter.frame.offset <= buffers[0][0].len() as u64,
            "{kind:?}: offset beyond the delivered stream"
        );
    }
    if kind == FaultKind::Corrupt {
        assert!(
            !report.quarantine.is_empty(),
            "corrupt salvage must dead-letter the damaged frames"
        );
    }

    // Determinism: the degraded run replays bit-identically too.
    let (again, report2) = supervised_collect_daily(&buffers, days, &policy, &plan).unwrap();
    assert_eq!(again, degraded);
    assert_eq!(report2.coverage, report.coverage);
    assert_eq!(report2.outcomes, report.outcomes);
    assert_eq!(report2.quarantine, report.quarantine);
}

macro_rules! fault_matrix {
    ($($name:ident => ($kind:expr, $collectors:expr);)*) => {
        $(
            #[test]
            fn $name() {
                transient_recovers($kind, $collectors);
                permanent_degrades($kind, $collectors);
            }
        )*
    };
}

fault_matrix! {
    crash_collectors_1 => (FaultKind::Crash, 1);
    crash_collectors_2 => (FaultKind::Crash, 2);
    crash_collectors_4 => (FaultKind::Crash, 4);
    corrupt_collectors_1 => (FaultKind::Corrupt, 1);
    corrupt_collectors_2 => (FaultKind::Corrupt, 2);
    corrupt_collectors_4 => (FaultKind::Corrupt, 4);
    drop_collectors_1 => (FaultKind::Drop, 1);
    drop_collectors_2 => (FaultKind::Drop, 2);
    drop_collectors_4 => (FaultKind::Drop, 4);
    stall_collectors_1 => (FaultKind::Stall, 1);
    stall_collectors_2 => (FaultKind::Stall, 2);
    stall_collectors_4 => (FaultKind::Stall, 4);
}

#[test]
fn real_sync_corruption_is_never_reported_complete() {
    // A clobbered sync byte makes the tolerant reader silently swallow
    // frames during its resync scan: `skipped` may stay 0 and only
    // `resyncs` moves. The checkpoint predicate must treat that as a
    // dirty decode — the run degrades with coverage < 1.0 instead of
    // merging the lossy attempt as clean (which would break the
    // "coverage 1.0 => bit-identical data" invariant).
    let u = universe();
    let days = u.config().daily_days;
    let clean = baseline(2);
    let mut buffers = emit_daily_shard_buffers(u, WORKERS, 2).unwrap();
    buffers[0][0][0] = 0x00; // real corruption: frame 0's sync byte, shard 0
    let (degraded, report) =
        supervised_collect_daily(&buffers, days, &RetryPolicy::instant(2), &FaultPlan::none())
            .unwrap();
    assert!(
        !report.coverage.is_complete(),
        "desync-swallowed frames must not report full coverage"
    );
    assert_eq!(report.coverage.degraded_shards(), vec![0]);
    assert_eq!(report.coverage.shard(1), 1.0);
    let victim = &report.outcomes[0].buffers[0];
    assert!(victim.completeness < 1.0);
    assert_eq!(victim.attempts, 3, "the buffer itself is damaged, so every replay fails");
    // The salvage pass dead-letters the garbage run with provenance.
    assert!(report.quarantine.iter().any(|l| (l.shard, l.buffer) == (0, 0)));
    // Untouched shard-1 blocks still match the clean run exactly.
    for rec in &clean.blocks {
        if shard_of(rec.block, 2) != 0 {
            assert_eq!(degraded.block(rec.block), Some(rec));
        }
    }
}

#[test]
fn weekly_supervised_transient_corrupt_recovers() {
    let u = universe();
    let weeks = u.config().weeks;
    let buffers = emit_weekly_shard_buffers(u, WORKERS, 2).unwrap();
    let policy = RetryPolicy::instant(3);
    let (clean, clean_report) =
        supervised_collect_weekly(&buffers, weeks, &policy, &FaultPlan::none()).unwrap();
    assert_eq!(clean, u.build_weekly());
    assert!(clean_report.coverage.is_complete());
    let plan = FaultPlan::new(PLAN_SEED).with_fault(Fault {
        shard: 1,
        buffer: 1,
        kind: FaultKind::Corrupt,
        persist_attempts: 1,
    });
    let (healed, report) = supervised_collect_weekly(&buffers, weeks, &policy, &plan).unwrap();
    assert_eq!(healed, clean);
    assert!(report.coverage.is_complete());
    assert!(report.outcomes[1].buffers[1].recovered());
}

#[test]
fn mixed_fault_storm_is_deterministic_and_accounted() {
    // A scattered plan mixing all four kinds over every delivery:
    // whatever heals must heal identically twice, and whatever is
    // lost must be visible in coverage.
    let u = universe();
    let days = u.config().daily_days;
    let collectors = 4;
    let buffers = emit_daily_shard_buffers(u, WORKERS, collectors).unwrap();
    let policy = RetryPolicy::instant(2);
    let buffers_per_shard = buffers.iter().map(Vec::len).max().unwrap();
    let plan = FaultPlan::scatter(PLAN_SEED, collectors, buffers_per_shard, 12);
    let (a, report_a) = supervised_collect_daily(&buffers, days, &policy, &plan).unwrap();
    let (b, report_b) = supervised_collect_daily(&buffers, days, &policy, &plan).unwrap();
    assert_eq!(a, b);
    assert_eq!(report_a.coverage, report_b.coverage);
    assert_eq!(report_a.outcomes, report_b.outcomes);
    assert_eq!(report_a.quarantine, report_b.quarantine);
    // Every buffer that did not fully succeed must pull its shard's
    // coverage below 1.0 — no silent loss.
    for outcome in &report_a.outcomes {
        let lost = outcome.buffers.iter().any(|b| !b.succeeded());
        assert_eq!(
            report_a.coverage.shard(outcome.shard) < 1.0,
            lost,
            "shard {} coverage must reflect its buffer outcomes",
            outcome.shard
        );
    }
}
