//! Reproducibility guarantees: identical seeds yield byte-identical
//! datasets and reports; different seeds yield different worlds.

use ipactive::cdnsim::{
    collect_daily, collect_daily_sharded, emit_daily_logs, emit_daily_shards, parallel_pipeline,
    parallel_pipeline_weekly, Universe, UniverseConfig,
};
use ipactive::core::churn;

#[test]
fn same_seed_same_world() {
    let a = Universe::generate(UniverseConfig::tiny(77));
    let b = Universe::generate(UniverseConfig::tiny(77));
    let da = a.build_daily();
    let db = b.build_daily();
    assert_eq!(da.blocks.len(), db.blocks.len());
    for (x, y) in da.blocks.iter().zip(db.blocks.iter()) {
        assert_eq!(x.block, y.block);
        assert_eq!(x.rows, y.rows);
        assert_eq!(x.total_hits, y.total_hits);
        assert_eq!(x.ua_samples, y.ua_samples);
        assert_eq!(x.ua_unique, y.ua_unique);
        assert_eq!(x.ip_traffic, y.ip_traffic);
    }
    let wa = a.build_weekly();
    let wb = b.build_weekly();
    assert_eq!(wa.blocks, wb.blocks);
    assert_eq!(wa.week_hits, wb.week_hits);
}

#[test]
fn different_seed_different_world() {
    let a = Universe::generate(UniverseConfig::tiny(1));
    let b = Universe::generate(UniverseConfig::tiny(2));
    let da = a.build_daily();
    let db = b.build_daily();
    let fingerprint = |d: &ipactive::core::DailyDataset| {
        (
            d.blocks.len(),
            d.total_active(),
            d.blocks.iter().map(|b| b.total_hits).sum::<u64>(),
        )
    };
    assert_ne!(fingerprint(&da), fingerprint(&db));
}

#[test]
fn wire_pipeline_is_bit_stable() {
    let u = Universe::generate(UniverseConfig::tiny(5));
    let mut buf1 = Vec::new();
    let mut buf2 = Vec::new();
    emit_daily_logs(&u, &mut buf1).unwrap();
    emit_daily_logs(&u, &mut buf2).unwrap();
    assert_eq!(buf1, buf2, "serialized log streams must be byte-identical");
}

#[test]
fn pipeline_and_direct_build_agree_regardless_of_workers() {
    let u = Universe::generate(UniverseConfig::tiny(6));
    let direct = u.build_daily();
    for workers in [1usize, 2, 5] {
        let (ds, _) = parallel_pipeline(&u, workers, 2);
        assert_eq!(ds, direct, "workers={workers}");
    }
}

#[test]
fn sharded_pipeline_is_topology_invariant() {
    // The merged dataset must not depend on how many threads ran on
    // either side of the wire: every (workers, collectors) point
    // yields the *identical* value.
    let u = Universe::generate(UniverseConfig::tiny(6));
    let (reference, _) = parallel_pipeline(&u, 1, 1);
    for (workers, collectors) in [(1, 3), (2, 2), (3, 1), (5, 4)] {
        let (ds, report) = parallel_pipeline(&u, workers, collectors);
        assert_eq!(ds, reference, "workers={workers} collectors={collectors}");
        assert_eq!(report.collectors(), collectors);
        assert_eq!(report.totals.records_written, report.totals.records_read);
    }
    let (weekly_ref, _) = parallel_pipeline_weekly(&u, 1, 1);
    for (workers, collectors) in [(2, 3), (4, 2)] {
        let (ws, _) = parallel_pipeline_weekly(&u, workers, collectors);
        assert_eq!(ws, weekly_ref, "weekly workers={workers} collectors={collectors}");
    }
}

#[test]
fn sharded_merge_is_order_insensitive() {
    // Feeding the same shard buffers to the collector in any order —
    // forward, reversed, rotated — merges to the identical dataset.
    let u = Universe::generate(UniverseConfig::tiny(6));
    let days = u.config().daily_days;
    let shards = emit_daily_shards(&u, 4).unwrap();
    let (forward, _) = collect_daily_sharded(&shards, days);

    let mut reversed = shards.clone();
    reversed.reverse();
    let (rev, _) = collect_daily_sharded(&reversed, days);
    assert_eq!(rev, forward);

    let mut rotated = shards.clone();
    rotated.rotate_left(2);
    let (rot, _) = collect_daily_sharded(&rotated, days);
    assert_eq!(rot, forward);
}

#[test]
fn same_seed_same_pipeline_report_counters() {
    // Reruns reproduce not just the dataset but the deterministic
    // counters of the report (times naturally differ).
    let u = Universe::generate(UniverseConfig::tiny(13));
    let (d1, r1) = parallel_pipeline(&u, 3, 2);
    let (d2, r2) = parallel_pipeline(&u, 3, 2);
    assert_eq!(d1, d2);
    assert_eq!(r1.totals, r2.totals);
    for (a, b) in r1.per_collector.iter().zip(r2.per_collector.iter()) {
        assert_eq!(a.records_read, b.records_read);
        assert_eq!(a.frames_skipped, b.frames_skipped);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.buffers, b.buffers);
    }
}

#[test]
fn analyses_are_stable_across_reruns() {
    let u = Universe::generate(UniverseConfig::tiny(9));
    let d1 = u.build_daily();
    let d2 = u.build_daily();
    let s1 = churn::daily_series(&d1);
    let s2 = churn::daily_series(&d2);
    assert_eq!(s1, s2);
}

#[test]
fn collect_from_serialized_stream_matches_direct() {
    let u = Universe::generate(UniverseConfig::tiny(8));
    let direct = u.build_daily();
    let mut buf = Vec::new();
    emit_daily_logs(&u, &mut buf).unwrap();
    let (collected, stats) = collect_daily(&buf[..], u.config().daily_days).unwrap();
    assert_eq!(stats.frames_skipped, 0);
    assert_eq!(collected.total_active(), direct.total_active());
    assert_eq!(collected.blocks.len(), direct.blocks.len());
}
