//! Full-scale shape validation as an (ignored-by-default) integration
//! test: run explicitly with
//!
//! ```sh
//! cargo test --release --test full_scale -- --ignored
//! ```
//!
//! It generates the paper-geometry universe (~2.4 K blocks, 112 days,
//! 52 weeks) and asserts every executable shape claim — the same gate
//! `repro validate` provides as a binary, wired into the test harness
//! for release pipelines with time to spare.

use ipactive_bench::{CheckOutcome, Repro, Scale};

#[test]
#[ignore = "builds the full-scale universe; run with --ignored in release mode"]
fn full_scale_shape_validation() {
    let repro = Repro::new(2015, Scale::Full);
    let checks = repro.validate();
    assert!(checks.len() >= 20, "only {} checks ran", checks.len());
    let failures: Vec<_> = checks
        .iter()
        .filter(|c| matches!(c.outcome, CheckOutcome::Fail(_)))
        .collect();
    assert!(failures.is_empty(), "failed shape checks: {failures:#?}");
    let skips = checks
        .iter()
        .filter(|c| matches!(c.outcome, CheckOutcome::Skip(_)))
        .count();
    assert_eq!(skips, 0, "full scale must evaluate every check");
}
