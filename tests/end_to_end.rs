//! End-to-end integration: generate a universe, run the paper's
//! analyses across crates, and assert the *shape* invariants the paper
//! reports — who wins, roughly by what factor, where the knees are.

use ipactive::bgp::RoutingTable;
use ipactive::cdnsim::{parallel_pipeline, parallel_pipeline_weekly, Universe, UniverseConfig};
use ipactive::core::{DailyDataset, WeeklyDataset};
use ipactive::core::{blocks, change, churn, demographics, events, hosts, traffic, visibility};
use ipactive::dns::AssignmentHint;
use ipactive::probe::{PortScanner, ScanCampaign, TracerouteCampaign};

fn universe() -> Universe {
    Universe::generate(UniverseConfig::small(0xE2E))
}

#[test]
fn daily_churn_has_paper_shape() {
    let u = universe();
    let daily = u.build_daily();
    let series = churn::daily_series(&daily);
    let avg_active: f64 =
        series.iter().map(|d| d.active as f64).sum::<f64>() / series.len() as f64;
    let avg_up: f64 =
        series.iter().skip(1).map(|d| d.up as f64).sum::<f64>() / (series.len() - 1) as f64;
    let churn_pct = 100.0 * avg_up / avg_active;
    // Paper: ~8% daily. Allow a generous band but reject degenerate
    // worlds (0% = frozen; >30% = noise).
    assert!((3.0..25.0).contains(&churn_pct), "daily churn {churn_pct:.1}%");

    // Aggregation does not drive churn to zero (the paper's headline
    // of Figure 4(b)): the largest window still shows movement.
    let sweep = churn::window_sweep(&daily, &[1, 7, 14]);
    let w14 = sweep.iter().find(|w| w.window_days == 14).unwrap();
    assert!(w14.up.median > 1.0, "14d churn collapsed: {:?}", w14.up);
}

#[test]
fn year_long_drift_accumulates() {
    let u = universe();
    let weekly = u.build_weekly();
    let drift = churn::year_drift(&weekly);
    let first = drift.first().unwrap();
    let last = drift.last().unwrap();
    // Drift grows over the year and reaches double digits (paper: 25%).
    assert!(last.appear_frac > first.appear_frac);
    assert!(last.appear_frac > 0.10, "appear drift {:.2}", last.appear_frac);
    assert!(last.disappear_frac > 0.10, "disappear drift {:.2}", last.disappear_frac);
}

#[test]
fn long_term_churn_is_bulky_and_bgp_invisible() {
    let u = universe();
    let weekly = u.build_weekly();
    let weeks = weekly.num_weeks;
    let lt = churn::long_term(&weekly, 0..4, weeks - 4..weeks, u.bgp(), 7);
    assert!(!lt.appear.is_empty() && !lt.disappear.is_empty());
    // Table 2's key finding: the vast majority of long-term churn has
    // no BGP correlate.
    assert!(lt.appear_bgp.no_change > 0.7, "appear no-change {:?}", lt.appear_bgp);
    assert!(lt.disappear_bgp.no_change > 0.7, "disappear no-change {:?}", lt.disappear_bgp);
}

#[test]
fn event_sizes_get_bulkier_with_window() {
    let u = universe();
    let daily = u.build_daily();
    let h1 = events::event_sizes(&daily, 1, events::EventDirection::Up);
    let h14 = events::event_sizes(&daily, 14, events::EventDirection::Up);
    // Daily events are dominated by single addresses…
    assert!(h1.fraction_between(29, 32) > 0.5, "1d: {:?}", h1.figure5b_buckets());
    // …and a larger share of long-window events covers whole ranges.
    assert!(
        h14.fraction_between(0, 28) > h1.fraction_between(0, 28),
        "bulkiness must grow: 1d {:?} vs 14d {:?}",
        h1.figure5b_buckets(),
        h14.figure5b_buckets()
    );
}

#[test]
fn bgp_correlation_is_tiny_but_ordered() {
    let u = universe();
    let daily = u.build_daily();
    let offset = u.config().daily_offset as u16;
    let c = events::bgp_correlation(&daily, 7, u.bgp(), offset);
    // Figure 5(c): small percentages overall.
    assert!(c.up_pct < 20.0 && c.down_pct < 20.0 && c.steady_pct < 10.0, "{c:?}");
}

#[test]
fn static_blocks_fill_less_than_dynamic() {
    let u = universe();
    let daily = u.build_daily();
    let split = blocks::fd_by_assignment(&daily, u.ptr_table(), 16);
    assert!(split.n_static > 0 && split.n_dynamic > 0, "tagging found nothing");
    // Figure 8(b): static space is sparse, dynamic pools cycle full.
    let static_med = split.static_blocks.quantile(0.5);
    let dynamic_med = split.dynamic_blocks.quantile(0.5);
    assert!(
        static_med < 128.0 && dynamic_med > static_med,
        "static median {static_med}, dynamic median {dynamic_med}"
    );
    assert!(
        split.dynamic_blocks.fraction_le(250.0) < 0.8,
        "most dynamic pools should exceed FD 250"
    );
}

#[test]
fn change_detection_matches_restructure_rate() {
    let mut cfg = UniverseConfig::small(0x51);
    cfg.restructure_rate = 0.25;
    let u = Universe::generate(cfg);
    let daily = u.build_daily();
    let part = change::detect(&daily, daily.num_days / 4, change::DEFAULT_THRESHOLD);
    let frac = part.major_fraction();
    // Not every restructure crosses the ±0.25 STU threshold (switching
    // between two low-intensity policies moves STU little, and a
    // mid-month flip splits its delta across two months), and some
    // in-situ blocks do cross it. The detected rate must be nonzero
    // and well below the injected 25% + noise ceiling.
    assert!((0.02..0.60).contains(&frac), "major-change fraction {frac:.2}");
    // And with no injected restructures the rate must drop.
    let mut calm_cfg = UniverseConfig::small(0x51);
    calm_cfg.restructure_rate = 0.0;
    let calm = Universe::generate(calm_cfg);
    let calm_daily = calm.build_daily();
    let calm_part =
        change::detect(&calm_daily, calm_daily.num_days / 4, change::DEFAULT_THRESHOLD);
    assert!(
        calm_part.major_fraction() < frac,
        "calm {:.2} !< restructured {frac:.2}",
        calm_part.major_fraction()
    );
}

#[test]
fn traffic_concentrates_on_always_on_addresses() {
    let u = universe();
    let daily = u.build_daily();
    let shares = traffic::cumulative_shares(&daily);
    let ip_frac = shares.always_on_ip_fraction();
    let traffic_frac = shares.always_on_traffic_fraction();
    // Figure 9(b): always-on addresses out-earn their headcount by a
    // wide factor.
    assert!(traffic_frac > 2.0 * ip_frac, "ips {ip_frac:.2} traffic {traffic_frac:.2}");
}

#[test]
fn ua_scatter_has_gateway_and_bot_corners() {
    let u = universe();
    let daily = u.build_daily();
    let points = hosts::ua_scatter(&daily);
    assert!(!points.is_empty());
    let t = hosts::UaRegionThresholds::default();
    let mut regions = std::collections::HashMap::new();
    for p in &points {
        *regions.entry(hosts::classify(p, &t)).or_insert(0usize) += 1;
    }
    assert!(regions.get(&hosts::UaRegion::Gateway).copied().unwrap_or(0) > 0, "no gateways");
    assert!(regions.get(&hosts::UaRegion::Bot).copied().unwrap_or(0) > 0, "no bots");
    assert!(regions.get(&hosts::UaRegion::Bulk).copied().unwrap_or(0) > 0, "no bulk");
    // Traffic and host diversity correlate (positively) overall.
    let r = hosts::log_correlation(&points).unwrap();
    assert!(r > 0.2, "log-log correlation {r:.2}");
}

#[test]
fn demographics_are_bimodal_in_stu() {
    let u = universe();
    let daily = u.build_daily();
    let feats = demographics::features(&daily);
    let cube = demographics::cube(&feats);
    let marg = cube.stu_marginal();
    let total: u64 = marg.iter().sum();
    // Mass in both the lowest and highest STU third (Figure 11's
    // "strong division").
    let low: u64 = marg[..3].iter().sum();
    let high: u64 = marg[7..].iter().sum();
    assert!(low * 10 > total, "low-STU mass too small: {marg:?}");
    assert!(high * 10 > total, "high-STU mass too small: {marg:?}");
}

#[test]
fn cdn_sees_more_addresses_than_probing() {
    let u = universe();
    let daily = u.build_daily();
    let cdn = daily.all_active();
    let icmp = ScanCampaign::new(9, 8).run_union(&u);
    let split = visibility::split_addrs(&cdn, &icmp);
    // Figure 2(a): a large CDN-only share at address granularity…
    assert!(split.cdn_only_fraction() > 0.25, "cdn-only {:.2}", split.cdn_only_fraction());
    // …that shrinks when aggregating to /24s.
    let coarse = visibility::split_blocks(&cdn, &icmp);
    assert!(coarse.cdn_only_fraction() < split.cdn_only_fraction());
}

#[test]
fn icmp_only_space_is_substantially_infrastructure() {
    let u = universe();
    let daily = u.build_daily();
    let cdn = daily.all_active();
    let icmp = ScanCampaign::new(9, 8).run_union(&u);
    let icmp_only = icmp.difference(&cdn);
    let servers = PortScanner::new().scan_any(&u);
    let routers = TracerouteCampaign::new(10, 0.7).run(&u);
    let c = visibility::classify_icmp_only(&icmp_only, &servers, &routers);
    assert!(c.total() > 0);
    // Figure 2(b): a substantial fraction is identifiable infrastructure.
    assert!(
        c.infrastructure_fraction() > 0.2,
        "infrastructure fraction {:.2}",
        c.infrastructure_fraction()
    );
}

/// Field-for-field daily equality with block-level context on failure
/// — sharper diagnostics than a bare `assert_eq!` on the dataset.
fn assert_datasets_equal(label: &str, a: &DailyDataset, b: &DailyDataset) {
    assert_eq!(a.num_days, b.num_days, "{label}: day count");
    assert_eq!(a.blocks.len(), b.blocks.len(), "{label}: block count");
    for (x, y) in a.blocks.iter().zip(b.blocks.iter()) {
        assert_eq!(x.block, y.block, "{label}: block order");
        assert_eq!(x.rows, y.rows, "{label}: activity matrix of {}", x.block);
        assert_eq!(x.total_hits, y.total_hits, "{label}: total_hits of {}", x.block);
        assert_eq!(x.ua_samples, y.ua_samples, "{label}: ua_samples of {}", x.block);
        assert_eq!(x.ua_unique, y.ua_unique, "{label}: ua_unique of {}", x.block);
        assert_eq!(x.ip_traffic, y.ip_traffic, "{label}: ip_traffic of {}", x.block);
    }
}

fn assert_weekly_equal(label: &str, a: &WeeklyDataset, b: &WeeklyDataset) {
    assert_eq!(a.num_weeks, b.num_weeks, "{label}: week count");
    assert_eq!(a.blocks, b.blocks, "{label}: block rows");
    assert_eq!(a.week_hits, b.week_hits, "{label}: weekly hit lists");
}

#[test]
fn sharded_pipeline_matches_direct_build_across_the_grid() {
    // The differential grid: every (workers, collectors) combination
    // must reproduce Universe::build_daily exactly — same blocks, same
    // activity matrices, same traffic and UA statistics. Worker count
    // changes slicing; collector count changes sharding and merge
    // fan-in; neither may leak into the data.
    let u = Universe::generate(UniverseConfig::tiny(0xD1FF));
    let direct = u.build_daily();
    for workers in [1usize, 2, 4, 7] {
        for collectors in [1usize, 2, 4] {
            let (ds, report) = parallel_pipeline(&u, workers, collectors);
            let label = format!("daily w={workers} c={collectors}");
            assert_datasets_equal(&label, &direct, &ds);
            assert_eq!(report.totals.frames_skipped, 0, "{label}: clean run skipped frames");
            assert_eq!(
                report.totals.records_written, report.totals.records_read,
                "{label}: record conservation"
            );
            assert_eq!(report.collectors(), collectors, "{label}: report fan-in");
            assert_eq!(report.workers, workers, "{label}: report fan-out");
        }
    }
}

#[test]
fn sharded_weekly_pipeline_matches_direct_build_across_the_grid() {
    let u = Universe::generate(UniverseConfig::tiny(0xD1FF));
    let direct = u.build_weekly();
    for workers in [1usize, 2, 4, 7] {
        for collectors in [1usize, 2, 4] {
            let (ws, report) = parallel_pipeline_weekly(&u, workers, collectors);
            let label = format!("weekly w={workers} c={collectors}");
            assert_weekly_equal(&label, &direct, &ws);
            assert_eq!(report.totals.frames_skipped, 0, "{label}: clean run skipped frames");
            assert_eq!(
                report.totals.records_written, report.totals.records_read,
                "{label}: record conservation"
            );
        }
    }
}

#[test]
fn routing_table_census_is_consistent() {
    let u = universe();
    let table: &RoutingTable = u.bgp().base();
    // Every active block resolves to its owning AS.
    let daily = u.build_daily();
    for rec in &daily.blocks {
        let origin = table.origin_of(rec.block.network()).expect("active block routed");
        let owner = u.as_of_block(rec.block).expect("active block owned").asn;
        assert_eq!(origin, owner);
    }
}

#[test]
fn ptr_tags_agree_with_ground_truth_policies() {
    use ipactive::cdnsim::AssignmentPolicy as P;
    let u = universe();
    let mut mismatches = 0usize;
    let mut tagged = 0usize;
    for e in &u.blocks {
        let hint = ipactive::dns::classify_block(u.ptr_table(), e.block, 16);
        if hint == AssignmentHint::Unknown {
            continue;
        }
        tagged += 1;
        let truly_static = matches!(e.policy, P::StaticSparse { .. } | P::StaticDense { .. });
        let truly_dynamic = matches!(
            e.policy,
            P::RoundRobin { .. } | P::DhcpShort { .. } | P::DhcpLong { .. }
        );
        match hint {
            AssignmentHint::Static if !truly_static => mismatches += 1,
            AssignmentHint::Dynamic if !truly_dynamic => mismatches += 1,
            _ => {}
        }
    }
    assert!(tagged > 10, "PTR tagging found too little: {tagged}");
    // PTR keywords never lie in the synthetic universe (the noise is
    // in coverage, not in wrong labels).
    assert_eq!(mismatches, 0);
}
