//! Proptest-driven fault injection for the sharded collector path.
//!
//! The edge half of the pipeline is deterministic, so the universe and
//! its shard buffers are built once; each property case then damages
//! them the way flaky transport would — truncation, bit flips, whole
//! garbage buffers — and asserts the collector contract: the
//! multi-collector path never panics, damage is *counted* on exactly
//! the collector that saw it, and clean shards still merge into
//! exactly their slice of the direct build.

use ipactive::cdnsim::{
    collect_daily_sharded, collect_weekly_sharded, emit_daily_shards, emit_weekly_shards,
    shard_of, Universe, UniverseConfig,
};
use ipactive::core::DailyDataset;
use proptest::prelude::*;
use std::sync::OnceLock;

const COLLECTORS: usize = 4;

struct Fixture {
    universe: Universe,
    daily_shards: Vec<Vec<u8>>,
    weekly_shards: Vec<Vec<u8>>,
    direct: DailyDataset,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let universe = Universe::generate(UniverseConfig::tiny(0xFA17));
        let daily_shards = emit_daily_shards(&universe, COLLECTORS).unwrap();
        let weekly_shards = emit_weekly_shards(&universe, COLLECTORS).unwrap();
        let direct = universe.build_daily();
        Fixture { universe, daily_shards, weekly_shards, direct }
    })
}

/// One transport fault, positioned by a fraction of the buffer length
/// so the same strategy fits every shard size.
#[derive(Debug, Clone)]
enum Fault {
    /// Cut the buffer at `frac` of its length.
    Truncate(f64),
    /// XOR the byte at `frac` with a nonzero mask.
    BitFlip(f64, u8),
    /// Overwrite a run starting at `frac` with a repeated junk byte.
    Garbage(f64, u8, usize),
}

impl Fault {
    fn apply(&self, buf: &mut Vec<u8>) {
        if buf.is_empty() {
            return;
        }
        let last = buf.len() - 1;
        let at = |frac: f64| ((last as f64) * frac) as usize;
        match *self {
            Fault::Truncate(frac) => buf.truncate(at(frac)),
            Fault::BitFlip(frac, mask) => {
                let pos = at(frac);
                buf[pos] ^= mask;
            }
            Fault::Garbage(frac, byte, len) => {
                let start = at(frac);
                let end = (start + len).min(buf.len());
                buf[start..end].fill(byte);
            }
        }
    }
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0.0f64..1.0).prop_map(Fault::Truncate),
        (0.0f64..1.0, 1u8..=255).prop_map(|(f, m)| Fault::BitFlip(f, m)),
        (0.0f64..1.0, any::<u8>(), 1usize..64).prop_map(|(f, b, n)| Fault::Garbage(f, b, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn corrupted_daily_shards_never_panic_and_damage_is_localized(
        victim in 0usize..COLLECTORS,
        faults in prop::collection::vec(arb_fault(), 1..4),
    ) {
        let fix = fixture();
        let days = fix.universe.config().daily_days;
        let mut shards = fix.daily_shards.clone();
        for fault in &faults {
            fault.apply(&mut shards[victim]);
        }
        // Contract 1: total — damaged input cannot panic or error out.
        let (damaged, report) = collect_daily_sharded(&shards, days);
        prop_assert_eq!(report.collectors(), COLLECTORS);
        // Contract 2: untouched collectors see a perfectly clean shard.
        for (c, stats) in report.per_collector.iter().enumerate() {
            if c != victim {
                prop_assert_eq!(stats.frames_skipped, 0, "clean shard {} skipped", c);
                prop_assert_eq!(stats.decode_errors, 0, "clean shard {} errored", c);
            }
        }
        // Contract 3: every block outside the victim shard matches the
        // direct build field-for-field — damage never crosses shards.
        for rec in &fix.direct.blocks {
            if shard_of(rec.block, COLLECTORS) != victim {
                let got = damaged.block(rec.block);
                prop_assert_eq!(got, Some(rec), "clean block {} diverged", rec.block);
            }
        }
    }

    #[test]
    fn corruption_is_always_counted_or_harmless(
        victim in 0usize..COLLECTORS,
        fault in arb_fault(),
    ) {
        let fix = fixture();
        let days = fix.universe.config().daily_days;
        let mut shards = fix.daily_shards.clone();
        fault.apply(&mut shards[victim]);
        let (damaged, report) = collect_daily_sharded(&shards, days);
        let stats = &report.per_collector[victim];
        let clean_reads = {
            let (_, clean_report) = collect_daily_sharded(&fix.daily_shards, days);
            clean_report.per_collector[victim].records_read
        };
        // CRC framing leaves exactly three outcomes: the fault landed in
        // a frame (skips or decode errors recorded), it cut the tail off
        // (fewer records decoded), or it was harmless (identical data).
        let counted = stats.frames_skipped > 0 || stats.decode_errors > 0;
        let shortened = stats.records_read < clean_reads;
        let harmless = damaged == fix.direct;
        prop_assert!(
            counted || shortened || harmless,
            "uncounted corruption: {:?} -> {:?}", fault, stats
        );
    }

    #[test]
    fn all_garbage_shards_decode_to_nothing(
        junk in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..5),
    ) {
        // Streams of pure noise must fold zero records: the per-frame
        // CRC-32 makes accidental acceptance vanishingly unlikely, so
        // garbage can only ever be skipped, never decoded.
        let days = fixture().universe.config().daily_days;
        let (ds, report) = collect_daily_sharded(&junk, days);
        prop_assert_eq!(ds.blocks.len(), 0);
        prop_assert_eq!(report.totals.records_read, 0);
        for stats in &report.per_collector {
            // (A short junk buffer may simply run out during resync
            // without registering a full skipped frame — but it can
            // never yield a record.)
            prop_assert_eq!(stats.records_read, 0);
        }
    }

    #[test]
    fn corrupted_weekly_shards_never_panic(
        victim in 0usize..COLLECTORS,
        faults in prop::collection::vec(arb_fault(), 1..4),
    ) {
        let fix = fixture();
        let weeks = fix.universe.config().weeks;
        let mut shards = fix.weekly_shards.clone();
        for fault in &faults {
            fault.apply(&mut shards[victim]);
        }
        let (_, report) = collect_weekly_sharded(&shards, weeks);
        for (c, stats) in report.per_collector.iter().enumerate() {
            if c != victim {
                prop_assert_eq!(stats.frames_skipped, 0, "clean shard {} skipped", c);
                prop_assert_eq!(stats.decode_errors, 0, "clean shard {} errored", c);
            }
        }
    }
}
