//! End-to-end through the request layer: per-request log events →
//! first-stage aggregation → dataset builder → analyses. Verifies the
//! full collection path the paper describes in Section 3.2, starting
//! from individual transactions.

use ipactive::cdnsim::requests::{aggregate, expand, hourly_histogram};
use ipactive::cdnsim::SeedMixer;
use ipactive::core::{churn, DailyDatasetBuilder};
use ipactive::net::Addr;

#[test]
fn per_request_logs_reproduce_the_aggregated_dataset() {
    let seed = SeedMixer::new(0x0E2E);
    // Ground truth aggregates for a handful of (day, addr) pairs.
    let truth: Vec<(u16, Addr, u32)> = vec![
        (0, "10.0.0.1".parse().unwrap(), 25),
        (0, "10.0.0.2".parse().unwrap(), 3),
        (1, "10.0.0.1".parse().unwrap(), 40),
        (2, "10.0.1.9".parse().unwrap(), 1),
    ];

    // Expand to raw request events, as edge servers would log them.
    let mut raw = Vec::new();
    for &(day, addr, hits) in &truth {
        raw.extend(expand(seed, day, addr, hits));
    }
    assert_eq!(raw.len(), truth.iter().map(|t| t.2 as usize).sum::<usize>());

    // First-stage aggregation, then the dataset builder.
    let mut builder = DailyDatasetBuilder::new(3);
    for ((day, addr), hits) in aggregate(raw.clone()) {
        builder.record_hits(day as usize, addr, hits as u64);
    }
    let ds = builder.finish();

    // The dataset matches ground truth exactly.
    for &(day, addr, hits) in &truth {
        let rec = ds.block(ipactive::net::Block24::of(addr)).unwrap();
        let t = rec
            .ip_traffic
            .iter()
            .find(|t| t.host == addr.host_index())
            .unwrap();
        assert!(rec.rows[addr.host_index() as usize].get(day as usize));
        let day_total: u64 = truth
            .iter()
            .filter(|x| x.1 == addr)
            .map(|x| x.2 as u64)
            .sum();
        assert_eq!(t.total_hits, day_total);
        let _ = hits;
    }

    // Analyses run on it like on any dataset.
    let series = churn::daily_series(&ds);
    assert_eq!(series[0].active, 2);
    assert_eq!(series[1].active, 1);
    assert_eq!(series[1].down, 1);
}

#[test]
fn request_timestamps_carry_a_diurnal_signal() {
    let seed = SeedMixer::new(9);
    let raw = expand(seed, 0, "192.0.2.7".parse().unwrap(), 10_000);
    let hourly = hourly_histogram(&raw);
    // Evening peak and small-hours trough, as configured.
    let evening: u64 = hourly[18..22].iter().sum();
    let night: u64 = hourly[2..6].iter().sum();
    assert!(evening > 3 * night, "evening {evening} vs night {night}");
}
